#!/usr/bin/env python3
"""Benchmark regression gate.

Compares the ratio fields of freshly generated ``BENCH_*.json`` files against
the committed baselines in ``scripts/bench_baselines.json`` and fails (exit
code 1) when any ratio regresses by more than the tolerance, or when a run
reports non-identical results.  The simulator is deterministic per (seed,
config), so at the pinned CI smoke configuration the ratios are stable; the
tolerance exists to absorb intentional workload tweaks, not noise.

Usage:
    python3 scripts/check_bench.py [--dir .] [--tolerance 0.2]
        [--baselines scripts/bench_baselines.json] [--update]

``--update`` rewrites the baselines file from the fresh JSON files instead of
checking (run it after an intentional performance change, at the CI smoke
configuration, and commit the result).  Coverage is derived from the fresh
files themselves — every ``BENCH_*.json`` in the directory and every field
ending in ``_ratio`` — so newly added benchmarks and metrics enter the gate
automatically; a run reporting ``results_identical: false`` refuses to become
a baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"check_bench: missing {path} — generate it first")
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench: {path} is not valid JSON: {e}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dir", default=".", help="directory holding the fresh BENCH_*.json files")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed relative regression below baseline (default 0.2 = 20%%)")
    ap.add_argument("--baselines", default="scripts/bench_baselines.json")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baselines from the fresh files instead of checking")
    args = ap.parse_args()

    baselines_path = Path(args.baselines)
    bench_dir = Path(args.dir)

    if args.update:
        # Coverage comes from the fresh files: every BENCH_*.json and every
        # *_ratio field becomes a gated baseline.  Refuse to record a run
        # that changed an answer.
        fresh_files = sorted(bench_dir.glob("BENCH_*.json"))
        if not fresh_files:
            sys.exit(f"check_bench: no BENCH_*.json files in {bench_dir}")
        updated: dict[str, dict] = {}
        bad: list[str] = []
        for path in fresh_files:
            fresh = load(path)
            if fresh.get("results_identical") is not True:
                bad.append(f"{path.name}: results_identical is "
                           f"{fresh.get('results_identical')!r}")
                continue
            metrics = {k: round(float(v), 3) for k, v in fresh.items()
                       if k.endswith("_ratio") and isinstance(v, (int, float))}
            if not metrics:
                bad.append(f"{path.name}: no *_ratio metrics found")
                continue
            updated[path.name] = metrics
        if bad:
            print("check_bench: refusing to rewrite baselines from a broken run:")
            for b in bad:
                print(f"  - {b}")
            return 1
        baselines_path.write_text(json.dumps(updated, indent=2, sort_keys=True) + "\n")
        print(f"check_bench: baselines rewritten to {baselines_path} "
              f"({sum(len(m) for m in updated.values())} metrics across "
              f"{len(updated)} files)")
        return 0

    baselines = load(baselines_path)
    failures: list[str] = []
    report: list[str] = []

    for bench_file, metrics in sorted(baselines.items()):
        fresh = load(bench_dir / bench_file)
        if fresh.get("results_identical") is not True:
            failures.append(f"{bench_file}: results_identical is "
                            f"{fresh.get('results_identical')!r} — the optimization changed "
                            f"an answer")
        for metric, baseline in sorted(metrics.items()):
            value = fresh.get(metric)
            if value is None:
                failures.append(f"{bench_file}: metric '{metric}' missing from fresh output")
                continue
            floor = baseline * (1.0 - args.tolerance)
            status = "ok" if value >= floor else "REGRESSION"
            report.append(f"  {bench_file:24s} {metric:28s} "
                          f"fresh {value:8.3f}  baseline {baseline:8.3f}  "
                          f"floor {floor:8.3f}  {status}")
            if value < floor:
                failures.append(
                    f"{bench_file}: {metric} regressed to {value:.3f}x "
                    f"(baseline {baseline:.3f}x, floor {floor:.3f}x at "
                    f"{args.tolerance:.0%} tolerance)")

    # Coverage check: a fresh benchmark file or ratio metric that the
    # baselines do not gate is a silent hole — fail so the author runs
    # --update and commits the widened baselines.
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        fresh = load(path)
        gated = baselines.get(path.name, {})
        for metric, value in sorted(fresh.items()):
            if metric.endswith("_ratio") and isinstance(value, (int, float)) \
                    and metric not in gated:
                failures.append(f"{path.name}: metric '{metric}' ({value}) is not gated — "
                                f"run check_bench.py --update and commit the baselines")

    print(f"check_bench: tolerance {args.tolerance:.0%}")
    print("\n".join(report))
    if failures:
        print("\ncheck_bench: FAILED")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\ncheck_bench: all benchmark ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
