#!/usr/bin/env python3
"""Configuration documentation gate.

Every public field of ``PierConfig`` (crates/core/src/engine.rs) must have a
matching ``### `field_name` `` heading in ``docs/OPERATIONS.md`` — operators
read that file, not the source.  The field list is parsed from the struct
definition itself, so a newly added knob fails CI until it is documented;
a documented-but-removed knob fails too, so the docs cannot go stale.

Usage:
    python3 scripts/check_config_docs.py [--repo .]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

STRUCT = "PierConfig"
SOURCE = Path("crates/core/src/engine.rs")
DOCS = Path("docs/OPERATIONS.md")


def struct_fields(source: str) -> list[str]:
    m = re.search(rf"pub struct {STRUCT} \{{\n(.*?)\n\}}", source, re.DOTALL)
    if not m:
        sys.exit(f"check_config_docs: 'pub struct {STRUCT}' not found in {SOURCE}")
    fields = re.findall(r"^    pub (\w+):", m.group(1), re.MULTILINE)
    if not fields:
        sys.exit(f"check_config_docs: no public fields parsed from {STRUCT}")
    return fields


def documented_fields(docs: str) -> list[str]:
    return re.findall(r"^### `(\w+)`", docs, re.MULTILINE)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo", default=".", help="repository root")
    args = ap.parse_args()
    repo = Path(args.repo)

    source_path = repo / SOURCE
    docs_path = repo / DOCS
    if not source_path.exists():
        sys.exit(f"check_config_docs: missing {source_path}")
    if not docs_path.exists():
        sys.exit(f"check_config_docs: missing {docs_path} — every {STRUCT} knob "
                 f"must be documented there")

    fields = struct_fields(source_path.read_text())
    documented = documented_fields(docs_path.read_text())

    missing = [f for f in fields if f not in documented]
    stale = [d for d in documented if d not in fields]

    print(f"check_config_docs: {len(fields)} {STRUCT} fields, "
          f"{len(documented)} documented knobs")
    if missing:
        print(f"\ncheck_config_docs: FAILED — fields missing from {DOCS}:")
        for f in missing:
            print(f"  - {f}  (add a '### `{f}`' section)")
    if stale:
        print(f"\ncheck_config_docs: FAILED — documented knobs no longer in {STRUCT}:")
        for d in stale:
            print(f"  - {d}  (remove or rename its '### `{d}`' section)")
    if missing or stale:
        return 1
    print("check_config_docs: every configuration knob is documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
