//! # pier — reproduction of "Querying at Internet Scale" (SIGMOD 2004)
//!
//! This is the umbrella crate of the workspace.  It re-exports the four
//! layers so examples and downstream users can depend on a single crate:
//!
//! * [`simnet`] — the deterministic discrete-event network simulator that
//!   stands in for PlanetLab / the wide-area Internet;
//! * [`dht`] — the Chord-style distributed hash table with soft state,
//!   key-based routing, and broadcast dissemination;
//! * [`core`] — PIER itself: SQL + algebraic dataflow interfaces, planner,
//!   in-network aggregation, distributed joins, recursive and continuous
//!   queries, and the deployment testbed;
//! * [`apps`] — the demo's applications: network monitoring, Snort-style
//!   intrusion detection, filesharing keyword search, topology mapping.
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harness that regenerates the paper's Figure 1 and Table 1.

pub use pier_apps as apps;
pub use pier_core as core;
pub use pier_dht as dht;
pub use pier_simnet as simnet;

pub use pier_core::prelude;
