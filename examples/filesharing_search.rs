//! Keyword-based filesharing search: a distributed equi-join between the file
//! catalog and its inverted keyword index.
//!
//! **Paper workload**: the filesharing application from the demo's
//! application list — keyword search expressed as a two-way distributed
//! equi-join (`files ⋈ keywords ON file_id`), exercising the rehash join
//! machinery over DHT-partitioned relations.
//!
//! **Expected output shape**: the corpus size, then for each searched keyword
//! the number of matching files (equal to the corpus ground truth) and a few
//! sample rows (name, owner, size).
//!
//! Run with: `cargo run --example filesharing_search`

use pier::apps::filesharing::{files_table, keywords_table, FileCorpus};
use pier::prelude::*;

fn main() {
    let mut bed = PierTestbed::new(TestbedConfig { nodes: 40, seed: 21, ..Default::default() });
    bed.create_table_everywhere(&files_table());
    bed.create_table_everywhere(&keywords_table());

    // Publish a synthetic corpus: 600 files, 1-4 keywords each.
    let corpus = FileCorpus::generate(600, 40, 21);
    corpus.publish(&mut bed);
    bed.run_for(Duration::from_secs(10));
    println!(
        "published {} files and {} keyword postings into the DHT",
        corpus.files().len(),
        corpus.postings().len()
    );

    for keyword in ["linux", "sigmod", "creative-commons"] {
        let origin = bed.nodes()[3];
        let query = bed
            .submit_sql(origin, &FileCorpus::search_sql(keyword))
            .expect("search query must plan");
        bed.run_for(Duration::from_secs(12));
        let rows = bed.results(origin, query, 0);
        println!(
            "\nsearch '{keyword}': {} results (ground truth {})",
            rows.len(),
            corpus.matching_files(keyword)
        );
        for row in rows.iter().take(5) {
            println!(
                "  {:<28} owner={:<16} {:>8} KB",
                row.get(0).to_string(),
                row.get(1).to_string(),
                row.get(2).to_string()
            );
        }
        if rows.len() > 5 {
            println!("  … and {} more", rows.len() - 5);
        }
    }
}
