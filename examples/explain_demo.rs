//! EXPLAIN demo: render every stage of the layered planning pipeline for the
//! filesharing keyword search, showing cost-based join-strategy selection
//! from catalog cardinality hints.
//!
//! Run with: `cargo run --example explain_demo`

use pier::apps::filesharing::{files_table, keywords_table, FileCorpus};
use pier::prelude::*;

fn main() {
    let mut bed = PierTestbed::quick(8, 42);
    bed.create_table_everywhere(&files_table());
    bed.create_table_everywhere(&keywords_table());

    // Cardinality hints: a large inverted index joined against a file table
    // partitioned on the join key.
    bed.set_table_stats_everywhere("keywords", TableStats::with_rows(5_000));
    bed.set_table_stats_everywhere("files", TableStats::with_rows(2_000));

    let origin = bed.nodes()[0];

    // Probe shape: the filtered posting list probes `files` → Fetch-Matches.
    let sql = format!("EXPLAIN {}", FileCorpus::probe_search_sql("linux"));
    println!("$ {sql}\n");
    println!("{}", bed.explain(origin, &sql).unwrap());

    // Rehash shape: no probe-friendly partitioning → symmetric rehash.
    let sql = format!("EXPLAIN {}", FileCorpus::search_sql("linux"));
    println!("$ {sql}\n");
    println!("{}", bed.explain(origin, &sql).unwrap());
}
