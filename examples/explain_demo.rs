//! EXPLAIN / EXPLAIN ANALYZE demo — planner and executor introspection.
//!
//! **Paper workload**: the keyword filesharing search (a two-way distributed
//! equi-join, Section "Applications"), used here to show (1) the four-stage
//! planning pipeline with cost-based join-strategy selection from catalog
//! cardinality hints, and (2) `EXPLAIN ANALYZE`, which *executes* the query
//! and aggregates every node's per-operator execution trace over the DHT back
//! to the origin.
//!
//! **Expected output shape**: static `EXPLAIN` reports (binder → logical
//! plan → optimized plan → distributed physical plan; the probe-shaped search
//! chooses Fetch-Matches, the rehash-shaped one symmetric rehash, the 3-way
//! query a staged chain, and the `GROUP BY` over the join an
//! `aggregate above the final stage` placement line), followed by an
//! `EXPLAIN ANALYZE` report that ends with a
//! `== network-wide execution trace (N nodes reporting) ==` section listing
//! tuples scanned/shipped, probes, matches, wire messages/batches/bytes, and
//! per-epoch row counts.
//!
//! Run with: `cargo run --example explain_demo`

use pier::apps::filesharing::{files_table, keywords_table, FileCorpus};
use pier::prelude::*;

fn main() {
    let mut bed = PierTestbed::quick(8, 42);
    bed.create_table_everywhere(&files_table());
    bed.create_table_everywhere(&keywords_table());

    // Cardinality hints: a large inverted index joined against a file table
    // partitioned on the join key.
    bed.set_table_stats_everywhere("keywords", TableStats::with_rows(5_000));
    bed.set_table_stats_everywhere("files", TableStats::with_rows(2_000));

    let origin = bed.nodes()[0];

    // Probe shape: the filtered posting list probes `files` → Fetch-Matches.
    let sql = format!("EXPLAIN {}", FileCorpus::probe_search_sql("linux"));
    println!("$ {sql}\n");
    println!("{}", bed.explain(origin, &sql).unwrap());

    // Rehash shape: no probe-friendly partitioning → symmetric rehash.
    let sql = format!("EXPLAIN {}", FileCorpus::search_sql("linux"));
    println!("$ {sql}\n");
    println!("{}", bed.explain(origin, &sql).unwrap());

    // Multi-way: a third relation turns the plan into a staged chain; the
    // report leads with the statistics-driven join order and renders each
    // stage's strategy, shipped columns, and rehash-to-next-stage mapping.
    let mirrors = TableDef::new(
        "mirrors",
        Schema::of(&[("owner", DataType::Str), ("site", DataType::Str)]),
        "owner",
        Duration::from_secs(600),
    );
    bed.create_table_everywhere(&mirrors);
    bed.set_table_stats_everywhere("mirrors", TableStats::with_rows(40));
    let sql = "EXPLAIN SELECT f.name, m.site FROM keywords k \
               JOIN files f ON k.file_id = f.file_id JOIN mirrors m ON f.owner = m.owner \
               WHERE k.keyword = 'linux'";
    println!("$ {sql}\n");
    println!("{}", bed.explain(origin, sql).unwrap());

    // Aggregation over the join: the GROUP BY terminates the stage chain in
    // the hierarchical aggregation plane — each node partially aggregates its
    // final-stage matches and the partials combine in-network toward the
    // aggregation root instead of raw rows streaming to the origin.  The
    // report shows the costed placement decision.
    let sql = "EXPLAIN SELECT m.site, COUNT(*) AS files, MAX(f.size_kb) AS biggest \
               FROM keywords k JOIN files f ON k.file_id = f.file_id \
               JOIN mirrors m ON f.owner = m.owner \
               WHERE k.keyword = 'linux' GROUP BY m.site HAVING COUNT(*) >= 2";
    println!("$ {sql}\n");
    println!("{}", bed.explain(origin, sql).unwrap());

    // EXPLAIN ANALYZE: actually run the search over a published corpus and
    // render the network-wide per-operator totals below the static plan.
    let corpus = FileCorpus::generate(300, 20, 42);
    corpus.publish(&mut bed);
    bed.run_for(Duration::from_secs(8));
    let sql = format!("EXPLAIN ANALYZE {}", FileCorpus::search_sql("linux"));
    println!("$ {sql}\n");
    println!("{}", bed.explain_analyze(origin, &sql, Duration::from_secs(15)).unwrap());
}
