//! Overlay-topology mapping with a recursive query.
//!
//! **Paper workload**: "network topology analysis and routing using recursive
//! queries".  Each node publishes its own overlay adjacency (successor links)
//! into a `links` relation; a recursive query walks the graph from one host,
//! streaming every traversed edge back to the origin (distributed semi-naïve
//! evaluation over the partitioned edge relation).
//!
//! **Expected output shape**: the published link count, then the traversal
//! summary — edges traversed, distinct hosts reached (the whole overlay, as
//! successor rings are connected), deepest hop — and a few sample edges with
//! their depths.
//!
//! Run with: `cargo run --example topology_mapping`

use pier::apps::topology::{links_table, TopologyMapper};
use pier::prelude::*;

fn main() {
    let nodes = 32;
    let mut bed = PierTestbed::new(TestbedConfig { nodes, seed: 33, ..Default::default() });
    bed.create_table_everywhere(&links_table());

    let published = TopologyMapper::publish_overlay_links(&mut bed);
    bed.run_for(Duration::from_secs(8));
    println!("published {published} overlay link tuples");

    let source = TopologyMapper::host_name(bed.nodes()[0]);
    let (kind, names) = TopologyMapper::reachability_query(&source, 6);
    let origin = bed.nodes()[0];
    let query = bed.submit_query(origin, kind, names, None).expect("recursive query submits");
    bed.run_for(Duration::from_secs(20));

    let rows = bed.all_results(origin, query);
    let mut vertices: Vec<String> =
        rows.iter().filter_map(|r| r.get(1).as_str().map(|s| s.to_string())).collect();
    vertices.sort();
    vertices.dedup();

    println!("\nrecursive reachability from {source} (≤ 6 hops over successor links):");
    println!("  edges traversed : {}", rows.len());
    println!("  hosts reached   : {}", vertices.len());
    let max_depth = rows.iter().filter_map(|r| r.get(2).as_i64()).max().unwrap_or(0);
    println!("  deepest hop     : {max_depth}");
    for row in rows.iter().take(8) {
        println!("    {} -> {} (depth {})", row.get(0), row.get(1), row.get(2));
    }
    if rows.len() > 8 {
        println!("    … and {} more edges", rows.len() - 8);
    }
}
