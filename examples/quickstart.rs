//! Quickstart: boot a small PIER overlay, publish a relation, and run both a
//! one-shot aggregate and a filtered selection from an arbitrary node.
//!
//! **Paper workload**: none specifically — this is the "hello, PIER" tour of
//! the client API the paper's demo proxy exposes (create table, publish,
//! SELECT from any node).
//!
//! **Expected output shape**: the node count and virtual time after boot,
//! then a one-row aggregate (COUNT/AVG/MAX over every node's reading) and a
//! short list of hosts matching a filtered selection.
//!
//! Run with: `cargo run --example quickstart`

use pier::prelude::*;

fn main() {
    // 1. Boot a 24-node PIER deployment on the simulated wide-area network.
    let mut bed = PierTestbed::quick(24, 2004);
    println!("booted {} PIER nodes (virtual time {})", bed.nodes().len(), bed.now());

    // 2. Agree on a relation.  The table name doubles as the DHT namespace;
    //    `host` is the partitioning column.
    let readings = TableDef::new(
        "readings",
        Schema::of(&[
            ("host", DataType::Str),
            ("cpu_load", DataType::Float),
            ("mem_mb", DataType::Int),
        ]),
        "host",
        Duration::from_secs(300),
    );
    bed.create_table_everywhere(&readings);

    // 3. Every node publishes one reading about itself.
    for (i, &addr) in bed.nodes().to_vec().iter().enumerate() {
        let tuple = Tuple::new(vec![
            Value::str(format!("planetlab-{i:03}")),
            Value::Float(0.1 * (i as f64 % 17.0) + 0.2),
            Value::Int(256 + (i as i64 * 37) % 1800),
        ]);
        bed.publish(addr, "readings", tuple);
    }
    bed.run_for(Duration::from_secs(5));

    // 4. Ask network-wide questions from node 0.
    let rows = bed
        .query_once(
            "SELECT COUNT(*) AS nodes, AVG(cpu_load) AS avg_load, MAX(mem_mb) AS max_mem \
             FROM readings",
            Duration::from_secs(10),
        )
        .expect("aggregate query failed");
    println!("\nnetwork-wide summary:");
    println!("  nodes reporting : {}", rows[0].get(0));
    println!("  average cpu load: {}", rows[0].get(1));
    println!("  max memory (MB) : {}", rows[0].get(2));

    // 5. A filtered selection: which hosts are heavily loaded?
    let rows = bed
        .query_once(
            "SELECT host, cpu_load FROM readings WHERE cpu_load > 1.0 ORDER BY cpu_load DESC LIMIT 5",
            Duration::from_secs(10),
        )
        .expect("selection query failed");
    println!("\nbusiest hosts (cpu_load > 1.0):");
    for row in &rows {
        println!("  {:<16} {}", row.get(0).to_string(), row.get(1));
    }

    // 6. Multi-way joins: relate each reading to its host's site and the
    //    site's region — a 3-way join the optimizer lowers into a chain of
    //    distributed join stages (order picked from catalog statistics).
    let hostinfo = TableDef::new(
        "hostinfo",
        Schema::of(&[("host", DataType::Str), ("site", DataType::Str)]),
        "host",
        Duration::from_secs(300),
    );
    let sites = TableDef::new(
        "sites",
        Schema::of(&[("sname", DataType::Str), ("region", DataType::Str)]),
        "sname",
        Duration::from_secs(300),
    );
    bed.create_table_everywhere(&hostinfo);
    bed.create_table_everywhere(&sites);
    for (i, &addr) in bed.nodes().to_vec().iter().enumerate() {
        bed.publish(
            addr,
            "hostinfo",
            Tuple::new(vec![
                Value::str(format!("planetlab-{i:03}")),
                Value::str(format!("site-{}", i % 4)),
            ]),
        );
    }
    for s in 0..4 {
        bed.publish(
            bed.nodes()[0],
            "sites",
            Tuple::new(vec![
                Value::str(format!("site-{s}")),
                Value::str(if s < 2 { "us-west" } else { "eu-central" }),
            ]),
        );
    }
    bed.run_for(Duration::from_secs(5));
    let rows = bed
        .query_once(
            "SELECT r.host, h.site, s.region FROM readings r \
             JOIN hostinfo h ON r.host = h.host JOIN sites s ON h.site = s.sname \
             WHERE r.cpu_load > 1.0 ORDER BY r.host LIMIT 5",
            Duration::from_secs(10),
        )
        .expect("3-way join failed");
    println!("\nbusy hosts with site and region (3-way join):");
    for row in &rows {
        println!("  {:<16} {:<8} {}", row.get(0).to_string(), row.get(1).to_string(), row.get(2));
    }

    println!(
        "\nsimulator totals: {} messages delivered, {} bytes",
        bed.metrics().messages_delivered(),
        bed.metrics().bytes_delivered()
    );
}
