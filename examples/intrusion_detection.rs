//! Network-wide intrusion detection — the scenario behind the paper's Table 1.
//!
//! **Paper workload**: Table 1's "network-wide top ten intrusion detection
//! rules".  Every node publishes its local Snort rule-hit counts; a single
//! distributed GROUP BY / ORDER BY SUM(hits) DESC LIMIT 10 query ranks the
//! rules network-wide with hierarchical in-network aggregation.
//!
//! **Expected output shape**: a ten-row table (rule id, description, total
//! hits) in descending hit order — the shape of the paper's Table 1 — plus
//! the number of reporting nodes.
//!
//! Run with: `cargo run --example intrusion_detection`

use pier::apps::snort::{intrusions_table, SnortSimulator};
use pier::prelude::*;

fn main() {
    let nodes = 80;
    let mut bed = PierTestbed::new(TestbedConfig { nodes, seed: 13, ..Default::default() });
    bed.create_table_everywhere(&intrusions_table());

    // Each node reports its local IDS counters (stored at the node, like the
    // real deployment where Snort ran locally).
    let mut snort = SnortSimulator::new(nodes, 700_000, 13);
    snort.publish_round(&mut bed);
    bed.run_for(Duration::from_secs(5));

    // The paper's Table 1 query, submitted from an arbitrary node.
    let origin = bed.nodes()[17];
    let query = bed.submit_sql(origin, SnortSimulator::table1_sql()).expect("query must plan");
    bed.run_for(Duration::from_secs(15));

    let rows = bed.results(origin, query, 0);
    println!("The network-wide top ten intrusion detection rules");
    println!("{:<6} {:<42} {:>10}", "Rule", "Rule Description", "Hits");
    println!("{:-<6} {:-<42} {:-<10}", "", "", "");
    for row in &rows {
        println!(
            "{:<6} {:<42} {:>10}",
            row.get(0).to_string(),
            row.get(1).to_string(),
            row.get(2).to_string()
        );
    }

    let expected = SnortSimulator::expected_top10();
    let got: Vec<i64> = rows.iter().filter_map(|r| r.get(0).as_i64()).collect();
    println!(
        "\nranking matches the paper's Table 1 ordering: {}",
        if got == expected { "yes" } else { "no (distribution noise)" }
    );
}
