//! Network monitoring — the scenario behind the paper's Figure 1.
//!
//! **Paper workload**: Figure 1's continuous aggregation.  A query
//! `SELECT SUM(out_rate) FROM netstats CONTINUOUS EVERY 5 SECONDS WINDOW 10
//! SECONDS` runs while every node publishes fresh traffic readings; partway
//! through, a slice of the network fails and later recovers.
//!
//! **Expected output shape**: one line per epoch with the network-wide
//! `SUM(out_rate)` and the "responding nodes" count — the two series of
//! Figure 1, with the responding-nodes dip and recovery during the churn
//! window clearly visible.
//!
//! Run with: `cargo run --example network_monitoring`

use pier::apps::netmon::{netstats_table, NetworkMonitor};
use pier::prelude::*;
use pier::simnet::ChurnSchedule;

fn main() {
    let nodes = 60;
    let mut bed = PierTestbed::new(TestbedConfig { nodes, seed: 7, ..Default::default() });
    bed.create_table_everywhere(&netstats_table());
    let mut monitor = NetworkMonitor::new(nodes, 7);

    // Continuous query submitted at node 0.
    let origin = bed.nodes()[0];
    let query = bed
        .submit_sql(origin, &NetworkMonitor::figure1_sql(5, 10))
        .expect("continuous query must plan");

    // A correlated failure of 15 nodes at t+40s, recovering at t+70s.
    let victims: Vec<NodeAddr> = (20..35).map(NodeAddr).collect();
    let fail_at = bed.now() + Duration::from_secs(40);
    let recover_at = bed.now() + Duration::from_secs(70);
    bed.apply_churn(&ChurnSchedule::mass_failure(&victims, fail_at, Some(recover_at)));

    println!("epoch  virtual-time  SUM(out_rate) KB/s   responding nodes");
    println!("-----  ------------  ------------------   ----------------");
    for step in 0..20 {
        monitor.publish_round(&mut bed);
        bed.run_for(Duration::from_secs(5));
        let epochs = bed.epochs(origin, query);
        if let Some(&epoch) = epochs.last() {
            let rows = bed.results(origin, query, epoch);
            let sum = rows.first().and_then(|r| r.get(0).as_f64()).unwrap_or(0.0);
            let responding = bed.contributors(origin, query, epoch);
            println!(
                "{epoch:>5}  {:>12}  {sum:>18.1}   {responding:>16}",
                format!("{}", bed.now())
            );
        } else {
            println!("  ...   {:>12}  (no epoch finalized yet)", format!("{}", bed.now()));
        }
        let _ = step;
    }

    println!(
        "\n{} messages delivered, {} dropped to dead nodes (churn), {} bytes total",
        bed.metrics().messages_delivered(),
        bed.metrics().messages_dropped_dead(),
        bed.metrics().bytes_delivered()
    );
}
