//! Vectorized symmetric-hash join state: a columnar build side with a
//! keyed chunk index, and a batch probe that produces the joined output
//! through column gathers instead of per-row `Value` clones.
//!
//! The wire format hands us an exploitable invariant: every `JoinTuple` /
//! `JoinBatch` message carries **one** join-key value shared by all its
//! tuples (tuples are rehashed *by* key, so same-destination tuples share
//! the key).  Each arriving message therefore becomes one immutable
//! [`ColumnarBatch`] chunk filed under its key, and a probe is a cross
//! product of the incoming chunk with the other side's stored chunks for
//! that key — expressible as two index gathers (an outer repeat of the
//! incoming rows, an inner tile of the stored rows) plus one vectorized
//! post-filter kernel pass.
//!
//! The scalar path in `engine::on_join_tuples` stays as the reference
//! implementation; this module must reproduce its output rows in exactly
//! the same order (incoming-major over the stored rows in arrival order),
//! so downstream float folds, result batches, and wire accounting are
//! bit-identical.

use crate::column::{Column, ColumnarBatch};
use crate::kernel::Kernel;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// Build-side storage for one (query, stage, epoch): both join inputs,
/// chunked per arriving message and indexed by join-key value.
#[derive(Default)]
pub struct JoinBuild {
    sides: [SideBuild; 2],
}

#[derive(Default)]
struct SideBuild {
    /// Arrival-ordered chunks per key value.  `Value` keys use the same
    /// hash/equality as the scalar path's `HashMap`, so numeric identity
    /// (`Int(3)` matching `Float(3.0)`) and NaN handling agree exactly.
    chunks: HashMap<Value, Vec<ColumnarBatch>>,
    rows: usize,
}

impl JoinBuild {
    /// Store one arriving message's tuples (already arity-filtered by the
    /// caller) as a chunk of `side` under `key`, returning the pivoted batch
    /// so the caller can immediately probe with it.
    pub fn insert(&mut self, side: usize, key: &Value, rows: &[Tuple]) -> ColumnarBatch {
        let batch = ColumnarBatch::from_rows(rows);
        let store = &mut self.sides[side];
        store.rows += rows.len();
        store.chunks.entry(key.clone()).or_default().push(batch.clone());
        batch
    }

    /// The stored chunks of `side` matching `key`, in arrival order.
    pub fn matches(&self, side: usize, key: &Value) -> &[ColumnarBatch] {
        self.sides[side].chunks.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Total tuples stored on `side` (all keys).
    pub fn stored_rows(&self, side: usize) -> usize {
        self.sides[side].rows
    }
}

/// Cross-join an incoming chunk against the stored chunks of the other side
/// and return the post-filter survivors as materialized tuples, in exactly
/// the scalar probe's order: for each incoming tuple (in batch order), all
/// stored tuples in arrival order.
///
/// `side` is the incoming chunk's side: side-0 rows form the left
/// (leading) columns of the joined row, side-1 rows the right — matching
/// `Tuple::concat` in the scalar loop.
///
/// `stored_width` is the expected arity of stored rows; chunks of any other
/// width are skipped, mirroring the scalar path's layout guard against
/// tuples stored under a superseded spec.
pub fn probe_joined(
    incoming: &ColumnarBatch,
    side: u8,
    stored: &[ColumnarBatch],
    stored_width: usize,
    post: Option<&Kernel>,
) -> Vec<Tuple> {
    let stored: Vec<&ColumnarBatch> =
        stored.iter().filter(|c| c.num_columns() == stored_width && c.num_rows() > 0).collect();
    let n = incoming.num_rows();
    let m: usize = stored.iter().map(|c| c.num_rows()).sum();
    if n == 0 || m == 0 {
        return Vec::new();
    }
    // Concatenate the stored chunks once per probe (the joined output has
    // n·m rows, so this O(m) splice never dominates).
    let stored_cols: Vec<Column> = (0..stored_width)
        .map(|c| {
            let parts: Vec<&Column> =
                stored.iter().map(|chunk| chunk.column(c).expect("width checked")).collect();
            Column::concat(&parts)
        })
        .collect();
    // Outer index repeats each incoming row m times; inner tiles the stored
    // rows n times — together they enumerate the cross product
    // incoming-major, exactly like the scalar nested loop.
    let mut outer = Vec::with_capacity(n * m);
    let mut inner = Vec::with_capacity(n * m);
    for i in 0..n as u32 {
        for j in 0..m as u32 {
            outer.push(i);
            inner.push(j);
        }
    }
    let incoming_gathered =
        (0..incoming.num_columns()).map(|c| incoming.column(c).expect("in range").gather(&outer));
    let stored_gathered = stored_cols.iter().map(|c| c.gather(&inner));
    let joined = if side == 0 {
        ColumnarBatch::from_columns(incoming_gathered.chain(stored_gathered).collect())
    } else {
        ColumnarBatch::from_columns(stored_gathered.chain(incoming_gathered).collect())
    };
    let sel = match post {
        Some(kernel) => kernel.filter(&joined, &joined.full_selection()),
        None => joined.full_selection(),
    };
    sel.into_iter().map(|r| joined.row(r as usize)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    /// The scalar reference: clone + concat + per-row filter, as
    /// `on_join_tuples` runs it.
    fn scalar_probe(
        incoming: &[Tuple],
        side: u8,
        stored: &[Tuple],
        post: Option<&Expr>,
    ) -> Vec<Tuple> {
        let mut out = Vec::new();
        for tup in incoming {
            for m in stored {
                let joined = if side == 0 { tup.concat(m) } else { m.concat(tup) };
                if post.map(|p| p.matches(&joined)).unwrap_or(true) {
                    out.push(joined);
                }
            }
        }
        out
    }

    #[test]
    fn probe_matches_scalar_order_and_filter() {
        let mut build = JoinBuild::default();
        let key = Value::Int(7);
        build.insert(1, &key, &[t(&[7, 10]), t(&[7, 20])]);
        build.insert(1, &key, &[t(&[7, 30])]);
        assert_eq!(build.stored_rows(1), 3);
        let incoming = vec![t(&[1, 7]), t(&[2, 7])];
        let batch = ColumnarBatch::from_rows(&incoming);
        let post = Expr::col(3).gt(Expr::lit(Value::Int(10)));
        let kernel = Kernel::compile(&post);
        let got = probe_joined(&batch, 0, build.matches(1, &key), 2, Some(&kernel));
        let stored = vec![t(&[7, 10]), t(&[7, 20]), t(&[7, 30])];
        let want = scalar_probe(&incoming, 0, &stored, Some(&post));
        assert_eq!(got, want);
        assert!(got.iter().all(|r| r.arity() == 4));
    }

    #[test]
    fn side_one_concatenates_stored_first() {
        let mut build = JoinBuild::default();
        let key = Value::str("k");
        build.insert(0, &key, &[t(&[1, 2])]);
        let incoming = vec![t(&[3, 4])];
        let got =
            probe_joined(&ColumnarBatch::from_rows(&incoming), 1, build.matches(0, &key), 2, None);
        assert_eq!(got, vec![t(&[1, 2, 3, 4])]);
    }

    #[test]
    fn empty_sides_produce_nothing() {
        let build = JoinBuild::default();
        let incoming = ColumnarBatch::from_rows(&[t(&[1])]);
        assert!(probe_joined(&incoming, 0, build.matches(1, &Value::Int(1)), 1, None).is_empty());
        let empty = ColumnarBatch::from_rows(&[]);
        let mut b2 = JoinBuild::default();
        b2.insert(1, &Value::Int(1), &[t(&[1])]);
        assert!(probe_joined(&empty, 0, b2.matches(1, &Value::Int(1)), 1, None).is_empty());
    }
}
