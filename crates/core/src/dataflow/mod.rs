//! PIER's dataflow layer: local relational operators and the generic
//! "boxes and arrows" graph executor (trees, DAGs, and cyclic/recursive
//! graphs).

pub mod graph;
pub mod join;
pub mod ops;

pub use graph::{
    AggregateBox, DataflowOp, DedupBox, FilterBox, HashJoinBox, OpGraph, OpId, ProjectBox, UnionBox,
};
pub use ops::{
    compare_on, sort_tuples, Distinct, FilterOp, GroupAggregator, GroupKey, Limit, ProjectOp, TopK,
};
