//! The "boxes and arrows" dataflow graph.
//!
//! Besides SQL, PIER exposes an algebraic interface: queries are graphs of
//! operators (boxes) connected by dataflow edges (arrows).  The graph may be a
//! tree, a DAG (an operator feeding two consumers), or **cyclic** — a feedback
//! edge turns the graph into a recursive query evaluated to a fixpoint, which
//! is how PIER expresses network-topology analyses.
//!
//! The executor is push-based: tuples travel along edges through a worklist.
//! A duplicate-eliminating box on every cycle guarantees termination (the
//! classic semi-naïve guarantee); a configurable delivery budget acts as a
//! final safety net.

use crate::dataflow::ops::GroupAggregator;
use crate::expr::Expr;
use crate::plan::AggExpr;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{HashMap, HashSet, VecDeque};

/// A dataflow operator ("box").
pub trait DataflowOp {
    /// Handle one input tuple arriving on `port`; emit output tuples into `out`.
    fn on_tuple(&mut self, port: usize, tuple: Tuple, out: &mut Vec<Tuple>);

    /// Called once after all input has been delivered (blocking operators such
    /// as aggregation emit their results here).
    fn on_flush(&mut self, out: &mut Vec<Tuple>) {
        let _ = out;
    }

    /// Operator name for diagnostics.
    fn name(&self) -> &'static str {
        "op"
    }
}

/// Identifier of a box within a graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpId(pub usize);

/// A graph of operators and dataflow edges.
#[derive(Default)]
pub struct OpGraph {
    ops: Vec<Box<dyn DataflowOp>>,
    /// Outgoing edges: `(source op) -> [(destination op, destination port)]`.
    edges: HashMap<usize, Vec<(usize, usize)>>,
    /// Ops whose emitted tuples are collected as the graph's output.
    outputs: HashSet<usize>,
    /// Maximum number of tuple deliveries before the executor gives up
    /// (protects against non-terminating cycles).
    pub delivery_budget: usize,
}

impl OpGraph {
    /// An empty graph.
    pub fn new() -> Self {
        OpGraph { delivery_budget: 1_000_000, ..Default::default() }
    }

    /// Add an operator; returns its id.
    pub fn add(&mut self, op: Box<dyn DataflowOp>) -> OpId {
        self.ops.push(op);
        OpId(self.ops.len() - 1)
    }

    /// Connect `from`'s output to port `port` of `to`.  Cycles are allowed.
    pub fn connect(&mut self, from: OpId, to: OpId, port: usize) {
        self.edges.entry(from.0).or_default().push((to.0, port));
    }

    /// Mark an operator's output as a graph output.
    pub fn mark_output(&mut self, op: OpId) {
        self.outputs.insert(op.0);
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Execute: inject each `(op, port, tuples)` binding, run to quiescence,
    /// flush every operator (propagating what the flushes emit), and return
    /// the tuples produced by output-marked operators.
    pub fn run(&mut self, injections: Vec<(OpId, usize, Vec<Tuple>)>) -> Vec<Tuple> {
        let mut results = Vec::new();
        let mut worklist: VecDeque<(usize, usize, Tuple)> = VecDeque::new();
        for (op, port, tuples) in injections {
            for t in tuples {
                worklist.push_back((op.0, port, t));
            }
        }

        let mut deliveries = 0usize;
        let mut emitted = Vec::new();
        loop {
            while let Some((op_idx, port, tuple)) = worklist.pop_front() {
                if deliveries >= self.delivery_budget {
                    return results;
                }
                deliveries += 1;
                emitted.clear();
                self.ops[op_idx].on_tuple(port, tuple, &mut emitted);
                self.route(op_idx, &mut emitted, &mut worklist, &mut results);
            }
            // Flush every operator once per quiescent point; if flushing
            // produces new work, keep going.
            let mut any_new = false;
            for op_idx in 0..self.ops.len() {
                emitted.clear();
                self.ops[op_idx].on_flush(&mut emitted);
                if !emitted.is_empty() {
                    any_new = true;
                    self.route(op_idx, &mut emitted, &mut worklist, &mut results);
                }
            }
            if !any_new && worklist.is_empty() {
                break;
            }
        }
        results
    }

    fn route(
        &self,
        from: usize,
        emitted: &mut Vec<Tuple>,
        worklist: &mut VecDeque<(usize, usize, Tuple)>,
        results: &mut Vec<Tuple>,
    ) {
        if emitted.is_empty() {
            return;
        }
        let is_output = self.outputs.contains(&from);
        let targets = self.edges.get(&from);
        for tuple in emitted.drain(..) {
            if is_output {
                results.push(tuple.clone());
            }
            if let Some(targets) = targets {
                for (dst, port) in targets {
                    worklist.push_back((*dst, *port, tuple.clone()));
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Built-in boxes
// ----------------------------------------------------------------------

/// Selection box.
pub struct FilterBox {
    predicate: Expr,
}

impl FilterBox {
    /// Construct.
    pub fn new(predicate: Expr) -> Self {
        FilterBox { predicate }
    }
}

impl DataflowOp for FilterBox {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, out: &mut Vec<Tuple>) {
        if self.predicate.matches(&tuple) {
            out.push(tuple);
        }
    }
    fn name(&self) -> &'static str {
        "filter"
    }
}

/// Projection box.
pub struct ProjectBox {
    exprs: Vec<Expr>,
}

impl ProjectBox {
    /// Construct.
    pub fn new(exprs: Vec<Expr>) -> Self {
        ProjectBox { exprs }
    }
}

impl DataflowOp for ProjectBox {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, out: &mut Vec<Tuple>) {
        out.push(Tuple::new(self.exprs.iter().map(|e| e.eval(&tuple)).collect()));
    }
    fn name(&self) -> &'static str {
        "project"
    }
}

/// Pass-through union box (any number of input ports).
pub struct UnionBox;

impl DataflowOp for UnionBox {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, out: &mut Vec<Tuple>) {
        out.push(tuple);
    }
    fn name(&self) -> &'static str {
        "union"
    }
}

/// Duplicate-elimination box; required on every cycle for termination.
#[derive(Default)]
pub struct DedupBox {
    seen: HashSet<Tuple>,
}

impl DedupBox {
    /// Construct.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DataflowOp for DedupBox {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, out: &mut Vec<Tuple>) {
        if self.seen.insert(tuple.clone()) {
            out.push(tuple);
        }
    }
    fn name(&self) -> &'static str {
        "dedup"
    }
}

/// Symmetric (pipelined) hash join box: port 0 is the left input, port 1 the
/// right input; output is the concatenation left ++ right.
pub struct HashJoinBox {
    left_key: Expr,
    right_key: Expr,
    left: HashMap<Value, Vec<Tuple>>,
    right: HashMap<Value, Vec<Tuple>>,
}

impl HashJoinBox {
    /// Construct with key expressions over each side's schema.
    pub fn new(left_key: Expr, right_key: Expr) -> Self {
        HashJoinBox { left_key, right_key, left: HashMap::new(), right: HashMap::new() }
    }
}

impl DataflowOp for HashJoinBox {
    fn on_tuple(&mut self, port: usize, tuple: Tuple, out: &mut Vec<Tuple>) {
        if port == 0 {
            let key = self.left_key.eval(&tuple);
            if key.is_null() {
                return;
            }
            if let Some(matches) = self.right.get(&key) {
                for m in matches {
                    out.push(tuple.concat(m));
                }
            }
            self.left.entry(key).or_default().push(tuple);
        } else {
            let key = self.right_key.eval(&tuple);
            if key.is_null() {
                return;
            }
            if let Some(matches) = self.left.get(&key) {
                for m in matches {
                    out.push(m.concat(&tuple));
                }
            }
            self.right.entry(key).or_default().push(tuple);
        }
    }
    fn name(&self) -> &'static str {
        "hash-join"
    }
}

/// Blocking grouped-aggregation box: absorbs everything, emits on flush.
pub struct AggregateBox {
    agg: GroupAggregator,
    emitted: bool,
}

impl AggregateBox {
    /// Construct.
    pub fn new(group_exprs: Vec<Expr>, aggs: Vec<AggExpr>) -> Self {
        AggregateBox { agg: GroupAggregator::new(group_exprs, aggs), emitted: false }
    }
}

impl DataflowOp for AggregateBox {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, out: &mut Vec<Tuple>) {
        let _ = out;
        self.agg.update(&tuple);
        self.emitted = false;
    }
    fn on_flush(&mut self, out: &mut Vec<Tuple>) {
        if !self.emitted {
            out.extend(self.agg.finalize());
            self.emitted = true;
        }
    }
    fn name(&self) -> &'static str {
        "aggregate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use crate::expr::BinaryOp;

    fn row(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn linear_pipeline_tree() {
        // filter(col0 > 1) -> project(col1)
        let mut g = OpGraph::new();
        let filter = g.add(Box::new(FilterBox::new(Expr::col(0).gt(Expr::lit(1i64)))));
        let project = g.add(Box::new(ProjectBox::new(vec![Expr::col(1)])));
        g.connect(filter, project, 0);
        g.mark_output(project);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());

        let data = vec![row(&[1, 10]), row(&[2, 20]), row(&[3, 30])];
        let out = g.run(vec![(filter, 0, data)]);
        assert_eq!(out, vec![row(&[20]), row(&[30])]);
    }

    #[test]
    fn dag_one_source_two_consumers() {
        // source -> filter_a (col0 = 1), source -> filter_b (col0 = 2), both outputs.
        let mut g = OpGraph::new();
        let union = g.add(Box::new(UnionBox));
        let fa = g.add(Box::new(FilterBox::new(Expr::col(0).eq(Expr::lit(1i64)))));
        let fb = g.add(Box::new(FilterBox::new(Expr::col(0).eq(Expr::lit(2i64)))));
        g.connect(union, fa, 0);
        g.connect(union, fb, 0);
        g.mark_output(fa);
        g.mark_output(fb);
        let out = g.run(vec![(union, 0, vec![row(&[1]), row(&[2]), row(&[3])])]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn hash_join_box_joins_both_orders() {
        let mut g = OpGraph::new();
        let join = g.add(Box::new(HashJoinBox::new(Expr::col(0), Expr::col(0))));
        g.mark_output(join);
        let left = vec![row(&[1, 100]), row(&[2, 200])];
        let right = vec![row(&[2, 999]), row(&[1, 888]), row(&[3, 777])];
        let mut out = g.run(vec![(join, 0, left), (join, 1, right)]);
        out.sort_by(|a, b| a.get(0).total_cmp(b.get(0)));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], row(&[1, 100, 1, 888]));
        assert_eq!(out[1], row(&[2, 200, 2, 999]));
    }

    #[test]
    fn aggregate_box_emits_on_flush() {
        let mut g = OpGraph::new();
        let agg = g.add(Box::new(AggregateBox::new(
            vec![Expr::col(0)],
            vec![AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(1)), name: "s".into() }],
        )));
        g.mark_output(agg);
        let data = vec![row(&[1, 10]), row(&[1, 5]), row(&[2, 3])];
        let mut out = g.run(vec![(agg, 0, data)]);
        out.sort_by(|a, b| a.get(0).total_cmp(b.get(0)));
        assert_eq!(out, vec![row(&[1, 15]), row(&[2, 3])]);
    }

    #[test]
    fn cyclic_graph_computes_transitive_closure() {
        // Recursive reachability from vertex 0 over an edge table, expressed as
        // a cyclic dataflow:  frontier --(join with edges)--> dedup --> frontier.
        let edges = vec![row(&[0, 1]), row(&[1, 2]), row(&[2, 3]), row(&[3, 1]), row(&[4, 5])];

        let mut g = OpGraph::new();
        // Join port 0: frontier tuples (vertex); port 1: edge tuples (src, dst).
        let join = g.add(Box::new(HashJoinBox::new(Expr::col(0), Expr::col(0))));
        // Project the destination vertex of the matched edge.
        let project = g.add(Box::new(ProjectBox::new(vec![Expr::col(2)])));
        let dedup = g.add(Box::new(DedupBox::new()));
        g.connect(join, project, 0);
        g.connect(project, dedup, 0);
        // Feedback edge: newly reached vertices re-enter the join as frontier.
        g.connect(dedup, join, 0);
        g.mark_output(dedup);

        let out = g.run(vec![
            (join, 1, edges),
            (join, 0, vec![row(&[0])]),
            // Seed the dedup so the start vertex is not re-reported.
            (dedup, 0, vec![row(&[0])]),
        ]);
        let mut reached: Vec<i64> = out.iter().filter_map(|t| t.get(0).as_i64()).collect();
        reached.sort_unstable();
        reached.dedup();
        // 0 reaches 1, 2, 3 (via the cycle 1->2->3->1) but not 4 or 5.
        assert_eq!(reached, vec![0, 1, 2, 3]);
    }

    #[test]
    fn delivery_budget_stops_runaway_cycles() {
        // A cycle without dedup would loop forever; the budget bounds it.
        let mut g = OpGraph::new();
        let a = g.add(Box::new(UnionBox));
        let b = g.add(Box::new(UnionBox));
        g.connect(a, b, 0);
        g.connect(b, a, 0);
        g.mark_output(b);
        g.delivery_budget = 1000;
        let out = g.run(vec![(a, 0, vec![row(&[1])])]);
        assert!(out.len() <= 1000);
    }

    #[test]
    fn filter_with_complex_predicate() {
        let mut g = OpGraph::new();
        let pred = Expr::col(0)
            .gt(Expr::lit(0i64))
            .and(Expr::col(1).binary(BinaryOp::Lt, Expr::lit(100i64)));
        let f = g.add(Box::new(FilterBox::new(pred)));
        g.mark_output(f);
        let out = g.run(vec![(f, 0, vec![row(&[1, 50]), row(&[-1, 50]), row(&[1, 200])])]);
        assert_eq!(out, vec![row(&[1, 50])]);
    }

    #[test]
    fn op_names() {
        assert_eq!(FilterBox::new(Expr::lit(true)).name(), "filter");
        assert_eq!(ProjectBox::new(vec![]).name(), "project");
        assert_eq!(DedupBox::new().name(), "dedup");
        assert_eq!(UnionBox.name(), "union");
        assert_eq!(HashJoinBox::new(Expr::col(0), Expr::col(0)).name(), "hash-join");
        assert_eq!(AggregateBox::new(vec![], vec![]).name(), "aggregate");
    }
}
