//! Local relational operators.
//!
//! These are the building blocks each PIER node runs over its local data:
//! selection, projection, grouped aggregation (producing *mergeable partial
//! state*, see [`crate::aggregate`]), duplicate elimination, limits, and a
//! top-k collector used at the query origin for `ORDER BY … LIMIT` queries
//! like the paper's Table 1.

use crate::aggregate::AggState;
use crate::expr::Expr;
use crate::plan::{AggExpr, SortKey};
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Apply a filter predicate to a stream of tuples.
#[derive(Clone, Debug)]
pub struct FilterOp {
    /// The predicate.
    pub predicate: Expr,
}

impl FilterOp {
    /// Construct.
    pub fn new(predicate: Expr) -> Self {
        FilterOp { predicate }
    }

    /// Does a tuple pass?
    pub fn accepts(&self, tuple: &Tuple) -> bool {
        self.predicate.matches(tuple)
    }

    /// Filter a vector of tuples.
    pub fn apply(&self, tuples: Vec<Tuple>) -> Vec<Tuple> {
        tuples.into_iter().filter(|t| self.accepts(t)).collect()
    }
}

/// Compute projections over a stream of tuples.
#[derive(Clone, Debug)]
pub struct ProjectOp {
    /// Expressions producing the output columns.
    pub exprs: Vec<Expr>,
}

impl ProjectOp {
    /// Construct.
    pub fn new(exprs: Vec<Expr>) -> Self {
        ProjectOp { exprs }
    }

    /// Project one tuple.
    pub fn apply_one(&self, tuple: &Tuple) -> Tuple {
        Tuple::new(self.exprs.iter().map(|e| e.eval(tuple)).collect())
    }

    /// Project a vector of tuples.
    pub fn apply(&self, tuples: &[Tuple]) -> Vec<Tuple> {
        tuples.iter().map(|t| self.apply_one(t)).collect()
    }
}

/// The key identifying a group (the evaluated GROUP BY expressions).
pub type GroupKey = Vec<Value>;

/// Grouped aggregation producing mergeable partial states.
///
/// The same structure is used in three places: at leaf nodes (absorbing local
/// tuples), at interior nodes of the aggregation tree (merging partial states
/// from children), and at the query origin (final merge before finalization).
#[derive(Clone, Debug)]
pub struct GroupAggregator {
    group_exprs: Vec<Expr>,
    aggs: Vec<AggExpr>,
    groups: HashMap<GroupKey, Vec<AggState>>,
}

impl GroupAggregator {
    /// Construct for the given grouping and aggregate expressions.
    pub fn new(group_exprs: Vec<Expr>, aggs: Vec<AggExpr>) -> Self {
        GroupAggregator { group_exprs, aggs, groups: HashMap::new() }
    }

    /// Absorb one input tuple.
    pub fn update(&mut self, tuple: &Tuple) {
        let key: GroupKey = self.group_exprs.iter().map(|e| e.eval(tuple)).collect();
        let aggs = &self.aggs;
        let states =
            self.groups.entry(key).or_insert_with(|| aggs.iter().map(|a| a.func.init()).collect());
        for (state, spec) in states.iter_mut().zip(aggs) {
            let value = match &spec.arg {
                Some(e) => e.eval(tuple),
                None => Value::Int(1), // COUNT(*)
            };
            state.update(&value);
        }
    }

    /// Merge a partial state (from another node) for one group.
    pub fn merge_group(&mut self, key: GroupKey, states: &[AggState]) {
        let aggs = &self.aggs;
        let mine =
            self.groups.entry(key).or_insert_with(|| aggs.iter().map(|a| a.func.init()).collect());
        for (m, s) in mine.iter_mut().zip(states) {
            m.merge(s);
        }
    }

    /// Merge every group of another aggregator.
    pub fn merge(&mut self, other: &GroupAggregator) {
        for (key, states) in &other.groups {
            self.merge_group(key.clone(), states);
        }
    }

    /// Number of groups currently held.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Is there any state at all?
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Drain into `(group key, partial states)` pairs — what gets shipped up
    /// the aggregation tree.
    pub fn take_partials(&mut self) -> Vec<(GroupKey, Vec<AggState>)> {
        self.groups.drain().collect()
    }

    /// Snapshot of the partial states without draining.
    pub fn partials(&self) -> Vec<(GroupKey, Vec<AggState>)> {
        self.groups.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Finalize every group into output tuples: group columns then aggregates.
    /// For a global aggregate (no GROUP BY) with no input, a single row of
    /// "empty" aggregates is produced, matching SQL semantics.
    pub fn finalize(&self) -> Vec<Tuple> {
        if self.groups.is_empty() && self.group_exprs.is_empty() {
            let values: Vec<Value> = self.aggs.iter().map(|a| a.func.init().finalize()).collect();
            return vec![Tuple::new(values)];
        }
        self.groups
            .iter()
            .map(|(key, states)| {
                let mut values = key.clone();
                values.extend(states.iter().map(|s| s.finalize()));
                Tuple::new(values)
            })
            .collect()
    }
}

/// Compare two tuples on a list of sort keys.
pub fn compare_on(a: &Tuple, b: &Tuple, keys: &[SortKey]) -> Ordering {
    for key in keys {
        let ord = a.get(key.column).total_cmp(b.get(key.column));
        let ord = if key.desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort tuples on a list of keys (stable).
pub fn sort_tuples(tuples: &mut [Tuple], keys: &[SortKey]) {
    tuples.sort_by(|a, b| compare_on(a, b, keys));
}

/// An `ORDER BY … LIMIT k` collector: keeps only the best `k` rows seen.
#[derive(Clone, Debug)]
pub struct TopK {
    keys: Vec<SortKey>,
    limit: usize,
    rows: Vec<Tuple>,
}

impl TopK {
    /// Construct with sort keys and a limit (`usize::MAX` for "sort only").
    pub fn new(keys: Vec<SortKey>, limit: usize) -> Self {
        TopK { keys, limit, rows: Vec::new() }
    }

    /// Offer a row.
    pub fn push(&mut self, tuple: Tuple) {
        self.rows.push(tuple);
        if self.rows.len() > self.limit.saturating_mul(4).max(64) {
            self.compact();
        }
    }

    fn compact(&mut self) {
        sort_tuples(&mut self.rows, &self.keys);
        self.rows.truncate(self.limit);
    }

    /// Number of rows currently buffered.
    pub fn len(&self) -> usize {
        self.rows.len().min(self.limit)
    }

    /// Is the collector empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The final, sorted, limited rows.
    pub fn finish(mut self) -> Vec<Tuple> {
        self.compact();
        self.rows
    }

    /// Sorted, limited rows without consuming the collector.
    pub fn snapshot(&self) -> Vec<Tuple> {
        let mut rows = self.rows.clone();
        sort_tuples(&mut rows, &self.keys);
        rows.truncate(self.limit);
        rows
    }
}

/// Duplicate elimination.
#[derive(Clone, Debug, Default)]
pub struct Distinct {
    seen: std::collections::HashSet<Tuple>,
}

impl Distinct {
    /// Construct.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` the first time a tuple is seen.
    pub fn insert(&mut self, tuple: &Tuple) -> bool {
        self.seen.insert(tuple.clone())
    }

    /// Number of distinct tuples seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Nothing seen yet?
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// Row-count limiter.
#[derive(Clone, Debug)]
pub struct Limit {
    remaining: usize,
}

impl Limit {
    /// Allow at most `n` rows through.
    pub fn new(n: usize) -> Self {
        Limit { remaining: n }
    }

    /// Returns `true` while the limit has not been exhausted.
    pub fn admit(&mut self) -> bool {
        if self.remaining == 0 {
            false
        } else {
            self.remaining -= 1;
            true
        }
    }

    /// Rows still admissible.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;

    fn row(a: i64, b: i64) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::Int(b)])
    }

    #[test]
    fn filter_and_project() {
        let rows = vec![row(1, 10), row(2, 20), row(3, 30)];
        let f = FilterOp::new(Expr::col(0).gt(Expr::lit(1i64)));
        let kept = f.apply(rows.clone());
        assert_eq!(kept.len(), 2);
        let p = ProjectOp::new(vec![Expr::col(1), Expr::col(0)]);
        let projected = p.apply(&kept);
        assert_eq!(projected[0], row(20, 2));
        assert_eq!(p.apply_one(&row(5, 50)), row(50, 5));
    }

    #[test]
    fn group_aggregator_counts_and_sums() {
        let mut agg = GroupAggregator::new(
            vec![Expr::col(0)],
            vec![
                AggExpr { func: AggFunc::Count, arg: None, name: "c".into() },
                AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(1)), name: "s".into() },
            ],
        );
        agg.update(&row(1, 10));
        agg.update(&row(1, 5));
        agg.update(&row(2, 7));
        assert_eq!(agg.group_count(), 2);
        let mut out = agg.finalize();
        out.sort_by(|a, b| a.get(0).total_cmp(b.get(0)));
        assert_eq!(out[0], Tuple::new(vec![Value::Int(1), Value::Int(2), Value::Int(15)]));
        assert_eq!(out[1], Tuple::new(vec![Value::Int(2), Value::Int(1), Value::Int(7)]));
    }

    #[test]
    fn group_aggregator_merge_matches_single_pass() {
        let specs = vec![
            AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(1)), name: "s".into() },
            AggExpr { func: AggFunc::Max, arg: Some(Expr::col(1)), name: "m".into() },
        ];
        let rows: Vec<Tuple> = (0..50).map(|i| row(i % 5, i)).collect();

        let mut whole = GroupAggregator::new(vec![Expr::col(0)], specs.clone());
        for r in &rows {
            whole.update(r);
        }

        let mut left = GroupAggregator::new(vec![Expr::col(0)], specs.clone());
        let mut right = GroupAggregator::new(vec![Expr::col(0)], specs.clone());
        for (i, r) in rows.iter().enumerate() {
            if i % 2 == 0 {
                left.update(r);
            } else {
                right.update(r);
            }
        }
        left.merge(&right);

        let mut a = whole.finalize();
        let mut b = left.finalize();
        let keys = vec![SortKey { column: 0, desc: false }];
        sort_tuples(&mut a, &keys);
        sort_tuples(&mut b, &keys);
        assert_eq!(a, b);
    }

    #[test]
    fn global_aggregate_with_no_rows_yields_one_row() {
        let agg = GroupAggregator::new(
            vec![],
            vec![
                AggExpr { func: AggFunc::Count, arg: None, name: "c".into() },
                AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(0)), name: "s".into() },
            ],
        );
        let out = agg.finalize();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], Tuple::new(vec![Value::Int(0), Value::Null]));
        // But a grouped aggregate with no rows yields no rows.
        let grouped = GroupAggregator::new(vec![Expr::col(0)], vec![]);
        assert!(grouped.finalize().is_empty());
        assert!(grouped.is_empty());
    }

    #[test]
    fn take_partials_drains() {
        let mut agg = GroupAggregator::new(
            vec![Expr::col(0)],
            vec![AggExpr { func: AggFunc::Count, arg: None, name: "c".into() }],
        );
        agg.update(&row(1, 1));
        let partials = agg.take_partials();
        assert_eq!(partials.len(), 1);
        assert!(agg.is_empty());
        assert_eq!(agg.partials().len(), 0);
    }

    #[test]
    fn topk_keeps_best_rows() {
        let keys = vec![SortKey { column: 1, desc: true }];
        let mut topk = TopK::new(keys, 3);
        for i in 0..100 {
            topk.push(row(i, (i * 37) % 101));
        }
        let out = topk.finish();
        assert_eq!(out.len(), 3);
        // Rows must be in descending order of column 1 and be the 3 largest.
        assert!(out[0].get(1).total_cmp(out[1].get(1)) != Ordering::Less);
        assert!(out[1].get(1).total_cmp(out[2].get(1)) != Ordering::Less);
        assert_eq!(out[0].get(1), &Value::Int(100));
    }

    #[test]
    fn topk_snapshot_and_ties() {
        let keys = vec![SortKey { column: 0, desc: false }, SortKey { column: 1, desc: true }];
        let mut topk = TopK::new(keys, 2);
        topk.push(row(1, 5));
        topk.push(row(1, 9));
        topk.push(row(0, 1));
        let snap = topk.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], row(0, 1));
        assert_eq!(snap[1], row(1, 9));
        assert_eq!(topk.len(), 2);
        assert!(!topk.is_empty());
    }

    #[test]
    fn distinct_and_limit() {
        let mut d = Distinct::new();
        assert!(d.is_empty());
        assert!(d.insert(&row(1, 1)));
        assert!(!d.insert(&row(1, 1)));
        assert!(d.insert(&row(1, 2)));
        assert_eq!(d.len(), 2);

        let mut l = Limit::new(2);
        assert!(l.admit());
        assert!(l.admit());
        assert!(!l.admit());
        assert_eq!(l.remaining(), 0);
    }

    #[test]
    fn sort_tuples_multiple_keys() {
        let mut rows = vec![row(2, 1), row(1, 2), row(1, 1), row(2, 2)];
        sort_tuples(
            &mut rows,
            &[SortKey { column: 0, desc: false }, SortKey { column: 1, desc: true }],
        );
        assert_eq!(rows, vec![row(1, 2), row(1, 1), row(2, 2), row(2, 1)]);
    }
}
