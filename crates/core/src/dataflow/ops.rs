//! Local relational operators.
//!
//! These are the building blocks each PIER node runs over its local data:
//! selection, projection, grouped aggregation (producing *mergeable partial
//! state*, see [`crate::aggregate`]), duplicate elimination, limits, and a
//! top-k collector used at the query origin for `ORDER BY … LIMIT` queries
//! like the paper's Table 1.

use crate::aggregate::AggState;
use crate::column::{Column, ColumnData, ColumnarBatch};
use crate::expr::Expr;
use crate::kernel::Kernel;
use crate::plan::{AggExpr, SortKey};
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Apply a filter predicate to a stream of tuples.
#[derive(Clone, Debug)]
pub struct FilterOp {
    /// The predicate.
    pub predicate: Expr,
}

impl FilterOp {
    /// Construct.
    pub fn new(predicate: Expr) -> Self {
        FilterOp { predicate }
    }

    /// Does a tuple pass?
    pub fn accepts(&self, tuple: &Tuple) -> bool {
        self.predicate.matches(tuple)
    }

    /// Filter a vector of tuples.
    pub fn apply(&self, tuples: Vec<Tuple>) -> Vec<Tuple> {
        tuples.into_iter().filter(|t| self.accepts(t)).collect()
    }
}

/// Compute projections over a stream of tuples.
#[derive(Clone, Debug)]
pub struct ProjectOp {
    /// Expressions producing the output columns.
    pub exprs: Vec<Expr>,
}

impl ProjectOp {
    /// Construct.
    pub fn new(exprs: Vec<Expr>) -> Self {
        ProjectOp { exprs }
    }

    /// Project one tuple.
    pub fn apply_one(&self, tuple: &Tuple) -> Tuple {
        Tuple::new(self.exprs.iter().map(|e| e.eval(tuple)).collect())
    }

    /// Project a vector of tuples.
    pub fn apply(&self, tuples: &[Tuple]) -> Vec<Tuple> {
        tuples.iter().map(|t| self.apply_one(t)).collect()
    }
}

/// The key identifying a group (the evaluated GROUP BY expressions).
pub type GroupKey = Vec<Value>;

/// A group-by key or aggregate argument resolved against a batch.
///
/// Plain column references borrow the batch column and index it through the
/// selection vector, avoiding a gathered copy per batch; anything computed
/// evaluates densely once (position `j` is then row `j` of the result).
enum EvalCol<'a> {
    /// Borrowed batch column; dense position `j` maps to row `sel[j]`.
    Batch { col: &'a Column, sel: &'a [u32] },
    /// Dense kernel output aligned with the selection.
    Dense(Column),
}

impl<'a> EvalCol<'a> {
    fn resolve(k: &Kernel, batch: &'a ColumnarBatch, sel: &'a [u32]) -> EvalCol<'a> {
        if let Kernel::Column(i) = k {
            if let Some(col) = batch.column(*i) {
                return EvalCol::Batch { col, sel };
            }
        }
        EvalCol::Dense(k.eval(batch, sel))
    }

    #[inline]
    fn pregroup_hash(&self, j: usize, seed: u64) -> u64 {
        match self {
            EvalCol::Batch { col, sel } => col.pregroup_hash(sel[j] as usize, seed),
            EvalCol::Dense(c) => c.pregroup_hash(j, seed),
        }
    }

    #[inline]
    fn rows_eq(&self, a: usize, b: usize) -> bool {
        match self {
            EvalCol::Batch { col, sel } => col.rows_eq(sel[a] as usize, sel[b] as usize),
            EvalCol::Dense(c) => c.rows_eq(a, b),
        }
    }

    fn value_at(&self, j: usize) -> Value {
        match self {
            EvalCol::Batch { col, sel } => col.value_at(sel[j] as usize),
            EvalCol::Dense(c) => c.value_at(j),
        }
    }

    /// For an integer column: the raw values, their validity, and the
    /// dense-position-to-row mapping (`None` when positions are row indices
    /// already).  Lets the grouping fast path skip `Value` materialization.
    fn data(&self) -> &ColumnData {
        match self {
            EvalCol::Batch { col, .. } => &col.data,
            EvalCol::Dense(c) => &c.data,
        }
    }

    #[allow(clippy::type_complexity)]
    fn int_view(&self) -> Option<(&[i64], &crate::column::Bitmap, Option<&[u32]>)> {
        let (col, sel) = match self {
            EvalCol::Batch { col, sel } => (*col, Some(*sel)),
            EvalCol::Dense(c) => (c, None),
        };
        match &col.data {
            ColumnData::Int(v) => Some((v, &col.validity, sel)),
            _ => None,
        }
    }
}

/// Grouped aggregation producing mergeable partial states.
///
/// The same structure is used in three places: at leaf nodes (absorbing local
/// tuples), at interior nodes of the aggregation tree (merging partial states
/// from children), and at the query origin (final merge before finalization).
#[derive(Clone, Debug)]
pub struct GroupAggregator {
    group_exprs: Vec<Expr>,
    aggs: Vec<AggExpr>,
    groups: HashMap<GroupKey, Vec<AggState>>,
    /// Compiled kernels for the grouping expressions / aggregate arguments,
    /// used by [`GroupAggregator::update_batch`].
    group_kernels: Vec<Kernel>,
    arg_kernels: Vec<Option<Kernel>>,
}

impl GroupAggregator {
    /// Construct for the given grouping and aggregate expressions.
    pub fn new(group_exprs: Vec<Expr>, aggs: Vec<AggExpr>) -> Self {
        let group_kernels = Kernel::compile_all(&group_exprs);
        let arg_kernels = aggs.iter().map(|a| a.arg.as_ref().map(Kernel::compile)).collect();
        GroupAggregator { group_exprs, aggs, groups: HashMap::new(), group_kernels, arg_kernels }
    }

    /// Absorb one input tuple.
    pub fn update(&mut self, tuple: &Tuple) {
        let key: GroupKey = self.group_exprs.iter().map(|e| e.eval(tuple)).collect();
        let aggs = &self.aggs;
        let states =
            self.groups.entry(key).or_insert_with(|| aggs.iter().map(|a| a.func.init()).collect());
        for (state, spec) in states.iter_mut().zip(aggs) {
            let value = match &spec.arg {
                Some(e) => e.eval(tuple),
                None => Value::Int(1), // COUNT(*)
            };
            state.update(&value);
        }
    }

    /// Absorb `sel` rows of a columnar batch — the vectorized equivalent of
    /// calling [`GroupAggregator::update`] per selected row, with identical
    /// results (per-group fold order is the batch's row order, so even float
    /// sums are bit-equal to the scalar path).
    ///
    /// Rows are pre-grouped *within the batch* first: one hash per row
    /// computed straight off the typed columns, one `GroupKey`
    /// materialization per distinct group, then per-group folds that run
    /// over column slices.  The scalar path pays a key allocation plus a
    /// `HashMap` probe per row; this pays them per group per batch.
    pub fn update_batch(&mut self, batch: &ColumnarBatch, sel: &[u32]) {
        if sel.is_empty() {
            return;
        }
        let n = sel.len();
        // Plain column references — the common shape of GROUP BY keys and
        // aggregate arguments — borrow the batch column in place (dense
        // position `j` maps through `sel`); computed expressions evaluate
        // densely once per batch.
        let gcols: Vec<EvalCol<'_>> =
            self.group_kernels.iter().map(|k| EvalCol::resolve(k, batch, sel)).collect();
        let acols: Vec<Option<EvalCol<'_>>> = self
            .arg_kernels
            .iter()
            .map(|k| k.as_ref().map(|k| EvalCol::resolve(k, batch, sel)))
            .collect();

        // Pre-group: assign each dense position a batch-local group id.
        //
        // The common monitoring shape — GROUP BY one integer column drawn
        // from a narrow range (node id, rule id, port) — takes a dense
        // value-indexed map: one array load per row, no hashing.  Everything
        // else falls back to bucketing by `pregroup_hash` with `rows_eq`
        // verification (hash collisions fall through to new groups
        // correctly).  Both paths produce identical first-seen group ids, so
        // fold order — and therefore float summation order — matches the
        // scalar path bit for bit.
        const EMPTY: u32 = u32::MAX;
        let mut reps: Vec<usize> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        let mut group_of: Vec<u32> = vec![0; n];
        let mut assigned = false;
        if let [gc] = &gcols[..] {
            if let Some((v, validity, map)) = gc.int_view() {
                let dense = validity.all_are_valid();
                let at = |j: usize| match map {
                    Some(s) => s[j] as usize,
                    None => j,
                };
                let (mut lo, mut hi) = (i64::MAX, i64::MIN);
                for j in 0..n {
                    let i = at(j);
                    if dense || validity.get(i) {
                        lo = lo.min(v[i]);
                        hi = hi.max(v[i]);
                    }
                }
                // Slot 0 is reserved for NULL keys; cap the map at 4K slots.
                if matches!(hi.checked_sub(lo), Some(w) if w < 4095) {
                    let width = (hi - lo) as usize + 2;
                    let mut dmap: Vec<u32> = vec![EMPTY; width];
                    for (j, g_out) in group_of.iter_mut().enumerate() {
                        let i = at(j);
                        let slot =
                            if dense || validity.get(i) { (v[i] - lo) as usize + 1 } else { 0 };
                        let entry = &mut dmap[slot];
                        let g = if *entry == EMPTY {
                            let g = reps.len() as u32;
                            *entry = g;
                            reps.push(j);
                            counts.push(0);
                            g
                        } else {
                            *entry
                        };
                        *g_out = g;
                        counts[g as usize] += 1;
                    }
                    assigned = true;
                }
            }
        }
        if !assigned {
            let mut cap = 64usize;
            let mut table: Vec<(u64, u32)> = vec![(0, EMPTY); cap];
            let mut ghash: Vec<u64> = Vec::new();
            for (j, g_out) in group_of.iter_mut().enumerate() {
                let mut h = 0xA11E_5EEDu64;
                for c in &gcols {
                    h = c.pregroup_hash(j, h);
                }
                let mask = cap - 1;
                let mut slot = (h as usize) & mask;
                let g = loop {
                    let (th, tg) = table[slot];
                    if tg == EMPTY {
                        let g = reps.len() as u32;
                        table[slot] = (h, g);
                        reps.push(j);
                        ghash.push(h);
                        counts.push(0);
                        break g;
                    }
                    if th == h && gcols.iter().all(|c| c.rows_eq(j, reps[tg as usize])) {
                        break tg;
                    }
                    slot = (slot + 1) & mask;
                };
                *g_out = g;
                counts[g as usize] += 1;
                if reps.len() * 2 >= cap {
                    // Keep the probe table at most half full: rebuild
                    // double-sized from the per-group hashes.
                    cap *= 2;
                    table = vec![(0, EMPTY); cap];
                    let mask = cap - 1;
                    for (g, &h) in ghash.iter().enumerate() {
                        let mut slot = (h as usize) & mask;
                        while table[slot].1 != EMPTY {
                            slot = (slot + 1) & mask;
                        }
                        table[slot] = (h, g as u32);
                    }
                }
            }
        }
        let ngroups = reps.len();

        // Typed single-pass fold: when every aggregate maps onto a typed
        // accumulator (the numeric COUNT/SUM/AVG/MIN/MAX shapes), scatter
        // each argument column into per-group accumulator arrays indexed by
        // `group_of` — no counting sort, no per-group dispatch.  SUM/AVG
        // accumulators are seeded from the carried state, so the f64
        // additions continue in encounter order and stay bit-identical to
        // the scalar fold.
        if let Some(mut accs) = plan_batch_accs(&self.aggs, &acols, ngroups) {
            let keys: Vec<GroupKey> =
                (0..ngroups).map(|g| gcols.iter().map(|c| c.value_at(reps[g])).collect()).collect();
            let aggs = &self.aggs;
            for (g, key) in keys.iter().enumerate() {
                let states = self
                    .groups
                    .entry(key.clone())
                    .or_insert_with(|| aggs.iter().map(|a| a.func.init()).collect());
                for (acc, state) in accs.iter_mut().zip(states.iter()) {
                    acc.seed(g, state);
                }
            }
            for (acc, col) in accs.iter_mut().zip(&acols) {
                if let Some(col) = col {
                    scatter_column(acc, col, &group_of);
                }
            }
            for (g, key) in keys.iter().enumerate() {
                let states = self.groups.get_mut(key).expect("group entered above");
                for (acc, state) in accs.iter().zip(states.iter_mut()) {
                    acc.write_back(g, state, &counts);
                }
            }
            return;
        }

        let mut offsets: Vec<u32> = Vec::with_capacity(ngroups + 1);
        offsets.push(0);
        let mut acc = 0u32;
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..ngroups].to_vec();
        let mut members = vec![0u32; n];
        for (j, &g) in group_of.iter().enumerate() {
            let slot = &mut cursor[g as usize];
            members[*slot as usize] = j as u32;
            *slot += 1;
        }

        let aggs = &self.aggs;
        for g in 0..ngroups {
            let rows = &members[offsets[g] as usize..offsets[g + 1] as usize];
            let key: GroupKey = gcols.iter().map(|c| c.value_at(reps[g])).collect();
            let states = self
                .groups
                .entry(key)
                .or_insert_with(|| aggs.iter().map(|a| a.func.init()).collect());
            for (state, col) in states.iter_mut().zip(&acols) {
                match col {
                    Some(col) => fold_column(state, col, rows),
                    None => {
                        // COUNT(*)-style: every row contributes `Int(1)`.
                        if let AggState::Count { count } = state {
                            *count += rows.len() as u64;
                        } else {
                            for _ in rows {
                                state.update(&Value::Int(1));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Merge a partial state (from another node) for one group.
    pub fn merge_group(&mut self, key: GroupKey, states: &[AggState]) {
        let aggs = &self.aggs;
        let mine =
            self.groups.entry(key).or_insert_with(|| aggs.iter().map(|a| a.func.init()).collect());
        for (m, s) in mine.iter_mut().zip(states) {
            m.merge(s);
        }
    }

    /// Merge every group of another aggregator.
    pub fn merge(&mut self, other: &GroupAggregator) {
        for (key, states) in &other.groups {
            self.merge_group(key.clone(), states);
        }
    }

    /// Number of groups currently held.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Is there any state at all?
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Drain into `(group key, partial states)` pairs — what gets shipped up
    /// the aggregation tree.
    pub fn take_partials(&mut self) -> Vec<(GroupKey, Vec<AggState>)> {
        self.groups.drain().collect()
    }

    /// Snapshot of the partial states without draining.
    pub fn partials(&self) -> Vec<(GroupKey, Vec<AggState>)> {
        self.groups.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Finalize every group into output tuples: group columns then aggregates.
    /// For a global aggregate (no GROUP BY) with no input, a single row of
    /// "empty" aggregates is produced, matching SQL semantics.
    pub fn finalize(&self) -> Vec<Tuple> {
        if self.groups.is_empty() && self.group_exprs.is_empty() {
            let values: Vec<Value> = self.aggs.iter().map(|a| a.func.init().finalize()).collect();
            return vec![Tuple::new(values)];
        }
        self.groups
            .iter()
            .map(|(key, states)| {
                let mut values = key.clone();
                values.extend(states.iter().map(|s| s.finalize()));
                Tuple::new(values)
            })
            .collect()
    }
}

/// Per-group typed accumulators for the single-pass batch fold.  One variant
/// per supported (aggregate, column type) shape; `plan_batch_accs` returns
/// `None` — falling back to the sort-and-fold path — if any aggregate in the
/// plan doesn't fit.
enum BatchAcc {
    /// `COUNT(*)`: the pre-group phase already counted every group.
    CountStar,
    /// `COUNT(expr)`: non-null inputs per group.
    Count(Vec<u64>),
    /// `SUM(expr)`: running sums seeded from the carried state, plus a
    /// seen-this-batch flag; `float` records whether the column was Float
    /// (which clears the state's `integral` marker).
    Sum {
        sums: Vec<f64>,
        seen: Vec<bool>,
        float: bool,
    },
    /// `AVG(expr)`: running sums (seeded) and this batch's non-null counts.
    Avg {
        sums: Vec<f64>,
        counts: Vec<u64>,
    },
    MinInt(Vec<Option<i64>>),
    MinFloat(Vec<Option<f64>>),
    MaxInt(Vec<Option<i64>>),
    MaxFloat(Vec<Option<f64>>),
}

fn plan_batch_accs(
    aggs: &[AggExpr],
    acols: &[Option<EvalCol<'_>>],
    ngroups: usize,
) -> Option<Vec<BatchAcc>> {
    use crate::aggregate::AggFunc;
    aggs.iter()
        .zip(acols)
        .map(|(a, acol)| {
            let data = acol.as_ref().map(|c| c.data());
            match (a.func, data) {
                (AggFunc::Count, None) => Some(BatchAcc::CountStar),
                (AggFunc::Count, Some(_)) => Some(BatchAcc::Count(vec![0; ngroups])),
                (AggFunc::Sum, Some(d @ (ColumnData::Int(_) | ColumnData::Float(_)))) => {
                    Some(BatchAcc::Sum {
                        sums: vec![0.0; ngroups],
                        seen: vec![false; ngroups],
                        float: matches!(d, ColumnData::Float(_)),
                    })
                }
                (AggFunc::Avg, Some(ColumnData::Int(_) | ColumnData::Float(_))) => {
                    Some(BatchAcc::Avg { sums: vec![0.0; ngroups], counts: vec![0; ngroups] })
                }
                (AggFunc::Min, Some(ColumnData::Int(_))) => {
                    Some(BatchAcc::MinInt(vec![None; ngroups]))
                }
                (AggFunc::Min, Some(ColumnData::Float(_))) => {
                    Some(BatchAcc::MinFloat(vec![None; ngroups]))
                }
                (AggFunc::Max, Some(ColumnData::Int(_))) => {
                    Some(BatchAcc::MaxInt(vec![None; ngroups]))
                }
                (AggFunc::Max, Some(ColumnData::Float(_))) => {
                    Some(BatchAcc::MaxFloat(vec![None; ngroups]))
                }
                _ => None,
            }
        })
        .collect()
}

impl BatchAcc {
    /// Copy the carried running sum into this batch's accumulator so the
    /// scatter continues the exact f64 addition sequence of the scalar fold.
    fn seed(&mut self, g: usize, state: &AggState) {
        match (self, state) {
            (BatchAcc::Sum { sums, .. }, AggState::Sum { sum, .. }) => sums[g] = *sum,
            (BatchAcc::Avg { sums, .. }, AggState::Avg { sum, .. }) => sums[g] = *sum,
            _ => {}
        }
    }

    /// Merge this batch's accumulator for group `g` back into the carried
    /// state, with the same tie and NULL rules as `AggState::update`.
    fn write_back(&self, g: usize, state: &mut AggState, group_sizes: &[u32]) {
        match (self, state) {
            (BatchAcc::CountStar, AggState::Count { count }) => {
                *count += u64::from(group_sizes[g]);
            }
            (BatchAcc::Count(c), AggState::Count { count }) => *count += c[g],
            (BatchAcc::Sum { sums, seen, float }, AggState::Sum { sum, any, integral }) => {
                if seen[g] {
                    *sum = sums[g];
                    *any = true;
                    if *float {
                        *integral = false;
                    }
                }
            }
            (BatchAcc::Avg { sums, counts }, AggState::Avg { sum, count }) => {
                if counts[g] > 0 {
                    *sum = sums[g];
                    *count += counts[g];
                }
            }
            (BatchAcc::MinInt(best), AggState::Min { min }) => {
                if let Some(b) = best[g] {
                    fold_extremum(min, Value::Int(b), Ordering::Less);
                }
            }
            (BatchAcc::MinFloat(best), AggState::Min { min }) => {
                if let Some(b) = best[g] {
                    fold_extremum(min, Value::Float(b), Ordering::Less);
                }
            }
            (BatchAcc::MaxInt(best), AggState::Max { max }) => {
                if let Some(b) = best[g] {
                    fold_extremum(max, Value::Int(b), Ordering::Greater);
                }
            }
            (BatchAcc::MaxFloat(best), AggState::Max { max }) => {
                if let Some(b) = best[g] {
                    fold_extremum(max, Value::Float(b), Ordering::Greater);
                }
            }
            _ => debug_assert!(false, "batch accumulator / state shape mismatch"),
        }
    }
}

/// Scatter one argument column into its per-group accumulators: a single
/// linear pass over the selection, `acc[group_of[j]] ⊕= column[j]`.
fn scatter_column(acc: &mut BatchAcc, ecol: &EvalCol<'_>, group_of: &[u32]) {
    match ecol {
        EvalCol::Batch { col, sel } => scatter_rows(acc, col, group_of, |j| sel[j] as usize),
        EvalCol::Dense(col) => scatter_rows(acc, col, group_of, |j| j),
    }
}

fn scatter_rows(acc: &mut BatchAcc, col: &Column, group_of: &[u32], idx: impl Fn(usize) -> usize) {
    let dense = col.validity.all_are_valid();
    match (acc, &col.data) {
        (BatchAcc::CountStar, _) => {}
        (BatchAcc::Count(c), _) => {
            for (j, &g) in group_of.iter().enumerate() {
                if col.is_valid(idx(j)) {
                    c[g as usize] += 1;
                }
            }
        }
        (BatchAcc::Sum { sums, seen, .. }, ColumnData::Int(v)) => {
            for (j, &g) in group_of.iter().enumerate() {
                let i = idx(j);
                if dense || col.validity.get(i) {
                    sums[g as usize] += v[i] as f64;
                    seen[g as usize] = true;
                }
            }
        }
        (BatchAcc::Sum { sums, seen, .. }, ColumnData::Float(v)) => {
            for (j, &g) in group_of.iter().enumerate() {
                let i = idx(j);
                if dense || col.validity.get(i) {
                    sums[g as usize] += v[i];
                    seen[g as usize] = true;
                }
            }
        }
        (BatchAcc::Avg { sums, counts }, ColumnData::Int(v)) => {
            for (j, &g) in group_of.iter().enumerate() {
                let i = idx(j);
                if dense || col.validity.get(i) {
                    sums[g as usize] += v[i] as f64;
                    counts[g as usize] += 1;
                }
            }
        }
        (BatchAcc::Avg { sums, counts }, ColumnData::Float(v)) => {
            for (j, &g) in group_of.iter().enumerate() {
                let i = idx(j);
                if dense || col.validity.get(i) {
                    sums[g as usize] += v[i];
                    counts[g as usize] += 1;
                }
            }
        }
        (BatchAcc::MinInt(best), ColumnData::Int(v)) => {
            for (j, &g) in group_of.iter().enumerate() {
                let i = idx(j);
                let b = &mut best[g as usize];
                if (dense || col.validity.get(i)) && b.is_none_or(|b| v[i] < b) {
                    *b = Some(v[i]);
                }
            }
        }
        (BatchAcc::MinFloat(best), ColumnData::Float(v)) => {
            for (j, &g) in group_of.iter().enumerate() {
                let i = idx(j);
                let b = &mut best[g as usize];
                if (dense || col.validity.get(i))
                    && b.is_none_or(|x| v[i].total_cmp(&x) == Ordering::Less)
                {
                    *b = Some(v[i]);
                }
            }
        }
        (BatchAcc::MaxInt(best), ColumnData::Int(v)) => {
            for (j, &g) in group_of.iter().enumerate() {
                let i = idx(j);
                let b = &mut best[g as usize];
                if (dense || col.validity.get(i)) && b.is_none_or(|b| v[i] > b) {
                    *b = Some(v[i]);
                }
            }
        }
        (BatchAcc::MaxFloat(best), ColumnData::Float(v)) => {
            for (j, &g) in group_of.iter().enumerate() {
                let i = idx(j);
                let b = &mut best[g as usize];
                if (dense || col.validity.get(i))
                    && b.is_none_or(|x| v[i].total_cmp(&x) == Ordering::Greater)
                {
                    *b = Some(v[i]);
                }
            }
        }
        _ => debug_assert!(false, "batch accumulator / column shape mismatch"),
    }
}

/// Fold `rows` of a dense argument column into one aggregate state, with
/// typed loops for the numeric states and the scalar `AggState::update` as
/// the general fallback.  The typed loops perform the same f64 additions in
/// the same order as per-row updates, so results are bit-identical.
fn fold_column(state: &mut AggState, ecol: &EvalCol<'_>, rows: &[u32]) {
    match ecol {
        EvalCol::Batch { col, sel } => fold_rows(state, col, rows, |j| sel[j as usize] as usize),
        EvalCol::Dense(col) => fold_rows(state, col, rows, |j| j as usize),
    }
}

fn fold_rows(state: &mut AggState, col: &Column, rows: &[u32], idx: impl Fn(u32) -> usize) {
    let dense = col.validity.all_are_valid();
    match (&mut *state, &col.data) {
        (AggState::Count { count }, _) if dense => *count += rows.len() as u64,
        (AggState::Count { count }, _) => {
            *count += rows.iter().filter(|&&j| col.is_valid(idx(j))).count() as u64;
        }
        (AggState::Sum { sum, any, integral: _ }, ColumnData::Int(v)) => {
            for &j in rows {
                let i = idx(j);
                if dense || col.validity.get(i) {
                    *sum += v[i] as f64;
                    *any = true;
                }
            }
        }
        (AggState::Sum { sum, any, integral }, ColumnData::Float(v)) => {
            for &j in rows {
                let i = idx(j);
                if dense || col.validity.get(i) {
                    *sum += v[i];
                    *any = true;
                    *integral = false;
                }
            }
        }
        (AggState::Avg { sum, count }, ColumnData::Int(v)) => {
            for &j in rows {
                let i = idx(j);
                if dense || col.validity.get(i) {
                    *sum += v[i] as f64;
                    *count += 1;
                }
            }
        }
        (AggState::Avg { sum, count }, ColumnData::Float(v)) => {
            for &j in rows {
                let i = idx(j);
                if dense || col.validity.get(i) {
                    *sum += v[i];
                    *count += 1;
                }
            }
        }
        // MIN/MAX fold to a typed batch-local extremum first, then do one
        // `Value` comparison against the carried state.  Strict comparisons
        // keep the first-seen value on ties, matching the scalar fold.
        (AggState::Min { min }, ColumnData::Int(v)) => {
            let mut best: Option<i64> = None;
            for &j in rows {
                let i = idx(j);
                if (dense || col.validity.get(i)) && best.is_none_or(|b| v[i] < b) {
                    best = Some(v[i]);
                }
            }
            if let Some(b) = best {
                fold_extremum(min, Value::Int(b), Ordering::Less);
            }
        }
        (AggState::Min { min }, ColumnData::Float(v)) => {
            let mut best: Option<f64> = None;
            for &j in rows {
                let i = idx(j);
                if (dense || col.validity.get(i))
                    && best.is_none_or(|b| v[i].total_cmp(&b) == Ordering::Less)
                {
                    best = Some(v[i]);
                }
            }
            if let Some(b) = best {
                fold_extremum(min, Value::Float(b), Ordering::Less);
            }
        }
        (AggState::Max { max }, ColumnData::Int(v)) => {
            let mut best: Option<i64> = None;
            for &j in rows {
                let i = idx(j);
                if (dense || col.validity.get(i)) && best.is_none_or(|b| v[i] > b) {
                    best = Some(v[i]);
                }
            }
            if let Some(b) = best {
                fold_extremum(max, Value::Int(b), Ordering::Greater);
            }
        }
        (AggState::Max { max }, ColumnData::Float(v)) => {
            let mut best: Option<f64> = None;
            for &j in rows {
                let i = idx(j);
                if (dense || col.validity.get(i))
                    && best.is_none_or(|b| v[i].total_cmp(&b) == Ordering::Greater)
                {
                    best = Some(v[i]);
                }
            }
            if let Some(b) = best {
                fold_extremum(max, Value::Float(b), Ordering::Greater);
            }
        }
        _ => {
            for &j in rows {
                state.update(&col.value_at(idx(j)));
            }
        }
    }
}

/// Replace `state` with `candidate` when it is strictly better (`Less` for
/// MIN, `Greater` for MAX) — the same tie-keeps-first rule `AggState::update`
/// applies per value.
fn fold_extremum(state: &mut Option<Value>, candidate: Value, better: Ordering) {
    let replace = match state {
        None => true,
        Some(current) => candidate.total_cmp(current) == better,
    };
    if replace {
        *state = Some(candidate);
    }
}

/// Compare two tuples on a list of sort keys.
pub fn compare_on(a: &Tuple, b: &Tuple, keys: &[SortKey]) -> Ordering {
    for key in keys {
        let ord = a.get(key.column).total_cmp(b.get(key.column));
        let ord = if key.desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort tuples on a list of keys (stable).
pub fn sort_tuples(tuples: &mut [Tuple], keys: &[SortKey]) {
    tuples.sort_by(|a, b| compare_on(a, b, keys));
}

/// An `ORDER BY … LIMIT k` collector: keeps only the best `k` rows seen.
#[derive(Clone, Debug)]
pub struct TopK {
    keys: Vec<SortKey>,
    limit: usize,
    rows: Vec<Tuple>,
}

impl TopK {
    /// Construct with sort keys and a limit (`usize::MAX` for "sort only").
    pub fn new(keys: Vec<SortKey>, limit: usize) -> Self {
        TopK { keys, limit, rows: Vec::new() }
    }

    /// Offer a row.
    pub fn push(&mut self, tuple: Tuple) {
        self.rows.push(tuple);
        if self.rows.len() > self.limit.saturating_mul(4).max(64) {
            self.compact();
        }
    }

    fn compact(&mut self) {
        sort_tuples(&mut self.rows, &self.keys);
        self.rows.truncate(self.limit);
    }

    /// Number of rows currently buffered.
    pub fn len(&self) -> usize {
        self.rows.len().min(self.limit)
    }

    /// Is the collector empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The final, sorted, limited rows.
    pub fn finish(mut self) -> Vec<Tuple> {
        self.compact();
        self.rows
    }

    /// Sorted, limited rows without consuming the collector.
    pub fn snapshot(&self) -> Vec<Tuple> {
        let mut rows = self.rows.clone();
        sort_tuples(&mut rows, &self.keys);
        rows.truncate(self.limit);
        rows
    }
}

/// Duplicate elimination.
#[derive(Clone, Debug, Default)]
pub struct Distinct {
    seen: std::collections::HashSet<Tuple>,
}

impl Distinct {
    /// Construct.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` the first time a tuple is seen.
    pub fn insert(&mut self, tuple: &Tuple) -> bool {
        self.seen.insert(tuple.clone())
    }

    /// Number of distinct tuples seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Nothing seen yet?
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// Row-count limiter.
#[derive(Clone, Debug)]
pub struct Limit {
    remaining: usize,
}

impl Limit {
    /// Allow at most `n` rows through.
    pub fn new(n: usize) -> Self {
        Limit { remaining: n }
    }

    /// Returns `true` while the limit has not been exhausted.
    pub fn admit(&mut self) -> bool {
        if self.remaining == 0 {
            false
        } else {
            self.remaining -= 1;
            true
        }
    }

    /// Rows still admissible.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;

    fn row(a: i64, b: i64) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::Int(b)])
    }

    #[test]
    fn filter_and_project() {
        let rows = vec![row(1, 10), row(2, 20), row(3, 30)];
        let f = FilterOp::new(Expr::col(0).gt(Expr::lit(1i64)));
        let kept = f.apply(rows.clone());
        assert_eq!(kept.len(), 2);
        let p = ProjectOp::new(vec![Expr::col(1), Expr::col(0)]);
        let projected = p.apply(&kept);
        assert_eq!(projected[0], row(20, 2));
        assert_eq!(p.apply_one(&row(5, 50)), row(50, 5));
    }

    #[test]
    fn group_aggregator_counts_and_sums() {
        let mut agg = GroupAggregator::new(
            vec![Expr::col(0)],
            vec![
                AggExpr { func: AggFunc::Count, arg: None, name: "c".into() },
                AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(1)), name: "s".into() },
            ],
        );
        agg.update(&row(1, 10));
        agg.update(&row(1, 5));
        agg.update(&row(2, 7));
        assert_eq!(agg.group_count(), 2);
        let mut out = agg.finalize();
        out.sort_by(|a, b| a.get(0).total_cmp(b.get(0)));
        assert_eq!(out[0], Tuple::new(vec![Value::Int(1), Value::Int(2), Value::Int(15)]));
        assert_eq!(out[1], Tuple::new(vec![Value::Int(2), Value::Int(1), Value::Int(7)]));
    }

    #[test]
    fn group_aggregator_merge_matches_single_pass() {
        let specs = vec![
            AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(1)), name: "s".into() },
            AggExpr { func: AggFunc::Max, arg: Some(Expr::col(1)), name: "m".into() },
        ];
        let rows: Vec<Tuple> = (0..50).map(|i| row(i % 5, i)).collect();

        let mut whole = GroupAggregator::new(vec![Expr::col(0)], specs.clone());
        for r in &rows {
            whole.update(r);
        }

        let mut left = GroupAggregator::new(vec![Expr::col(0)], specs.clone());
        let mut right = GroupAggregator::new(vec![Expr::col(0)], specs.clone());
        for (i, r) in rows.iter().enumerate() {
            if i % 2 == 0 {
                left.update(r);
            } else {
                right.update(r);
            }
        }
        left.merge(&right);

        let mut a = whole.finalize();
        let mut b = left.finalize();
        let keys = vec![SortKey { column: 0, desc: false }];
        sort_tuples(&mut a, &keys);
        sort_tuples(&mut b, &keys);
        assert_eq!(a, b);
    }

    #[test]
    fn global_aggregate_with_no_rows_yields_one_row() {
        let agg = GroupAggregator::new(
            vec![],
            vec![
                AggExpr { func: AggFunc::Count, arg: None, name: "c".into() },
                AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(0)), name: "s".into() },
            ],
        );
        let out = agg.finalize();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], Tuple::new(vec![Value::Int(0), Value::Null]));
        // But a grouped aggregate with no rows yields no rows.
        let grouped = GroupAggregator::new(vec![Expr::col(0)], vec![]);
        assert!(grouped.finalize().is_empty());
        assert!(grouped.is_empty());
    }

    #[test]
    fn take_partials_drains() {
        let mut agg = GroupAggregator::new(
            vec![Expr::col(0)],
            vec![AggExpr { func: AggFunc::Count, arg: None, name: "c".into() }],
        );
        agg.update(&row(1, 1));
        let partials = agg.take_partials();
        assert_eq!(partials.len(), 1);
        assert!(agg.is_empty());
        assert_eq!(agg.partials().len(), 0);
    }

    #[test]
    fn update_batch_matches_per_row_updates() {
        let specs = vec![
            AggExpr { func: AggFunc::Count, arg: None, name: "c".into() },
            AggExpr { func: AggFunc::Count, arg: Some(Expr::col(1)), name: "cn".into() },
            AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(1)), name: "s".into() },
            AggExpr { func: AggFunc::Avg, arg: Some(Expr::col(2)), name: "a".into() },
            AggExpr { func: AggFunc::Min, arg: Some(Expr::col(1)), name: "mn".into() },
            AggExpr { func: AggFunc::Max, arg: Some(Expr::col(2)), name: "mx".into() },
        ];
        let rows: Vec<Tuple> = (0..60)
            .map(|i| {
                let v1 = if i % 7 == 0 { Value::Null } else { Value::Int((i * 13) % 29 - 14) };
                let v2 = if i % 5 == 0 { Value::Null } else { Value::Float(i as f64 * 0.37) };
                Tuple::new(vec![Value::Int(i % 4), v1, v2])
            })
            .collect();

        let mut scalar = GroupAggregator::new(vec![Expr::col(0)], specs.clone());
        for r in &rows {
            scalar.update(r);
        }

        let mut vectorized = GroupAggregator::new(vec![Expr::col(0)], specs);
        let batch = ColumnarBatch::from_rows(&rows);
        vectorized.update_batch(&batch, &batch.full_selection());

        let keys = vec![SortKey { column: 0, desc: false }];
        let mut a = scalar.finalize();
        let mut b = vectorized.finalize();
        sort_tuples(&mut a, &keys);
        sort_tuples(&mut b, &keys);
        assert_eq!(a, b);

        // A sub-selection must fold only the selected rows.
        let mut sub_scalar = GroupAggregator::new(vec![Expr::col(0)], vec![]);
        let mut sub_vec = GroupAggregator::new(vec![Expr::col(0)], vec![]);
        let sel: Vec<u32> = (0..rows.len() as u32).filter(|j| j % 3 == 0).collect();
        for &j in &sel {
            sub_scalar.update(&rows[j as usize]);
        }
        sub_vec.update_batch(&batch, &sel);
        assert_eq!(sub_scalar.group_count(), sub_vec.group_count());
    }

    #[test]
    fn topk_keeps_best_rows() {
        let keys = vec![SortKey { column: 1, desc: true }];
        let mut topk = TopK::new(keys, 3);
        for i in 0..100 {
            topk.push(row(i, (i * 37) % 101));
        }
        let out = topk.finish();
        assert_eq!(out.len(), 3);
        // Rows must be in descending order of column 1 and be the 3 largest.
        assert!(out[0].get(1).total_cmp(out[1].get(1)) != Ordering::Less);
        assert!(out[1].get(1).total_cmp(out[2].get(1)) != Ordering::Less);
        assert_eq!(out[0].get(1), &Value::Int(100));
    }

    #[test]
    fn topk_snapshot_and_ties() {
        let keys = vec![SortKey { column: 0, desc: false }, SortKey { column: 1, desc: true }];
        let mut topk = TopK::new(keys, 2);
        topk.push(row(1, 5));
        topk.push(row(1, 9));
        topk.push(row(0, 1));
        let snap = topk.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], row(0, 1));
        assert_eq!(snap[1], row(1, 9));
        assert_eq!(topk.len(), 2);
        assert!(!topk.is_empty());
    }

    #[test]
    fn distinct_and_limit() {
        let mut d = Distinct::new();
        assert!(d.is_empty());
        assert!(d.insert(&row(1, 1)));
        assert!(!d.insert(&row(1, 1)));
        assert!(d.insert(&row(1, 2)));
        assert_eq!(d.len(), 2);

        let mut l = Limit::new(2);
        assert!(l.admit());
        assert!(l.admit());
        assert!(!l.admit());
        assert_eq!(l.remaining(), 0);
    }

    #[test]
    fn sort_tuples_multiple_keys() {
        let mut rows = vec![row(2, 1), row(1, 2), row(1, 1), row(2, 2)];
        sort_tuples(
            &mut rows,
            &[SortKey { column: 0, desc: false }, SortKey { column: 1, desc: true }],
        );
        assert_eq!(rows, vec![row(1, 2), row(1, 1), row(2, 2), row(2, 1)]);
    }
}
