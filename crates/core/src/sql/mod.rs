//! SQL frontend: lexer, AST, and parser for PIER's dialect.
//!
//! The dialect supports the statements the paper demonstrates:
//!
//! ```sql
//! -- Figure 1: continuous network-wide sum of outbound data rates
//! SELECT SUM(out_rate) FROM netstats CONTINUOUS EVERY 5 SECONDS WINDOW 10 SECONDS;
//!
//! -- Table 1: network-wide top ten intrusion detection rules
//! SELECT rule_id, description, SUM(hits) AS total
//! FROM intrusions GROUP BY rule_id, description
//! ORDER BY SUM(hits) DESC LIMIT 10;
//!
//! -- Keyword filesharing search (two-way distributed equi-join)
//! SELECT f.name, f.owner FROM files f JOIN keywords k ON f.file_id = k.file_id
//! WHERE k.keyword = 'creative-commons';
//!
//! -- Planner introspection: render every pipeline stage instead of executing
//! EXPLAIN SELECT f.name FROM files f JOIN keywords k ON f.file_id = k.file_id
//! WHERE k.keyword = 'mp3';
//!
//! -- Execute AND trace: run the query, aggregate every node's per-operator
//! -- counters over the DHT, render them next to the static plan
//! -- (driven through PierTestbed::explain_analyze)
//! EXPLAIN ANALYZE SELECT SUM(out_rate) FROM netstats CONTINUOUS EVERY 5 SECONDS;
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    AstExpr, ContinuousClause, CreateTableStmt, InsertStmt, JoinClause, OrderItem, SelectItem,
    SelectStmt, Statement, TableRef,
};
pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse, parse_select, ParseError};
