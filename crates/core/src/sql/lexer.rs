//! SQL lexer.
//!
//! Splits query text into tokens: identifiers/keywords, numeric and string
//! literals, operators and punctuation.  Keywords are recognized
//! case-insensitively; identifiers are lower-cased (PIER's namespaces are
//! case-insensitive names).

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword (lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation or operator, e.g. `","`, `"<="`, `"("`.
    Sym(&'static str),
    /// End of input.
    Eof,
}

/// Reserved words of the dialect.  They are lexed as ordinary identifiers
/// (SQL keywords are contextual), but the parser refuses to treat them as
/// implicit aliases; `EXPLAIN` heads the list because it starts a statement.
pub const RESERVED_WORDS: &[&str] = &[
    "explain",
    "analyze",
    "select",
    "from",
    "where",
    "group",
    "having",
    "order",
    "limit",
    "join",
    "on",
    "as",
    "continuous",
    "every",
    "window",
    "and",
    "or",
    "not",
    "asc",
    "desc",
    "create",
    "insert",
    "into",
    "values",
    "table",
    "by",
    "ttl",
    "partition",
];

impl Token {
    /// Is this token the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Is this token one of the dialect's reserved words?
    pub fn is_reserved(&self) -> bool {
        matches!(self, Token::Ident(s) if RESERVED_WORDS.contains(&s.as_str()))
    }

    /// Is this token the given symbol?
    pub fn is_sym(&self, sym: &str) -> bool {
        matches!(self, Token::Sym(s) if *s == sym)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Sym(s) => write!(f, "{s}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Lexing errors.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | '*' | '+' | '/' | '%' | ';' | '.' => {
                let sym = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    '+' => "+",
                    '/' => "/",
                    '%' => "%",
                    ';' => ";",
                    _ => ".",
                };
                tokens.push(Token::Sym(sym));
                i += 1;
            }
            '-' => {
                tokens.push(Token::Sym("-"));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Sym("="));
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Sym("<="));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Sym("<>"));
                    i += 2;
                } else {
                    tokens.push(Token::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Sym(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Sym("<>"));
                    i += 2;
                } else {
                    return Err(LexError { message: "unexpected '!'".into(), position: i });
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            position: i,
                        });
                    }
                    if bytes[j] == b'\'' {
                        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                        } else {
                            j += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[j] as char);
                        j += 1;
                    }
                }
                tokens.push(Token::Str(s));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v = text.parse::<f64>().map_err(|e| LexError {
                        message: format!("bad float literal {text:?}: {e}"),
                        position: start,
                    })?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|e| LexError {
                        message: format!("bad integer literal {text:?}: {e}"),
                        position: start,
                    })?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    position: i,
                });
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_identifiers_lowercase() {
        let toks = tokenize("SELECT Host FROM NetStats").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("select".into()),
                Token::Ident("host".into()),
                Token::Ident("from".into()),
                Token::Ident("netstats".into()),
                Token::Eof
            ]
        );
        assert!(toks[0].is_kw("select"));
        assert!(toks[0].is_kw("SELECT"));
        assert!(!toks[0].is_kw("from"));
    }

    #[test]
    fn reserved_words_are_recognized() {
        let toks = tokenize("EXPLAIN total FROM t").unwrap();
        assert!(toks[0].is_reserved(), "EXPLAIN is reserved");
        assert!(!toks[1].is_reserved(), "'total' is an ordinary identifier");
        assert!(toks[2].is_reserved(), "FROM is reserved");
        assert!(!Token::Int(7).is_reserved());
        assert!(!Token::Sym(",").is_reserved());
    }

    #[test]
    fn numbers() {
        let toks = tokenize("42 3.5 0.25 7").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(42), Token::Float(3.5), Token::Float(0.25), Token::Int(7), Token::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let toks = tokenize("'hello' 'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("hello".into()), Token::Str("it's".into()), Token::Eof]);
    }

    #[test]
    fn operators() {
        let toks = tokenize("a >= 1 AND b <> 2 OR c != 3 AND d <= e < f > g = h").unwrap();
        let syms: Vec<&str> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Sym(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec![">=", "<>", "<>", "<=", "<", ">", "="]);
    }

    #[test]
    fn punctuation_and_arith() {
        let toks = tokenize("f(x), (a+b)*c - d/e % 2; t.col").unwrap();
        assert!(toks.iter().any(|t| t.is_sym("(")));
        assert!(toks.iter().any(|t| t.is_sym(",")));
        assert!(toks.iter().any(|t| t.is_sym("*")));
        assert!(toks.iter().any(|t| t.is_sym("-")));
        assert!(toks.iter().any(|t| t.is_sym("/")));
        assert!(toks.iter().any(|t| t.is_sym("%")));
        assert!(toks.iter().any(|t| t.is_sym(";")));
        assert!(toks.iter().any(|t| t.is_sym(".")));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(toks.len(), 5); // select, 1, ',', 2, eof
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("@").is_err());
        assert!(tokenize("!").is_err());
        let err = tokenize("  #").unwrap_err();
        assert_eq!(err.position, 2);
        assert!(format!("{err}").contains("lex error"));
    }

    #[test]
    fn display_tokens() {
        assert_eq!(format!("{}", Token::Ident("x".into())), "x");
        assert_eq!(format!("{}", Token::Str("s".into())), "'s'");
        assert_eq!(format!("{}", Token::Sym(",")), ",");
        assert_eq!(format!("{}", Token::Eof), "<eof>");
        assert_eq!(format!("{}", Token::Int(3)), "3");
        assert_eq!(format!("{}", Token::Float(1.5)), "1.5");
    }
}
