//! Abstract syntax tree for PIER's SQL dialect.
//!
//! The dialect covers what the paper demonstrates: single-table selections and
//! projections, multi-way equi-joins (`FROM a, b, c WHERE a.x = b.x AND …` or
//! chained `JOIN … ON …` clauses), grouped aggregation with `HAVING`,
//! `ORDER BY … LIMIT` (top-k), and **continuous queries** — the same `SELECT`
//! re-evaluated every *period* seconds over the most recent *window* of data,
//! which is how the Figure 1 monitoring query runs.  `CREATE TABLE` and
//! `INSERT` are provided so examples can be driven entirely from SQL.

use crate::aggregate::AggFunc;
use crate::expr::{BinaryOp, UnaryOp};
use crate::value::{DataType, Value};

/// A complete SQL statement.
///
/// `SelectStmt` dominates the size; statements are parsed once and consumed,
/// so the imbalance is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// A (possibly continuous) query.
    Select(SelectStmt),
    /// `EXPLAIN <select>`: run the planning pipeline and report each stage's
    /// output instead of executing the query.  With `analyze` set
    /// (`EXPLAIN ANALYZE <select>`), the query is *also* executed and every
    /// node's per-operator execution trace is aggregated back to the origin
    /// (see `PierTestbed::explain_analyze` in `pier-core`).
    Explain {
        /// `EXPLAIN ANALYZE`: execute and collect network-wide traces.
        analyze: bool,
        /// The statement being explained.
        select: Box<SelectStmt>,
    },
    /// Table definition.
    CreateTable(CreateTableStmt),
    /// Single-row insert.
    Insert(InsertStmt),
}

/// A reference to a table, with an optional alias.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    /// Table (namespace) name.
    pub name: String,
    /// Optional alias used to qualify columns.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name columns of this table are qualified with.
    pub fn qualifier(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One item in the `SELECT` list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The expression (may contain aggregate calls).
        expr: AstExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// An unresolved expression (column names not yet bound to positions).
#[derive(Clone, Debug, PartialEq)]
pub enum AstExpr {
    /// Column reference, possibly qualified (`table.column`).
    Column(String),
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<AstExpr>,
    },
    /// Scalar function call by name (resolved by the planner).
    Func {
        /// Function name (lower case).
        name: String,
        /// Arguments.
        args: Vec<AstExpr>,
    },
    /// Aggregate call.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Argument (`None` means `*`, valid only for `COUNT`).
        arg: Option<Box<AstExpr>>,
    },
    /// `expr LIKE 'pattern'`.
    Like {
        /// The matched expression.
        expr: Box<AstExpr>,
        /// The pattern.
        pattern: String,
    },
}

impl AstExpr {
    /// Does this expression contain an aggregate call anywhere?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            AstExpr::Agg { .. } => true,
            AstExpr::Column(_) | AstExpr::Literal(_) => false,
            AstExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            AstExpr::Unary { expr, .. } | AstExpr::Like { expr, .. } => expr.contains_aggregate(),
            AstExpr::Func { args, .. } => args.iter().any(|a| a.contains_aggregate()),
        }
    }

    /// Column names referenced by this expression (qualified names kept as-is).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            AstExpr::Column(name) => out.push(name.clone()),
            AstExpr::Literal(_) => {}
            AstExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            AstExpr::Unary { expr, .. } | AstExpr::Like { expr, .. } => expr.collect_columns(out),
            AstExpr::Func { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            AstExpr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_columns(out);
                }
            }
        }
    }
}

/// `JOIN table ON left = right` — one link of a (possibly chained) join.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinClause {
    /// The newly joined table.
    pub table: TableRef,
    /// One column of the equality predicate (usually of an earlier table).
    pub left_column: String,
    /// The other column of the equality predicate (usually of `table`).
    pub right_column: String,
}

/// One `ORDER BY` key.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    /// The sort expression (often an aggregate or an output column name).
    pub expr: AstExpr,
    /// Descending order?
    pub desc: bool,
}

/// Epoch-count window clause of a continuous aggregate, written after
/// `GROUP BY`: `WINDOW TUMBLING n EPOCHS` or
/// `WINDOW SLIDING n [EPOCHS] SLIDE m [EPOCHS]`.
///
/// Distinct from the time-based `CONTINUOUS … WINDOW m SECONDS` clause: that
/// one sets how far back each per-epoch re-evaluation scans, while this one
/// makes the aggregation plane emit one result set per *window of epochs*,
/// scanning each epoch's data exactly once.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowClause {
    /// Window width in epochs.
    pub size_epochs: u32,
    /// `SLIDE m` of a sliding window; `None` for `TUMBLING`.
    pub slide_epochs: Option<u32>,
}

/// Continuous-query clause: `CONTINUOUS EVERY n SECONDS [WINDOW m SECONDS]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContinuousClause {
    /// Re-evaluation period, seconds.
    pub every_secs: f64,
    /// Window of data considered in each evaluation, seconds (defaults to the
    /// period if absent).
    pub window_secs: Option<f64>,
}

/// A parsed `SELECT` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    /// Items in the select list.
    pub projections: Vec<SelectItem>,
    /// Comma-listed `FROM` tables (at least one; the first is the primary
    /// relation).  Equi-join predicates between comma-listed tables are
    /// written in `WHERE` and extracted by the binder.
    pub from: Vec<TableRef>,
    /// Chained `JOIN … ON …` clauses, each adding one table plus one
    /// equality predicate.
    pub joins: Vec<JoinClause>,
    /// `WHERE` predicate.
    pub where_clause: Option<AstExpr>,
    /// `GROUP BY` column names.
    pub group_by: Vec<String>,
    /// Epoch-count window clause (`WINDOW TUMBLING … / SLIDING …`).
    pub window: Option<WindowClause>,
    /// `HAVING` predicate (over aggregate outputs).
    pub having: Option<AstExpr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// Continuous-query clause.
    pub continuous: Option<ContinuousClause>,
}

impl SelectStmt {
    /// Does the statement compute any aggregate (grouped or global)?
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self.projections.iter().any(|p| match p {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                SelectItem::Wildcard => false,
            })
    }

    /// The primary (first `FROM`) relation.
    pub fn primary(&self) -> &TableRef {
        &self.from[0]
    }

    /// Total number of relations referenced (`FROM` list plus `JOIN`s).
    pub fn relation_count(&self) -> usize {
        self.from.len() + self.joins.len()
    }
}

/// A parsed `CREATE TABLE`.
#[derive(Clone, Debug, PartialEq)]
pub struct CreateTableStmt {
    /// Table name.
    pub name: String,
    /// Column names and types.
    pub columns: Vec<(String, DataType)>,
    /// `PARTITION BY column` (defaults to the first column).
    pub partition_by: Option<String>,
    /// `TTL n SECONDS` for published tuples.
    pub ttl_secs: Option<u64>,
}

/// A parsed `INSERT INTO t VALUES (...)`.
#[derive(Clone, Debug, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Values, one per column.
    pub values: Vec<Value>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_walks_tree() {
        let agg =
            AstExpr::Agg { func: AggFunc::Sum, arg: Some(Box::new(AstExpr::Column("x".into()))) };
        let wrapped = AstExpr::Binary {
            op: BinaryOp::Add,
            left: Box::new(AstExpr::Literal(Value::Int(1))),
            right: Box::new(agg.clone()),
        };
        assert!(agg.contains_aggregate());
        assert!(wrapped.contains_aggregate());
        assert!(!AstExpr::Column("x".into()).contains_aggregate());
        let f = AstExpr::Func { name: "abs".into(), args: vec![wrapped] };
        assert!(f.contains_aggregate());
    }

    #[test]
    fn referenced_columns() {
        let e = AstExpr::Binary {
            op: BinaryOp::And,
            left: Box::new(AstExpr::Column("a.x".into())),
            right: Box::new(AstExpr::Like {
                expr: Box::new(AstExpr::Column("y".into())),
                pattern: "%".into(),
            }),
        };
        assert_eq!(e.referenced_columns(), vec!["a.x".to_string(), "y".to_string()]);
    }

    #[test]
    fn table_ref_qualifier() {
        let t = TableRef { name: "netstats".into(), alias: None };
        assert_eq!(t.qualifier(), "netstats");
        let t = TableRef { name: "netstats".into(), alias: Some("n".into()) };
        assert_eq!(t.qualifier(), "n");
    }

    #[test]
    fn select_is_aggregate() {
        let base = SelectStmt {
            projections: vec![SelectItem::Wildcard],
            from: vec![TableRef { name: "t".into(), alias: None }],
            joins: vec![],
            where_clause: None,
            group_by: vec![],
            window: None,
            having: None,
            order_by: vec![],
            limit: None,
            continuous: None,
        };
        assert!(!base.is_aggregate());
        let mut grouped = base.clone();
        grouped.group_by = vec!["x".into()];
        assert!(grouped.is_aggregate());
        let mut global = base;
        global.projections = vec![SelectItem::Expr {
            expr: AstExpr::Agg { func: AggFunc::Count, arg: None },
            alias: None,
        }];
        assert!(global.is_aggregate());
    }
}
