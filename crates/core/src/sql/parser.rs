//! Recursive-descent parser for PIER's SQL dialect.

use crate::aggregate::AggFunc;
use crate::expr::{BinaryOp, UnaryOp};
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, LexError, Token};
use crate::value::{DataType, Value};
use std::fmt;

/// Parse errors (covers lexing too).
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError { message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.to_string())
    }
}

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    // Allow a trailing semicolon.
    if p.peek().is_sym(";") {
        p.advance();
    }
    if !matches!(p.peek(), Token::Eof) {
        return Err(ParseError::new(format!("unexpected trailing token {}", p.peek())));
    }
    Ok(stmt)
}

/// Parse a `SELECT` statement (convenience wrapper used by the engine).
pub fn parse_select(sql: &str) -> Result<SelectStmt, ParseError> {
    match parse(sql)? {
        Statement::Select(s) => Ok(s),
        other => Err(ParseError::new(format!("expected SELECT statement, got {other:?}"))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::new(format!("expected {kw}, found {}", self.peek())))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek().is_sym(sym) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(ParseError::new(format!("expected '{sym}', found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            other => Err(ParseError::new(format!("expected identifier, found {other}"))),
        }
    }

    fn integer(&mut self) -> Result<i64, ParseError> {
        match self.advance() {
            Token::Int(i) => Ok(i),
            other => Err(ParseError::new(format!("expected integer, found {other}"))),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.advance() {
            Token::Int(i) => Ok(i as f64),
            Token::Float(f) => Ok(f),
            other => Err(ParseError::new(format!("expected number, found {other}"))),
        }
    }

    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek().is_kw("explain") {
            self.advance();
            let analyze = self.eat_kw("analyze");
            if !self.peek().is_kw("select") {
                return Err(ParseError::new(format!(
                    "EXPLAIN{} supports only SELECT statements, found {}",
                    if analyze { " ANALYZE" } else { "" },
                    self.peek()
                )));
            }
            Ok(Statement::Explain { analyze, select: Box::new(self.select()?) })
        } else if self.peek().is_kw("select") {
            Ok(Statement::Select(self.select()?))
        } else if self.peek().is_kw("create") {
            Ok(Statement::CreateTable(self.create_table()?))
        } else if self.peek().is_kw("insert") {
            Ok(Statement::Insert(self.insert()?))
        } else {
            Err(ParseError::new(format!(
                "expected SELECT, EXPLAIN, CREATE or INSERT, found {}",
                self.peek()
            )))
        }
    }

    fn select(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_kw("select")?;
        let projections = self.select_list()?;
        self.expect_kw("from")?;
        // Comma-listed FROM tables (`FROM a, b, c` — join predicates between
        // them live in WHERE and are extracted by the binder).
        let mut from = vec![self.table_ref()?];
        while self.eat_sym(",") {
            from.push(self.table_ref()?);
        }

        // Chained `JOIN t ON l = r` clauses, each adding one table.
        let mut joins = Vec::new();
        while self.eat_kw("join") {
            let table = self.table_ref()?;
            self.expect_kw("on")?;
            let left_column = self.qualified_name()?;
            self.expect_sym("=")?;
            let right_column = self.qualified_name()?;
            joins.push(JoinClause { table, left_column, right_column });
        }

        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };

        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.qualified_name()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }

        // Epoch-count window clause of a continuous aggregate.  `TUMBLING`,
        // `SLIDING`, `SLIDE` and `EPOCHS` are contextual (only the reserved
        // `WINDOW` introduces the clause), so they stay usable as column
        // names elsewhere.
        let window = if self.eat_kw("window") {
            if self.eat_kw("tumbling") {
                let size = self.window_epochs()?;
                Some(WindowClause { size_epochs: size, slide_epochs: None })
            } else if self.eat_kw("sliding") {
                let size = self.window_epochs()?;
                self.expect_kw("slide")?;
                let slide = self.window_epochs()?;
                Some(WindowClause { size_epochs: size, slide_epochs: Some(slide) })
            } else {
                return Err(ParseError::new(format!(
                    "expected TUMBLING or SLIDING after WINDOW, found {}",
                    self.peek()
                )));
            }
        } else {
            None
        };

        let having = if self.eat_kw("having") { Some(self.expr()?) } else { None };

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("limit") { Some(self.integer()? as usize) } else { None };

        let continuous = if self.eat_kw("continuous") {
            let mut every_secs = 10.0;
            let mut window_secs = None;
            if self.eat_kw("every") {
                every_secs = self.number()?;
                self.eat_kw("seconds");
                self.eat_kw("second");
            }
            if self.eat_kw("window") {
                window_secs = Some(self.number()?);
                self.eat_kw("seconds");
                self.eat_kw("second");
            }
            Some(ContinuousClause { every_secs, window_secs })
        } else {
            None
        };

        Ok(SelectStmt {
            projections,
            from,
            joins,
            where_clause,
            group_by,
            window,
            having,
            order_by,
            limit,
            continuous,
        })
    }

    /// A positive epoch count followed by an optional `EPOCHS` / `EPOCH`
    /// noise word (`WINDOW TUMBLING 4 EPOCHS`, `SLIDE 2`).
    fn window_epochs(&mut self) -> Result<u32, ParseError> {
        let n = self.integer()?;
        if n < 1 || n > u32::MAX as i64 {
            return Err(ParseError::new(format!("window epoch count must be >= 1, got {n}")));
        }
        self.eat_kw("epochs");
        self.eat_kw("epoch");
        Ok(n as u32)
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            if self.peek().is_sym("*") {
                self.advance();
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let implicit = matches!(self.peek(), Token::Ident(_)) && !self.peek().is_reserved();
                let alias = if self.eat_kw("as") || implicit { Some(self.ident()?) } else { None };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(items)
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.ident()?;
        let implicit = matches!(self.peek(), Token::Ident(_)) && !self.peek().is_reserved();
        let alias = if self.eat_kw("as") || implicit { Some(self.ident()?) } else { None };
        Ok(TableRef { name, alias })
    }

    /// `ident` or `ident.ident`.
    fn qualified_name(&mut self) -> Result<String, ParseError> {
        let first = self.ident()?;
        if self.eat_sym(".") {
            let second = self.ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing).
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<AstExpr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left =
                AstExpr::Binary { op: BinaryOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left =
                AstExpr::Binary { op: BinaryOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr, ParseError> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            Ok(AstExpr::Unary { op: UnaryOp::Not, expr: Box::new(inner) })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<AstExpr, ParseError> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.peek().is_kw("is") {
            self.advance();
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            let op = if negated { UnaryOp::IsNotNull } else { UnaryOp::IsNull };
            return Ok(AstExpr::Unary { op, expr: Box::new(left) });
        }
        // LIKE 'pattern'
        if self.peek().is_kw("like") {
            self.advance();
            match self.advance() {
                Token::Str(pattern) => {
                    return Ok(AstExpr::Like { expr: Box::new(left), pattern });
                }
                other => {
                    return Err(ParseError::new(format!(
                        "expected string pattern after LIKE, found {other}"
                    )))
                }
            }
        }
        let op = match self.peek() {
            Token::Sym("=") => Some(BinaryOp::Eq),
            Token::Sym("<>") => Some(BinaryOp::NotEq),
            Token::Sym("<") => Some(BinaryOp::Lt),
            Token::Sym("<=") => Some(BinaryOp::LtEq),
            Token::Sym(">") => Some(BinaryOp::Gt),
            Token::Sym(">=") => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            Ok(AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) })
        } else {
            Ok(left)
        }
    }

    fn additive(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Sym("+") => BinaryOp::Add,
                Token::Sym("-") => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Sym("*") => BinaryOp::Mul,
                Token::Sym("/") => BinaryOp::Div,
                Token::Sym("%") => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<AstExpr, ParseError> {
        if self.eat_sym("-") {
            let inner = self.unary()?;
            // Fold negation of literals so `-5` is a literal, not an expression.
            if let AstExpr::Literal(Value::Int(i)) = inner {
                return Ok(AstExpr::Literal(Value::Int(-i)));
            }
            if let AstExpr::Literal(Value::Float(f)) = inner {
                return Ok(AstExpr::Literal(Value::Float(-f)));
            }
            return Ok(AstExpr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr, ParseError> {
        match self.advance() {
            Token::Int(i) => Ok(AstExpr::Literal(Value::Int(i))),
            Token::Float(f) => Ok(AstExpr::Literal(Value::Float(f))),
            Token::Str(s) => Ok(AstExpr::Literal(Value::Str(s))),
            Token::Sym("(") => {
                let inner = self.expr()?;
                self.expect_sym(")")?;
                Ok(inner)
            }
            Token::Sym("*") => {
                // Only valid inside COUNT(*); handled by the caller below.
                Err(ParseError::new("unexpected '*' outside COUNT(*)"))
            }
            Token::Ident(name) => {
                match name.as_str() {
                    "true" => return Ok(AstExpr::Literal(Value::Bool(true))),
                    "false" => return Ok(AstExpr::Literal(Value::Bool(false))),
                    "null" => return Ok(AstExpr::Literal(Value::Null)),
                    _ => {}
                }
                // Function or aggregate call?
                if self.peek().is_sym("(") {
                    self.advance();
                    if let Some(func) = AggFunc::from_name(&name) {
                        // COUNT(*) or AGG(expr)
                        if self.peek().is_sym("*") {
                            self.advance();
                            self.expect_sym(")")?;
                            if func != AggFunc::Count {
                                return Err(ParseError::new(format!("{func}(*) is not valid")));
                            }
                            return Ok(AstExpr::Agg { func, arg: None });
                        }
                        let arg = self.expr()?;
                        self.expect_sym(")")?;
                        return Ok(AstExpr::Agg { func, arg: Some(Box::new(arg)) });
                    }
                    let mut args = Vec::new();
                    if !self.peek().is_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym(")")?;
                    return Ok(AstExpr::Func { name, args });
                }
                // Qualified column?
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    return Ok(AstExpr::Column(format!("{name}.{col}")));
                }
                Ok(AstExpr::Column(name))
            }
            other => Err(ParseError::new(format!("unexpected token {other} in expression"))),
        }
    }

    // ------------------------------------------------------------------

    fn create_table(&mut self) -> Result<CreateTableStmt, ParseError> {
        self.expect_kw("create")?;
        self.expect_kw("table")?;
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.data_type()?;
            columns.push((col, ty));
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        let mut partition_by = None;
        let mut ttl_secs = None;
        loop {
            if self.eat_kw("partition") {
                self.expect_kw("by")?;
                partition_by = Some(self.ident()?);
            } else if self.eat_kw("ttl") {
                ttl_secs = Some(self.integer()? as u64);
                self.eat_kw("seconds");
                self.eat_kw("second");
            } else {
                break;
            }
        }
        Ok(CreateTableStmt { name, columns, partition_by, ttl_secs })
    }

    fn data_type(&mut self) -> Result<DataType, ParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "int" | "integer" | "bigint" => Ok(DataType::Int),
            "float" | "double" | "real" => Ok(DataType::Float),
            "string" | "text" | "varchar" => {
                // Optional length: VARCHAR(32).
                if self.eat_sym("(") {
                    self.integer()?;
                    self.expect_sym(")")?;
                }
                Ok(DataType::Str)
            }
            "bool" | "boolean" => Ok(DataType::Bool),
            other => Err(ParseError::new(format!("unknown type {other}"))),
        }
    }

    fn insert(&mut self) -> Result<InsertStmt, ParseError> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        self.expect_kw("values")?;
        self.expect_sym("(")?;
        let mut values = Vec::new();
        loop {
            values.push(self.literal_value()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(InsertStmt { table, values })
    }

    fn literal_value(&mut self) -> Result<Value, ParseError> {
        let negative = self.eat_sym("-");
        match self.advance() {
            Token::Int(i) => Ok(Value::Int(if negative { -i } else { i })),
            Token::Float(f) => Ok(Value::Float(if negative { -f } else { f })),
            Token::Str(s) if !negative => Ok(Value::Str(s)),
            Token::Ident(s) if !negative && s == "true" => Ok(Value::Bool(true)),
            Token::Ident(s) if !negative && s == "false" => Ok(Value::Bool(false)),
            Token::Ident(s) if !negative && s == "null" => Ok(Value::Null),
            other => Err(ParseError::new(format!("expected literal, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        parse_select(sql).unwrap()
    }

    #[test]
    fn simple_select_star() {
        let s = sel("SELECT * FROM netstats");
        assert_eq!(s.projections, vec![SelectItem::Wildcard]);
        assert_eq!(s.primary().name, "netstats");
        assert!(s.where_clause.is_none());
        assert!(!s.is_aggregate());
    }

    #[test]
    fn projection_aliases() {
        let s = sel("SELECT host AS h, out_rate rate FROM netstats");
        assert_eq!(s.projections.len(), 2);
        match &s.projections[0] {
            SelectItem::Expr { expr: AstExpr::Column(c), alias: Some(a) } => {
                assert_eq!(c, "host");
                assert_eq!(a, "h");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &s.projections[1] {
            SelectItem::Expr { alias: Some(a), .. } => assert_eq!(a, "rate"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn where_clause_with_precedence() {
        let s = sel("SELECT * FROM t WHERE a = 1 AND b > 2 OR c < 3");
        // Must parse as (a=1 AND b>2) OR (c<3).
        match s.where_clause.unwrap() {
            AstExpr::Binary { op: BinaryOp::Or, left, .. } => match *left {
                AstExpr::Binary { op: BinaryOp::And, .. } => {}
                other => panic!("expected AND under OR, got {other:?}"),
            },
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sel("SELECT a + b * 2 FROM t");
        match &s.projections[0] {
            SelectItem::Expr { expr: AstExpr::Binary { op: BinaryOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, AstExpr::Binary { op: BinaryOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn figure1_continuous_sum() {
        // The paper's Figure 1 query: continuous network-wide SUM of rates.
        let s =
            sel("SELECT SUM(out_rate) FROM netstats CONTINUOUS EVERY 5 SECONDS WINDOW 10 SECONDS");
        assert!(s.is_aggregate());
        let cont = s.continuous.unwrap();
        assert_eq!(cont.every_secs, 5.0);
        assert_eq!(cont.window_secs, Some(10.0));
        match &s.projections[0] {
            SelectItem::Expr {
                expr: AstExpr::Agg { func: AggFunc::Sum, arg: Some(_) }, ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn table1_top_ten_rules() {
        // The paper's Table 1 query: network-wide top ten intrusion rules.
        let s = sel("SELECT rule_id, description, SUM(hits) AS total \
             FROM intrusions GROUP BY rule_id, description \
             ORDER BY SUM(hits) DESC LIMIT 10");
        assert!(s.is_aggregate());
        assert_eq!(s.group_by, vec!["rule_id".to_string(), "description".to_string()]);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert!(s.order_by[0].expr.contains_aggregate());
    }

    #[test]
    fn join_on_clause() {
        let s = sel("SELECT f.name, k.keyword FROM files f JOIN keywords k ON f.file_id = k.file_id WHERE k.keyword = 'mp3'");
        let j = &s.joins[0];
        assert_eq!(j.table.name, "keywords");
        assert_eq!(j.table.alias.as_deref(), Some("k"));
        assert_eq!(j.left_column, "f.file_id");
        assert_eq!(j.right_column, "k.file_id");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn chained_joins_and_from_lists() {
        // Three-way chained JOIN.
        let s = sel("SELECT n.host FROM netstats n JOIN links l ON n.host = l.src \
             JOIN intrusions i ON l.dst = i.host");
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.relation_count(), 3);
        assert_eq!(s.joins[0].table.name, "links");
        assert_eq!(s.joins[1].table.name, "intrusions");
        assert_eq!(s.joins[1].left_column, "l.dst");

        // Comma-listed FROM tables; predicates stay in WHERE for the binder.
        let s = sel("SELECT * FROM a, b, c WHERE a.x = b.x AND b.y = c.y");
        assert_eq!(s.from.len(), 3);
        assert!(s.joins.is_empty());
        assert_eq!(s.relation_count(), 3);
        assert_eq!(s.from[1].name, "b");
        assert!(s.where_clause.is_some());

        // Mixed: FROM list plus a chained JOIN.
        let s = sel("SELECT * FROM a x, b y JOIN c z ON y.k = z.k WHERE x.k = y.k");
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table.alias.as_deref(), Some("z"));
    }

    #[test]
    fn group_by_having() {
        let s = sel("SELECT host, COUNT(*) FROM events GROUP BY host HAVING COUNT(*) > 5");
        assert_eq!(s.group_by, vec!["host".to_string()]);
        assert!(s.having.unwrap().contains_aggregate());
    }

    #[test]
    fn count_star_and_agg_variants() {
        let s = sel("SELECT COUNT(*), AVG(rate), MIN(rate), MAX(rate) FROM t");
        assert_eq!(s.projections.len(), 4);
        assert!(s.is_aggregate());
        assert!(parse_select("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn like_is_null_not() {
        let s =
            sel("SELECT * FROM files WHERE name LIKE '%.mp3' AND size IS NOT NULL AND NOT hidden");
        let w = s.where_clause.unwrap();
        let cols = w.referenced_columns();
        assert!(cols.contains(&"name".to_string()));
        assert!(cols.contains(&"size".to_string()));
        assert!(cols.contains(&"hidden".to_string()));
    }

    #[test]
    fn negative_numbers_and_parens() {
        let s = sel("SELECT * FROM t WHERE (a + -3) * 2 >= -1.5");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn scalar_function_calls() {
        let s = sel("SELECT lower(name), length(name) FROM files WHERE upper(kind) = 'AUDIO'");
        match &s.projections[0] {
            SelectItem::Expr { expr: AstExpr::Func { name, args }, .. } => {
                assert_eq!(name, "lower");
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_table_statement() {
        let stmt = parse(
            "CREATE TABLE netstats (host STRING, out_rate FLOAT, in_rate FLOAT) \
             PARTITION BY host TTL 60 SECONDS",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(c) => {
                assert_eq!(c.name, "netstats");
                assert_eq!(c.columns.len(), 3);
                assert_eq!(c.columns[1], ("out_rate".to_string(), DataType::Float));
                assert_eq!(c.partition_by.as_deref(), Some("host"));
                assert_eq!(c.ttl_secs, Some(60));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_table_varchar_length() {
        let stmt = parse("CREATE TABLE t (name VARCHAR(32), n INTEGER, ok BOOLEAN)").unwrap();
        match stmt {
            Statement::CreateTable(c) => {
                assert_eq!(c.columns[0].1, DataType::Str);
                assert_eq!(c.columns[1].1, DataType::Int);
                assert_eq!(c.columns[2].1, DataType::Bool);
                assert!(c.partition_by.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_statement() {
        let stmt = parse("INSERT INTO netstats VALUES ('host-1', 12.5, -3, true, null)").unwrap();
        match stmt {
            Statement::Insert(i) => {
                assert_eq!(i.table, "netstats");
                assert_eq!(
                    i.values,
                    vec![
                        Value::str("host-1"),
                        Value::Float(12.5),
                        Value::Int(-3),
                        Value::Bool(true),
                        Value::Null
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_semicolon_ok_and_garbage_rejected() {
        assert!(parse("SELECT * FROM t;").is_ok());
        assert!(parse("SELECT * FROM t garbage garbage").is_err());
        assert!(parse("DELETE FROM t").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = parse("SELECT * FORM t").unwrap_err();
        assert!(err.message.contains("expected from"), "{}", err.message);
        let err = parse("SELECT * FROM t WHERE a LIKE 5").unwrap_err();
        assert!(err.message.contains("LIKE"), "{}", err.message);
        assert!(format!("{err}").contains("SQL parse error"));
    }

    #[test]
    fn explain_select_round_trips() {
        let stmt = parse("EXPLAIN SELECT host FROM netstats WHERE out_rate > 10 LIMIT 3").unwrap();
        match stmt {
            Statement::Explain { analyze, select } => {
                assert!(!analyze);
                assert_eq!(select.primary().name, "netstats");
                assert!(select.where_clause.is_some());
                assert_eq!(select.limit, Some(3));
                // The inner statement is exactly what plain parsing produces.
                let direct = sel("SELECT host FROM netstats WHERE out_rate > 10 LIMIT 3");
                assert_eq!(*select, direct);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Case-insensitive, tolerant of a trailing semicolon.
        assert!(matches!(
            parse("explain select * from t;").unwrap(),
            Statement::Explain { analyze: false, .. }
        ));
    }

    #[test]
    fn explain_analyze_sets_the_flag() {
        let stmt = parse("EXPLAIN ANALYZE SELECT host FROM netstats").unwrap();
        match stmt {
            Statement::Explain { analyze, select } => {
                assert!(analyze);
                assert_eq!(select.primary().name, "netstats");
            }
            other => panic!("unexpected {other:?}"),
        }
        // `analyze` is an ordinary identifier outside the EXPLAIN prefix.
        assert!(parse("SELECT analyze FROM t").is_ok());
    }

    #[test]
    fn explain_requires_select() {
        let err = parse("EXPLAIN CREATE TABLE t (a INT)").unwrap_err();
        assert!(err.message.contains("EXPLAIN supports only SELECT"), "{}", err.message);
        let err = parse("EXPLAIN ANALYZE INSERT INTO t VALUES (1)").unwrap_err();
        assert!(err.message.contains("EXPLAIN ANALYZE supports only SELECT"), "{}", err.message);
        assert!(parse("EXPLAIN").is_err());
    }

    #[test]
    fn continuous_defaults() {
        let s = sel("SELECT COUNT(*) FROM t CONTINUOUS");
        let c = s.continuous.unwrap();
        assert_eq!(c.every_secs, 10.0);
        assert_eq!(c.window_secs, None);
    }
}
