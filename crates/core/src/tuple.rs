//! Tuples and schemas.
//!
//! A [`Tuple`] is an ordered list of [`Value`]s; a [`Schema`] names and types
//! the positions.  Schemas travel with query plans (not with every tuple), so
//! tuples stay compact on the wire.

use crate::value::{DataType, Value};
use pier_simnet::WireSize;
use std::fmt;

/// A relational tuple: an ordered list of values.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// An empty tuple.
    pub fn empty() -> Self {
        Tuple { values: Vec::new() }
    }

    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Is the tuple empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Field at position `idx` (NULL if out of range, matching SQL's
    /// forgiving treatment of missing attributes from heterogeneous sources).
    pub fn get(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.values.get(idx).unwrap_or(&NULL)
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Append a value.
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Project the given positions into a new tuple.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.get(i).clone()).collect())
    }

    /// Concatenate two tuples (used by joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl WireSize for Tuple {
    fn wire_size(&self) -> usize {
        2 + self.values.iter().map(|v| v.wire_size()).sum::<usize>()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// A named, typed field of a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Column name (lower-cased by the catalog and parser).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into().to_ascii_lowercase(), dtype }
    }
}

/// The schema of a relation or of an operator's output.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// An empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience: build from `(name, type)` pairs.
    pub fn of(cols: &[(&str, DataType)]) -> Self {
        Schema::new(cols.iter().map(|(n, t)| Field::new(*n, *t)).collect())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// The fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at a position.
    pub fn field(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// Position of a column by (case-insensitive) name.
    ///
    /// Resolution rules, in order:
    /// 1. exact match on the full (possibly qualified) name;
    /// 2. an unqualified query name matches a qualified field whose suffix
    ///    after the dot equals it (`rate` finds `n.rate`);
    /// 3. a qualified query name matches an unqualified field with the same
    ///    suffix (`n.rate` finds `rate`).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lname = name.to_ascii_lowercase();
        let unqualified = lname.rsplit('.').next().unwrap_or(&lname).to_string();
        if let Some(i) = self.fields.iter().position(|f| f.name == lname) {
            return Some(i);
        }
        if let Some(i) = self
            .fields
            .iter()
            .position(|f| f.name == unqualified || f.name.ends_with(&format!(".{unqualified}")))
        {
            return Some(i);
        }
        None
    }

    /// Column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// A schema whose column names are prefixed with `alias.` — used when a
    /// relation appears under an alias in a join.
    pub fn qualified(&self, alias: &str) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| Field::new(format!("{alias}.{}", f.name), f.dtype))
                .collect(),
        )
    }

    /// Concatenate two schemas (join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.clone());
        Schema::new(fields)
    }

    /// Does a tuple structurally conform to this schema?  (Arity matches and
    /// every non-null value has the declared type.)
    pub fn admits(&self, tuple: &Tuple) -> bool {
        tuple.arity() == self.arity()
            && tuple.values().iter().zip(&self.fields).all(|(v, f)| {
                v.is_null()
                    || v.data_type() == f.dtype
                    || matches!((v.data_type(), f.dtype), (DataType::Int, DataType::Float))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn tuple_basics() {
        let mut tup = t(&[1, 2, 3]);
        assert_eq!(tup.arity(), 3);
        assert!(!tup.is_empty());
        assert_eq!(tup.get(1), &Value::Int(2));
        assert_eq!(tup.get(99), &Value::Null);
        tup.push(Value::str("x"));
        assert_eq!(tup.arity(), 4);
        assert_eq!(format!("{tup}"), "(1, 2, 3, x)");
        assert!(Tuple::empty().is_empty());
    }

    #[test]
    fn project_and_concat() {
        let a = t(&[10, 20, 30]);
        let b = Tuple::new(vec![Value::str("x")]);
        assert_eq!(a.project(&[2, 0]), t(&[30, 10]));
        let joined = a.concat(&b);
        assert_eq!(joined.arity(), 4);
        assert_eq!(joined.get(3), &Value::str("x"));
        // Projection of an out-of-range index yields NULL.
        assert_eq!(a.project(&[5]).get(0), &Value::Null);
    }

    #[test]
    fn tuple_wire_size() {
        assert_eq!(Tuple::empty().wire_size(), 2);
        assert!(t(&[1, 2]).wire_size() > Tuple::empty().wire_size());
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::of(&[("host", DataType::Str), ("rate", DataType::Float)]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("rate"), Some(1));
        assert_eq!(s.index_of("RATE"), Some(1));
        assert_eq!(s.index_of("netstats.rate"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.names(), vec!["host", "rate"]);
        assert_eq!(s.field(0).unwrap().name, "host");
        assert!(s.field(5).is_none());
    }

    #[test]
    fn schema_qualified_and_concat() {
        let r = Schema::of(&[("a", DataType::Int)]);
        let s = Schema::of(&[("b", DataType::Int)]);
        let q = r.qualified("r");
        assert_eq!(q.index_of("r.a"), Some(0));
        assert_eq!(q.index_of("a"), Some(0));
        let joined = q.concat(&s.qualified("s"));
        assert_eq!(joined.arity(), 2);
        assert_eq!(joined.index_of("s.b"), Some(1));
    }

    #[test]
    fn qualified_lookup_prefers_exact_match() {
        let joined = Schema::of(&[("r.k", DataType::Int), ("s.k", DataType::Int)]);
        assert_eq!(joined.index_of("s.k"), Some(1));
        assert_eq!(joined.index_of("r.k"), Some(0));
        // Unqualified name falls back to the first match.
        assert_eq!(joined.index_of("k"), Some(0));
    }

    #[test]
    fn schema_admits() {
        let s = Schema::of(&[("host", DataType::Str), ("rate", DataType::Float)]);
        assert!(s.admits(&Tuple::new(vec![Value::str("h"), Value::Float(1.0)])));
        // Int widens to Float.
        assert!(s.admits(&Tuple::new(vec![Value::str("h"), Value::Int(3)])));
        // NULL is allowed anywhere.
        assert!(s.admits(&Tuple::new(vec![Value::Null, Value::Null])));
        // Wrong arity or wrong type is rejected.
        assert!(!s.admits(&Tuple::new(vec![Value::str("h")])));
        assert!(!s.admits(&Tuple::new(vec![Value::Int(1), Value::str("x")])));
    }

    #[test]
    fn field_names_are_lowercased() {
        assert_eq!(Field::new("HostName", DataType::Str).name, "hostname");
    }
}
