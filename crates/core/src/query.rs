//! Distributed query specifications.
//!
//! A [`QuerySpec`] is what PIER disseminates to every node when a query is
//! submitted: a self-contained description of the work each node performs
//! against its local data and of how partial results flow back (directly to
//! the origin, up an aggregation tree, or through rehash/fetch/Bloom join
//! sites).  It is the "physical plan" of the system.

use crate::expr::Expr;
use crate::plan::{AggExpr, SortKey};
use crate::value::Value;
use pier_simnet::{Duration, NodeAddr, WireSize};
use std::fmt;

/// Globally unique query identifier: origin address in the high bits, a
/// per-origin sequence number in the low bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl QueryId {
    /// Compose an id from the origin node and a local sequence number.
    pub fn new(origin: NodeAddr, seq: u32) -> Self {
        QueryId(((origin.0 as u64) << 32) | seq as u64)
    }

    /// The node that submitted the query.
    pub fn origin(&self) -> NodeAddr {
        NodeAddr((self.0 >> 32) as u32)
    }

    /// The per-origin sequence number.
    pub fn seq(&self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Debug for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}.{}", self.origin().0, self.seq())
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}.{}", self.origin().0, self.seq())
    }
}

/// How a continuous query is re-evaluated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContinuousSpec {
    /// Time between successive evaluations (epochs).
    pub period: Duration,
    /// Only tuples stored within this window before the evaluation are
    /// considered.
    pub window: Duration,
}

impl ContinuousSpec {
    /// A spec evaluating every `period` over a window of the same length.
    pub fn every(period: Duration) -> Self {
        ContinuousSpec { period, window: period }
    }
}

/// An epoch-count window over a continuous aggregate (`WINDOW TUMBLING n
/// EPOCHS` / `WINDOW SLIDING n SLIDE m`): results are emitted once per
/// *window* of `size` consecutive epochs instead of once per epoch, and each
/// epoch's data is scanned exactly once (the per-epoch delta) rather than
/// rescanned for as long as it stays in a time window.
///
/// Window `w` covers the half-open epoch range `[w * slide, w * slide +
/// size)`.  Window ids derive from the absolute epoch number (which itself
/// derives from absolute virtual time), so every node — and a mid-flight
/// re-planned spec — agrees on the boundaries without coordination.
///
/// ```
/// use pier_core::query::WindowSpec;
/// let w = WindowSpec::sliding(4, 2);
/// assert_eq!(w.windows_of(5), vec![1, 2]);   // epochs 2..6 and 4..8
/// assert_eq!(w.closing_epoch(2), 7);         // window 2 = epochs 4..8
/// assert!(WindowSpec::tumbling(4).is_tumbling());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window width, in epochs (≥ 1).
    pub size: u32,
    /// Epochs between consecutive window starts (1 ≤ `slide` ≤ `size`;
    /// `slide == size` is a tumbling window).
    pub slide: u32,
}

impl WindowSpec {
    /// A tumbling window: consecutive, non-overlapping spans of `size` epochs.
    pub fn tumbling(size: u32) -> Self {
        let size = size.max(1);
        WindowSpec { size, slide: size }
    }

    /// A sliding window of `size` epochs advancing by `slide` epochs.
    pub fn sliding(size: u32, slide: u32) -> Self {
        let size = size.max(1);
        WindowSpec { size, slide: slide.clamp(1, size) }
    }

    /// Tumbling ⇔ the slide equals the window size.
    pub fn is_tumbling(&self) -> bool {
        self.slide == self.size
    }

    /// First epoch covered by window `w`.
    pub fn start_epoch(&self, w: u64) -> u64 {
        w * self.slide as u64
    }

    /// The epoch whose completion closes window `w` (its last covered epoch).
    pub fn closing_epoch(&self, w: u64) -> u64 {
        self.start_epoch(w) + self.size as u64 - 1
    }

    /// All window ids covering `epoch`, ascending (one for tumbling, up to
    /// `size / slide` for sliding windows).
    pub fn windows_of(&self, epoch: u64) -> Vec<u64> {
        let slide = self.slide as u64;
        let last = epoch / slide;
        let first = (epoch + 1).saturating_sub(self.size as u64).div_ceil(slide);
        (first..=last).collect()
    }
}

/// Distributed join strategies PIER implements (the paper's "multihop,
/// in-network versions of joins").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Symmetric rehash join: both relations are rehashed on the join key into
    /// a query-scoped namespace; the responsible node for each key value
    /// produces matches as tuples arrive from either side.
    SymmetricHash,
    /// Fetch-matches join: only the left relation is scanned; for each left
    /// tuple the right relation (already partitioned on the join key) is
    /// probed with a DHT `get`.
    FetchMatches,
    /// Bloom-filter semi-join: nodes first publish Bloom filters of their left
    /// join keys; the origin ORs them and re-broadcasts the summary, and only
    /// right tuples passing the filter are rehashed.
    BloomFilter,
}

/// A fresh base-table scan driving a join stage's left side (the root of a
/// bushy subchain).  Stage 0's driving scan is described at the
/// [`QueryKind::Join`] level; any later stage carrying a `BranchScan` starts
/// a second, independent chain whose tuples flow through the stage DAG until
/// an [`JoinStage::out_to`] edge merges them with the other chain.
#[derive(Clone, Debug, PartialEq)]
pub struct BranchScan {
    /// The base table this subchain scans.
    pub table: String,
    /// Pushed-down predicate over the table's schema, applied before
    /// shipping (the optimizer's predicate pushdown, same as `left_filter`).
    pub filter: Option<Expr>,
}

/// One stage of a staged multi-way join: the accumulated intermediate
/// relation (or, for stage 0, the driving base table) joined against
/// `right_table`, producing either the next intermediate (rehashed by the
/// next stage's key into that stage's DHT namespace — PIER's multihop joins
/// composed) or, at the last stage, the query's projected output.
///
/// Stages form a **DAG**, not just a chain: a stage with a
/// [`BranchScan`](JoinStage::left_scan) roots an independent subchain, and
/// [`out_to`](JoinStage::out_to) routes a stage's output to an explicit
/// (stage, side) instead of the implicit next stage's left side — which is
/// how a bushy plan's two subchains run concurrently and meet at a
/// rehash-merge stage.
///
/// Column spaces: the stage's *left input schema* is the driving table's
/// base schema for stage 0 and the previous stage's `out_cols` output
/// otherwise.  `left_key` is evaluated over that schema; `left_ship_cols`
/// narrows it before shipping (full for Fetch-Matches stages, whose left
/// tuples never leave the probing node).  `right_key` / `right_filter` are
/// over `right_table`'s base schema; `right_ship_cols` narrows shipped (or
/// probed) right tuples.  `post_filter`, `out_cols` and — at the final stage
/// — [`QueryKind::Join`]'s `project` are over the *stage concat schema*:
/// `left_ship_cols ++ right_ship_cols`.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinStage {
    /// The base table joined in at this stage.
    pub right_table: String,
    /// Join key over the stage's left input schema.
    pub left_key: Expr,
    /// Join key over `right_table`'s base schema.
    pub right_key: Expr,
    /// Pushed-down predicate over `right_table`'s base schema, applied
    /// before its tuples are shipped or probed.
    pub right_filter: Option<Expr>,
    /// Residual predicate over the stage concat schema (conjuncts that need
    /// columns of both sides, e.g. a second equi-predicate between the same
    /// relations).
    pub post_filter: Option<Expr>,
    /// Columns of the left input shipped to the join site.
    pub left_ship_cols: Vec<usize>,
    /// Columns of `right_table` shipped to the join site (or read from
    /// probed tuples).
    pub right_ship_cols: Vec<usize>,
    /// Columns of the stage concat schema forming the stage's output — the
    /// intermediate handed to the next stage.  Empty for the final stage,
    /// whose output goes through the query-level projection instead.
    pub out_cols: Vec<usize>,
    /// Which join algorithm this stage runs.
    pub strategy: JoinStrategy,
    /// Inner-stage Bloom semi-join (stages ≥ 1, `SymmetricHash` only): the
    /// join sites accumulating this stage's left intermediates publish a
    /// Bloom summary of the arrived keys, and `right_table`'s scan sites
    /// filter their rehash shipments through the combined summary before
    /// the wire.  A lost summary degrades to an unfiltered rehash after a
    /// hold-down deadline — never wrong results, only more traffic.
    pub inner_bloom: bool,
    /// Planner-suggested Bloom filter size in bits for this stage's summary
    /// (stage-0 `BloomFilter` strategy or `inner_bloom`), derived from the
    /// catalog's distinct-key estimates.  `0` = use `PierConfig::bloom_bits`.
    /// The engine clamps to its configured bounds; all nodes derive the same
    /// geometry from this disseminated value, so summaries union cleanly.
    pub bloom_bits: u32,
    /// When set, this stage's left side is a fresh base-table scan (the root
    /// of a bushy subchain) instead of the previous stage's output;
    /// `left_key` and `left_ship_cols` are then over the scanned table's
    /// base schema, exactly as stage 0's are over the driving table.
    pub left_scan: Option<BranchScan>,
    /// Explicit routing of this stage's `out_cols` output: `(stage, side)`
    /// it is rehashed to.  `None` keeps the chain default — the next stage's
    /// left side (side 0) — with the last stage producing the query output.
    /// A bushy merge stage receives one subchain on side 0 and the other on
    /// side 1; its `right_key` / `right_ship_cols` are then over the feeding
    /// subchain's output schema rather than a base table.
    pub out_to: Option<(u8, u8)>,
}

impl JoinStage {
    /// A plain chain stage with no DAG edges (the pre-bushy constructor
    /// shape; tests and manual specs build stages through this).
    #[allow(clippy::too_many_arguments)]
    pub fn chain(
        right_table: impl Into<String>,
        left_key: Expr,
        right_key: Expr,
        strategy: JoinStrategy,
    ) -> Self {
        JoinStage {
            right_table: right_table.into(),
            left_key,
            right_key,
            right_filter: None,
            post_filter: None,
            left_ship_cols: Vec::new(),
            right_ship_cols: Vec::new(),
            out_cols: Vec::new(),
            strategy,
            inner_bloom: false,
            bloom_bits: 0,
            left_scan: None,
            out_to: None,
        }
    }
}

/// Grouped (or global) aggregation terminating a staged join: the final
/// stage's matched rows feed the hierarchical aggregation plane instead of
/// streaming raw to the origin.
///
/// Column spaces: `group_exprs` and each aggregate's argument are over the
/// **final stage's concat schema** (`left_ship_cols ++ right_ship_cols` of
/// the last [`JoinStage`]).  `having`, [`QueryKind::Join`]'s `order_by`, and
/// `final_project` are over the *aggregate output* schema (group columns
/// then aggregate columns, hidden aggregates included).
#[derive(Clone, Debug, PartialEq)]
pub struct JoinAggregate {
    /// Grouping expressions over the final stage's concat schema.
    pub group_exprs: Vec<Expr>,
    /// Aggregates over the final stage's concat schema (select-list plus
    /// hidden ones appended for `HAVING` / `ORDER BY`).
    pub aggs: Vec<AggExpr>,
    /// `HAVING` predicate over the aggregate output, applied where the
    /// groups are finalized (the aggregation root, or the origin when
    /// `hierarchical` is off).
    pub having: Option<Expr>,
    /// Final projection over the aggregate output, mapping to the client's
    /// column order.
    pub final_project: Vec<usize>,
    /// `true`: every node partially aggregates its final-stage matches per
    /// (query, epoch) and the partials combine in-network over the DHT
    /// toward the aggregation root (PIER's in-network aggregation composed
    /// over the join).  `false`: the final stage streams its raw matched
    /// rows to the origin, which performs the whole GROUP BY — the baseline
    /// the optimizer costs against (and benchmarks measure).
    pub hierarchical: bool,
    /// Epoch-count window over a continuous query: groups finalize once per
    /// window of epochs instead of once per epoch.  Forces `hierarchical`
    /// (the root is where per-epoch states are retained and merged).
    pub window: Option<WindowSpec>,
    /// Aggregate-aware stage keys: `true` when the grouping column *is* the
    /// final stage's join key, so every row of a group already lives at one
    /// join site (the DHT partitioned matches by that very value).  Join
    /// sites then finalize their own groups in place instead of rehashing
    /// partials into the aggregation tree — the climb is skipped entirely.
    pub colocated: bool,
}

/// The per-node work of a query.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryKind {
    /// Scan + filter + project; qualifying rows stream to the origin, which
    /// applies an optional sort/limit.
    Select {
        /// Table to scan.
        table: String,
        /// Predicate over the table schema.
        filter: Option<Expr>,
        /// Projection expressions over the table schema.
        project: Vec<Expr>,
        /// Sort keys over the projected output (applied at the origin).
        order_by: Vec<SortKey>,
        /// Row limit (applied at the origin).
        limit: Option<usize>,
    },
    /// Grouped (or global) aggregation with hierarchical in-network combining.
    Aggregate {
        /// Table to scan.
        table: String,
        /// Predicate over the table schema.
        filter: Option<Expr>,
        /// Grouping expressions over the table schema.
        group_exprs: Vec<Expr>,
        /// Aggregates over the table schema.
        aggs: Vec<AggExpr>,
        /// `HAVING` predicate over the aggregate output (groups ++ aggs).
        having: Option<Expr>,
        /// Sort keys over the aggregate output (origin-side).
        order_by: Vec<SortKey>,
        /// Row limit (origin-side top-k).
        limit: Option<usize>,
        /// Final projection over the aggregate output, mapping to the client's
        /// column order.
        final_project: Vec<usize>,
        /// Epoch-count window over a continuous query: the aggregation root
        /// retains each epoch's merged states and emits one result set per
        /// *window* (keyed by window id in [`ResultRow::epoch`]) when the
        /// watermark passes the window's closing epoch.
        window: Option<WindowSpec>,
    },
    /// Distributed equi-join of two or more tables, executed as a chain of
    /// [`JoinStage`]s in the optimizer's chosen join order (one stage for a
    /// classic two-way join).
    Join {
        /// The driving (leftmost) table of the chosen join order.
        left_table: String,
        /// Predicate over the driving table's schema, applied at each node
        /// before its tuples are shipped (the optimizer's predicate
        /// pushdown).
        left_filter: Option<Expr>,
        /// The join stages, in execution order (at least one).
        stages: Vec<JoinStage>,
        /// Projection over the final stage's concat schema.  With an
        /// `aggregate`, this is the identity over the concat schema (used
        /// only by the raw-row streaming baseline).
        project: Vec<Expr>,
        /// Grouped aggregation over the final stage's output, when the query
        /// is a `GROUP BY` over the join.
        aggregate: Option<JoinAggregate>,
        /// Sort keys over the projected output (origin-side); with an
        /// `aggregate`, over the aggregate output schema.
        order_by: Vec<SortKey>,
        /// Row limit (origin-side).
        limit: Option<usize>,
    },
    /// Recursive reachability over an edge relation (the paper's "network
    /// topology analysis and routing using recursive queries").  Starting from
    /// `source`, repeatedly follows edges `src -> dst`, streaming each newly
    /// reached vertex (with its depth) to the origin.
    Recursive {
        /// Edge table, partitioned by the source column.
        edges_table: String,
        /// Index of the source column in the edge schema.
        src_col: usize,
        /// Index of the destination column in the edge schema.
        dst_col: usize,
        /// The start vertex.
        source: Value,
        /// Maximum expansion depth (safety bound).
        max_depth: u32,
    },
}

impl QueryKind {
    /// The table whose local scan seeds this query on every node.
    pub fn primary_table(&self) -> &str {
        match self {
            QueryKind::Select { table, .. } | QueryKind::Aggregate { table, .. } => table,
            QueryKind::Join { left_table, .. } => left_table,
            QueryKind::Recursive { edges_table, .. } => edges_table,
        }
    }

    /// Is this an aggregation query (single-table, or an aggregate
    /// terminating a join)?
    pub fn is_aggregate(&self) -> bool {
        matches!(self, QueryKind::Aggregate { .. })
            || matches!(self, QueryKind::Join { aggregate: Some(_), .. })
    }

    /// The join stages, for join queries.
    pub fn join_stages(&self) -> Option<&[JoinStage]> {
        match self {
            QueryKind::Join { stages, .. } => Some(stages),
            _ => None,
        }
    }

    /// The aggregate terminating a join, if any.
    pub fn join_aggregate(&self) -> Option<&JoinAggregate> {
        match self {
            QueryKind::Join { aggregate, .. } => aggregate.as_ref(),
            _ => None,
        }
    }

    /// The epoch-count window of a windowed continuous aggregate, for both
    /// aggregation shapes.
    pub fn window_spec(&self) -> Option<WindowSpec> {
        match self {
            QueryKind::Aggregate { window, .. } => *window,
            QueryKind::Join { aggregate: Some(agg), .. } => agg.window,
            _ => None,
        }
    }

    /// The grouping and aggregate expressions this query's partial-aggregate
    /// plane combines, for both aggregation shapes (`Aggregate`, and `Join`
    /// with a hierarchical aggregate).
    pub fn partial_agg_parts(&self) -> Option<(&[Expr], &[AggExpr])> {
        match self {
            QueryKind::Aggregate { group_exprs, aggs, .. } => {
                Some((group_exprs.as_slice(), aggs.as_slice()))
            }
            QueryKind::Join { aggregate: Some(agg), .. } if agg.hierarchical => {
                Some((agg.group_exprs.as_slice(), agg.aggs.as_slice()))
            }
            _ => None,
        }
    }

    /// All tables this query reads, in join order (single-element for
    /// non-join queries).  Subchain roots contribute their scanned table; a
    /// merge stage's `right_table` is skipped when another stage feeds its
    /// right side (nothing scans it there).
    pub fn tables(&self) -> Vec<&str> {
        match self {
            QueryKind::Join { left_table, stages, .. } => {
                let mut t = vec![left_table.as_str()];
                for (k, s) in stages.iter().enumerate() {
                    if let Some(b) = &s.left_scan {
                        t.push(b.table.as_str());
                    }
                    if !join_side_fed(stages, k as u8, 1) {
                        t.push(s.right_table.as_str());
                    }
                }
                t
            }
            other => vec![other.primary_table()],
        }
    }
}

/// Does some stage's output feed `(stage, side)` of the join DAG?  Side 0 of
/// stage `k > 0` is implicitly fed by stage `k - 1` unless that stage routes
/// elsewhere or stage `k` roots a subchain; side 1 is fed only through an
/// explicit [`JoinStage::out_to`] edge (it is a base-table scan otherwise).
pub fn join_side_fed(stages: &[JoinStage], stage: u8, side: u8) -> bool {
    stages.iter().enumerate().any(|(j, s)| {
        let target = match s.out_to {
            Some(t) => Some(t),
            // Implicit chain edge: a non-final stage defaults to the next
            // stage's left side.
            None if j + 1 < stages.len() => Some((j as u8 + 1, 0)),
            None => None,
        };
        target == Some((stage, side))
    }) && !(side == 0 && stages[stage as usize].left_scan.is_some())
}

/// A complete distributed query: identity, work description, output naming,
/// and continuous-execution settings.
#[derive(Clone, Debug, PartialEq)]
pub struct QuerySpec {
    /// Unique id (also identifies the origin node).
    pub id: QueryId,
    /// Per-node work.
    pub kind: QueryKind,
    /// Client-visible output column names.
    pub output_names: Vec<String>,
    /// Continuous execution settings (`None` = one-shot snapshot query).
    pub continuous: Option<ContinuousSpec>,
}

impl QuerySpec {
    /// The node that submitted this query and receives its results.
    pub fn origin(&self) -> NodeAddr {
        self.id.origin()
    }

    /// Is this a continuous query?
    pub fn is_continuous(&self) -> bool {
        self.continuous.is_some()
    }
}

impl WireSize for QuerySpec {
    fn wire_size(&self) -> usize {
        // Plans are small (tens to a couple hundred bytes); an estimate based
        // on the expression count is plenty for bandwidth accounting.
        let kind = match &self.kind {
            QueryKind::Select { filter, project, .. } => {
                filter.as_ref().map(|f| f.wire_size()).unwrap_or(0)
                    + project.iter().map(|e| e.wire_size()).sum::<usize>()
            }
            QueryKind::Aggregate { filter, group_exprs, aggs, having, window, .. } => {
                filter.as_ref().map(|f| f.wire_size()).unwrap_or(0)
                    + group_exprs.iter().map(|e| e.wire_size()).sum::<usize>()
                    + aggs
                        .iter()
                        .map(|a| a.arg.as_ref().map(|e| e.wire_size()).unwrap_or(1) + 8)
                        .sum::<usize>()
                    + having.as_ref().map(|f| f.wire_size()).unwrap_or(0)
                    + if window.is_some() { 8 } else { 1 }
            }
            QueryKind::Join { left_filter, stages, project, aggregate, .. } => {
                left_filter.as_ref().map(|f| f.wire_size()).unwrap_or(0)
                    + project.iter().map(|e| e.wire_size()).sum::<usize>()
                    + aggregate
                        .as_ref()
                        .map(|a| {
                            a.group_exprs.iter().map(|e| e.wire_size()).sum::<usize>()
                                + a.aggs
                                    .iter()
                                    .map(|x| x.arg.as_ref().map(|e| e.wire_size()).unwrap_or(1) + 8)
                                    .sum::<usize>()
                                + a.having.as_ref().map(|h| h.wire_size()).unwrap_or(0)
                                + a.final_project.len()
                                + if a.window.is_some() { 8 } else { 1 }
                                + 2
                        })
                        .unwrap_or(0)
                    + stages
                        .iter()
                        .map(|s| {
                            s.right_table.len()
                                + s.left_ship_cols.len()
                                + s.right_ship_cols.len()
                                + s.out_cols.len()
                                + s.left_key.wire_size()
                                + s.right_key.wire_size()
                                + s.right_filter.as_ref().map(|f| f.wire_size()).unwrap_or(0)
                                + s.post_filter.as_ref().map(|f| f.wire_size()).unwrap_or(0)
                                + 1
                                // strategy flag + inner_bloom + bloom_bits
                                + 5
                                // DAG edges: out_to tag + (stage, side), and
                                // the subchain scan when present
                                + 3
                                + s.left_scan
                                    .as_ref()
                                    .map(|b| {
                                        b.table.len()
                                            + 1
                                            + b.filter
                                                .as_ref()
                                                .map(|f| f.wire_size())
                                                .unwrap_or(0)
                                    })
                                    .unwrap_or(1)
                        })
                        .sum::<usize>()
            }
            QueryKind::Recursive { source, .. } => 16 + source.wire_size(),
        };
        8 + 16
            + self.output_names.iter().map(|n| n.len() + 2).sum::<usize>()
            + kind
            + if self.continuous.is_some() { 16 } else { 1 }
    }
}

/// One output row delivered to the client.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    /// Which query produced it.
    pub query: QueryId,
    /// Which epoch of a continuous query (0 for one-shot queries).
    pub epoch: u64,
    /// The row.
    pub tuple: crate::tuple::Tuple,
}

impl WireSize for ResultRow {
    fn wire_size(&self) -> usize {
        8 + 8 + self.tuple.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_id_round_trips() {
        let id = QueryId::new(NodeAddr(42), 7);
        assert_eq!(id.origin(), NodeAddr(42));
        assert_eq!(id.seq(), 7);
        assert_eq!(format!("{id}"), "q42.7");
        assert_eq!(format!("{id:?}"), "q42.7");
        let other = QueryId::new(NodeAddr(42), 8);
        assert_ne!(id, other);
    }

    #[test]
    fn continuous_spec_every() {
        let c = ContinuousSpec::every(Duration::from_secs(5));
        assert_eq!(c.period, Duration::from_secs(5));
        assert_eq!(c.window, Duration::from_secs(5));
    }

    #[test]
    fn window_spec_geometry() {
        let t = WindowSpec::tumbling(4);
        assert!(t.is_tumbling());
        assert_eq!(t.windows_of(0), vec![0]);
        assert_eq!(t.windows_of(3), vec![0]);
        assert_eq!(t.windows_of(4), vec![1]);
        assert_eq!(t.start_epoch(2), 8);
        assert_eq!(t.closing_epoch(2), 11);

        let s = WindowSpec::sliding(8, 2);
        assert!(!s.is_tumbling());
        // Epoch 9 is covered by windows starting at epochs 2, 4, 6, 8.
        assert_eq!(s.windows_of(9), vec![1, 2, 3, 4]);
        assert_eq!(s.closing_epoch(1), 9);
        // Early epochs are covered by fewer windows (none start below 0).
        assert_eq!(s.windows_of(1), vec![0]);

        // Degenerate inputs are clamped to valid geometry.
        assert_eq!(WindowSpec::tumbling(0).size, 1);
        assert_eq!(WindowSpec::sliding(4, 0).slide, 1);
        assert_eq!(WindowSpec::sliding(4, 9).slide, 4);
    }

    #[test]
    fn window_spec_accessor() {
        let kind = QueryKind::Aggregate {
            table: "t".into(),
            filter: None,
            group_exprs: vec![Expr::col(0)],
            aggs: vec![],
            having: None,
            order_by: vec![],
            limit: None,
            final_project: vec![0],
            window: Some(WindowSpec::tumbling(4)),
        };
        assert_eq!(kind.window_spec(), Some(WindowSpec::tumbling(4)));
        assert!(kind.is_aggregate());
    }

    #[test]
    fn kind_helpers() {
        let sel = QueryKind::Select {
            table: "t".into(),
            filter: None,
            project: vec![Expr::col(0)],
            order_by: vec![],
            limit: None,
        };
        assert_eq!(sel.primary_table(), "t");
        assert!(!sel.is_aggregate());
        let rec = QueryKind::Recursive {
            edges_table: "link".into(),
            src_col: 0,
            dst_col: 1,
            source: Value::str("n0"),
            max_depth: 8,
        };
        assert_eq!(rec.primary_table(), "link");
    }

    #[test]
    fn spec_wire_size_and_accessors() {
        let spec = QuerySpec {
            id: QueryId::new(NodeAddr(3), 1),
            kind: QueryKind::Select {
                table: "t".into(),
                filter: Some(Expr::col(0).gt(Expr::lit(1i64))),
                project: vec![Expr::col(0), Expr::col(1)],
                order_by: vec![],
                limit: Some(5),
            },
            output_names: vec!["a".into(), "b".into()],
            continuous: Some(ContinuousSpec::every(Duration::from_secs(10))),
        };
        assert_eq!(spec.origin(), NodeAddr(3));
        assert!(spec.is_continuous());
        assert!(spec.wire_size() > 20);
    }
}
