//! Logical query plans.
//!
//! The planner turns a parsed [`SelectStmt`](crate::sql::SelectStmt) into a
//! [`LogicalPlan`] tree with all column references resolved to positions.  The
//! logical plan serves two purposes: it is the input to the distributed
//! planner that derives a [`QuerySpec`](crate::query::QuerySpec), and it can
//! be executed directly against in-memory tables by the
//! [`reference`](crate::reference) evaluator, which the test suite uses as
//! ground truth for distributed answers.

use crate::aggregate::AggFunc;
use crate::expr::Expr;
use crate::tuple::Schema;

/// One aggregate computation: the function and its (optional) argument.
#[derive(Clone, Debug, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression over the input schema; `None` means `COUNT(*)`.
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

/// A sort key over an operator's *output* columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortKey {
    /// Output column index.
    pub column: usize,
    /// Descending?
    pub desc: bool,
}

/// The index of the relation a global (concatenated-schema) column belongs
/// to, given each relation's starting offset (ascending, first entry 0; a
/// trailing total-arity sentinel is tolerated for columns in range).  This
/// is the one column-space mapping every multi-join layer — binder,
/// optimizer pushdown, physical lowering, reference evaluation — shares.
pub fn relation_of_column(offsets: &[usize], col: usize) -> usize {
    offsets.iter().rposition(|&o| o <= col).expect("offsets start at 0")
}

/// A resolved logical plan.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalPlan {
    /// Scan a base table.
    Scan {
        /// Table (namespace) name.
        table: String,
        /// The table's schema, possibly qualified by an alias.
        schema: Schema,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// Compute projections.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Expressions over the input schema.
        exprs: Vec<Expr>,
        /// Output schema (names + types of `exprs`).
        schema: Schema,
    },
    /// Equi-join two inputs.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join key over the left schema.
        left_key: Expr,
        /// Join key over the right schema.
        right_key: Expr,
    },
    /// N-ary equi-join: all inputs joined under a predicate graph.  The
    /// optimizer's join-order enumerator decides the execution order; the
    /// node itself is order-free (inputs appear in the query's declared
    /// order, and its schema is their concatenation in that order).
    MultiJoin {
        /// One input per relation, in declared (bound) order.
        inputs: Vec<LogicalPlan>,
        /// Equi-join predicates as `(left, right)` column pairs over the
        /// concatenated schema of `inputs`.
        preds: Vec<(usize, usize)>,
    },
    /// Grouped (or global) aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping expressions over the input schema.
        group_exprs: Vec<Expr>,
        /// Aggregates over the input schema.
        aggs: Vec<AggExpr>,
        /// Output schema: group columns then aggregate columns.
        schema: Schema,
    },
    /// Sort by output columns.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys (applied in order).
        keys: Vec<SortKey>,
    },
    /// Keep only the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row limit.
        n: usize,
    },
}

impl LogicalPlan {
    /// The output schema of this plan node.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema.clone(),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema.clone(),
            LogicalPlan::Join { left, right, .. } => left.schema().concat(&right.schema()),
            LogicalPlan::MultiJoin { inputs, .. } => {
                let mut schema = Schema::empty();
                for input in inputs {
                    schema = schema.concat(&input.schema());
                }
                schema
            }
            LogicalPlan::Aggregate { schema, .. } => schema.clone(),
            LogicalPlan::Sort { input, .. } | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Names of the base tables this plan reads.
    pub fn input_tables(&self) -> Vec<String> {
        match self {
            LogicalPlan::Scan { table, .. } => vec![table.clone()],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.input_tables(),
            LogicalPlan::Join { left, right, .. } => {
                let mut t = left.input_tables();
                t.extend(right.input_tables());
                t
            }
            LogicalPlan::MultiJoin { inputs, .. } => {
                inputs.iter().flat_map(|i| i.input_tables()).collect()
            }
        }
    }

    /// A short indented rendering, for EXPLAIN-style debugging.
    pub fn explain(&self) -> String {
        fn rec(plan: &LogicalPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match plan {
                LogicalPlan::Scan { table, schema } => {
                    out.push_str(&format!("{pad}Scan {table} [{} cols]\n", schema.arity()))
                }
                LogicalPlan::Filter { input, predicate } => {
                    out.push_str(&format!("{pad}Filter {predicate}\n"));
                    rec(input, depth + 1, out);
                }
                LogicalPlan::Project { input, exprs, .. } => {
                    let rendered: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                    out.push_str(&format!("{pad}Project [{}]\n", rendered.join(", ")));
                    rec(input, depth + 1, out);
                }
                LogicalPlan::Join { left, right, left_key, right_key } => {
                    out.push_str(&format!("{pad}Join on {left_key} = {right_key}\n"));
                    rec(left, depth + 1, out);
                    rec(right, depth + 1, out);
                }
                LogicalPlan::MultiJoin { inputs, preds } => {
                    let rendered: Vec<String> =
                        preds.iter().map(|(l, r)| format!("#{l} = #{r}")).collect();
                    out.push_str(&format!(
                        "{pad}MultiJoin [{} relations] on {}\n",
                        inputs.len(),
                        rendered.join(" AND ")
                    ));
                    for input in inputs {
                        rec(input, depth + 1, out);
                    }
                }
                LogicalPlan::Aggregate { input, group_exprs, aggs, .. } => {
                    out.push_str(&format!(
                        "{pad}Aggregate groups={} aggs={}\n",
                        group_exprs.len(),
                        aggs.len()
                    ));
                    rec(input, depth + 1, out);
                }
                LogicalPlan::Sort { input, keys } => {
                    out.push_str(&format!("{pad}Sort {keys:?}\n"));
                    rec(input, depth + 1, out);
                }
                LogicalPlan::Limit { input, n } => {
                    out.push_str(&format!("{pad}Limit {n}\n"));
                    rec(input, depth + 1, out);
                }
            }
        }
        let mut s = String::new();
        rec(self, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]),
        }
    }

    #[test]
    fn schema_propagates() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Expr::col(0).gt(Expr::lit(1i64)),
        };
        assert_eq!(plan.schema().arity(), 2);

        let proj = LogicalPlan::Project {
            input: Box::new(scan()),
            exprs: vec![Expr::col(1)],
            schema: Schema::of(&[("b", DataType::Str)]),
        };
        assert_eq!(proj.schema().names(), vec!["b"]);

        let join = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            left_key: Expr::col(0),
            right_key: Expr::col(0),
        };
        assert_eq!(join.schema().arity(), 4);
    }

    #[test]
    fn input_tables_collects_all() {
        let join = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(LogicalPlan::Scan {
                table: "u".into(),
                schema: Schema::of(&[("x", DataType::Int)]),
            }),
            left_key: Expr::col(0),
            right_key: Expr::col(0),
        };
        let limited = LogicalPlan::Limit { input: Box::new(join), n: 5 };
        assert_eq!(limited.input_tables(), vec!["t".to_string(), "u".to_string()]);
    }

    #[test]
    fn explain_renders_tree() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(LogicalPlan::Aggregate {
                    input: Box::new(scan()),
                    group_exprs: vec![Expr::col(1)],
                    aggs: vec![AggExpr { func: AggFunc::Count, arg: None, name: "count".into() }],
                    schema: Schema::of(&[("b", DataType::Str), ("count", DataType::Int)]),
                }),
                keys: vec![SortKey { column: 1, desc: true }],
            }),
            n: 10,
        };
        let text = plan.explain();
        assert!(text.contains("Limit 10"));
        assert!(text.contains("Sort"));
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Scan t"));
    }
}
