//! Name resolution and planning: SQL AST → logical plan → distributed spec.

use crate::aggregate::AggFunc;
use crate::catalog::Catalog;
use crate::expr::{Expr, ScalarFunc};
use crate::plan::{AggExpr, LogicalPlan, SortKey};
use crate::query::{ContinuousSpec, JoinStrategy, QueryKind};
use crate::sql::{AstExpr, SelectItem, SelectStmt};
use crate::tuple::{Field, Schema};
use crate::value::DataType;
use pier_simnet::Duration;
use std::fmt;

/// Planning errors (unknown tables/columns, unsupported shapes).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanError {
    /// What went wrong.
    pub message: String,
}

impl PlanError {
    fn new(message: impl Into<String>) -> Self {
        PlanError { message: message.into() }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "planning error: {}", self.message)
    }
}

impl std::error::Error for PlanError {}

/// The result of planning: a centralized logical plan (for the reference
/// evaluator) plus the distributed per-node work description.
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    /// Resolved logical plan.
    pub logical: LogicalPlan,
    /// Distributed execution description.
    pub kind: QueryKind,
    /// Client-visible output column names.
    pub output_names: Vec<String>,
    /// Continuous-query settings, if any.
    pub continuous: Option<ContinuousSpec>,
}

/// Plans SQL statements against a catalog.
pub struct Planner<'a> {
    catalog: &'a Catalog,
    /// Preferred strategy for distributed joins.
    pub join_strategy: JoinStrategy,
}

impl<'a> Planner<'a> {
    /// A planner over the given catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Planner { catalog, join_strategy: JoinStrategy::SymmetricHash }
    }

    /// A planner that uses a specific join strategy.
    pub fn with_join_strategy(catalog: &'a Catalog, strategy: JoinStrategy) -> Self {
        Planner { catalog, join_strategy: strategy }
    }

    /// Plan a parsed `SELECT`.
    pub fn plan_select(&self, stmt: &SelectStmt) -> Result<PlannedQuery, PlanError> {
        let continuous = stmt.continuous.map(|c| {
            let period = Duration::from_secs_f64(c.every_secs.max(0.001));
            let window = c.window_secs.map(Duration::from_secs_f64).unwrap_or(period);
            ContinuousSpec { period, window }
        });

        if stmt.join.is_some() {
            self.plan_join(stmt, continuous)
        } else if stmt.is_aggregate() {
            self.plan_aggregate(stmt, continuous)
        } else {
            self.plan_simple_select(stmt, continuous)
        }
    }

    // ------------------------------------------------------------------

    fn table_schema(&self, name: &str, qualifier: Option<&str>) -> Result<Schema, PlanError> {
        let def = self
            .catalog
            .get(name)
            .ok_or_else(|| PlanError::new(format!("unknown table '{name}'")))?;
        Ok(match qualifier {
            Some(q) => def.schema.qualified(q),
            None => def.schema.clone(),
        })
    }

    fn plan_simple_select(
        &self,
        stmt: &SelectStmt,
        continuous: Option<ContinuousSpec>,
    ) -> Result<PlannedQuery, PlanError> {
        let schema = self.table_schema(&stmt.from.name, None)?;
        let scan = LogicalPlan::Scan { table: stmt.from.name.clone(), schema: schema.clone() };

        let filter = match &stmt.where_clause {
            Some(ast) => Some(resolve_expr(ast, &schema)?),
            None => None,
        };
        let filtered = match &filter {
            Some(predicate) => {
                LogicalPlan::Filter { input: Box::new(scan), predicate: predicate.clone() }
            }
            None => scan,
        };

        // Projections.
        let (exprs, names, out_schema) = self.resolve_projections(&stmt.projections, &schema)?;
        let projected = LogicalPlan::Project {
            input: Box::new(filtered),
            exprs: exprs.clone(),
            schema: out_schema.clone(),
        };

        let order_by = resolve_order_by(stmt, &out_schema, None)?;
        let mut logical = projected;
        if !order_by.is_empty() {
            logical = LogicalPlan::Sort { input: Box::new(logical), keys: order_by.clone() };
        }
        if let Some(n) = stmt.limit {
            logical = LogicalPlan::Limit { input: Box::new(logical), n };
        }

        Ok(PlannedQuery {
            logical,
            kind: QueryKind::Select {
                table: stmt.from.name.clone(),
                filter,
                project: exprs,
                order_by,
                limit: stmt.limit,
            },
            output_names: names,
            continuous,
        })
    }

    fn plan_aggregate(
        &self,
        stmt: &SelectStmt,
        continuous: Option<ContinuousSpec>,
    ) -> Result<PlannedQuery, PlanError> {
        let schema = self.table_schema(&stmt.from.name, None)?;
        let scan = LogicalPlan::Scan { table: stmt.from.name.clone(), schema: schema.clone() };
        let filter = match &stmt.where_clause {
            Some(ast) => Some(resolve_expr(ast, &schema)?),
            None => None,
        };
        let filtered = match &filter {
            Some(predicate) => {
                LogicalPlan::Filter { input: Box::new(scan), predicate: predicate.clone() }
            }
            None => scan,
        };

        // Group-by expressions.
        let mut group_exprs = Vec::new();
        let mut group_fields = Vec::new();
        for name in &stmt.group_by {
            let idx = schema
                .index_of(name)
                .ok_or_else(|| PlanError::new(format!("unknown GROUP BY column '{name}'")))?;
            group_exprs.push(Expr::col(idx));
            let f = schema.field(idx).expect("index_of returned valid index");
            group_fields.push(Field::new(name.clone(), f.dtype));
        }

        // Select list: group columns and aggregates.  Track, for each select
        // item, which aggregate-output column it maps to.
        let mut aggs: Vec<AggExpr> = Vec::new();
        let mut final_project = Vec::new();
        let mut output_names = Vec::new();

        for (i, item) in stmt.projections.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    return Err(PlanError::new("SELECT * cannot be combined with aggregation"))
                }
                SelectItem::Expr { expr, alias } => {
                    if let AstExpr::Agg { func, arg } = expr {
                        let resolved_arg = match arg {
                            Some(a) => Some(resolve_expr(a, &schema)?),
                            None => None,
                        };
                        let name = alias.clone().unwrap_or_else(|| default_agg_name(*func, arg));
                        let col = group_exprs.len()
                            + push_agg(&mut aggs, *func, resolved_arg, name.clone());
                        final_project.push(col);
                        output_names.push(name);
                    } else if expr.contains_aggregate() {
                        return Err(PlanError::new(
                            "expressions over aggregates in SELECT are not supported; \
                             use the aggregate directly",
                        ));
                    } else {
                        // Must be (equivalent to) a grouping column.
                        let cols = expr.referenced_columns();
                        let name = alias.clone().unwrap_or_else(|| {
                            cols.first().cloned().unwrap_or_else(|| format!("col{i}"))
                        });
                        let resolved = resolve_expr(expr, &schema)?;
                        let pos = group_exprs
                            .iter()
                            .position(|g| *g == resolved)
                            .ok_or_else(|| {
                                PlanError::new(format!(
                                    "non-aggregate select item '{name}' must appear in GROUP BY"
                                ))
                            })?;
                        final_project.push(pos);
                        output_names.push(name);
                    }
                }
            }
        }

        // HAVING and ORDER BY are resolved over the aggregate output
        // (group columns ++ aggregate columns); aggregates they mention that
        // are not already computed are appended as hidden columns.
        let having = match &stmt.having {
            Some(ast) => Some(resolve_agg_output_expr(
                ast,
                &schema,
                &group_exprs,
                &stmt.group_by,
                &mut aggs,
            )?),
            None => None,
        };

        let mut order_by = Vec::new();
        for item in &stmt.order_by {
            let expr = resolve_agg_output_expr(
                &item.expr,
                &schema,
                &group_exprs,
                &stmt.group_by,
                &mut aggs,
            )?;
            let column = match expr {
                Expr::Column(c) => c,
                _ => {
                    return Err(PlanError::new(
                        "ORDER BY in aggregate queries must be a group column or an aggregate",
                    ))
                }
            };
            order_by.push(SortKey { column, desc: item.desc });
        }

        // Output schema of the aggregate operator.
        let mut agg_fields = group_fields.clone();
        for a in &aggs {
            let dtype = match a.func {
                AggFunc::Count => DataType::Int,
                AggFunc::Avg => DataType::Float,
                AggFunc::Sum => DataType::Float,
                AggFunc::Min | AggFunc::Max => a
                    .arg
                    .as_ref()
                    .and_then(|e| match e {
                        Expr::Column(i) => schema.field(*i).map(|f| f.dtype),
                        _ => None,
                    })
                    .unwrap_or(DataType::Float),
            };
            agg_fields.push(Field::new(a.name.clone(), dtype));
        }
        let agg_schema = Schema::new(agg_fields);

        let mut logical = LogicalPlan::Aggregate {
            input: Box::new(filtered),
            group_exprs: group_exprs.clone(),
            aggs: aggs.clone(),
            schema: agg_schema.clone(),
        };
        if let Some(h) = &having {
            logical = LogicalPlan::Filter { input: Box::new(logical), predicate: h.clone() };
        }
        if !order_by.is_empty() {
            logical = LogicalPlan::Sort { input: Box::new(logical), keys: order_by.clone() };
        }
        if let Some(n) = stmt.limit {
            logical = LogicalPlan::Limit { input: Box::new(logical), n };
        }
        // Final projection to the select-list order.
        let proj_exprs: Vec<Expr> = final_project.iter().map(|&i| Expr::col(i)).collect();
        let proj_fields: Vec<Field> = final_project
            .iter()
            .zip(&output_names)
            .map(|(&i, name)| {
                Field::new(name.clone(), agg_schema.field(i).map(|f| f.dtype).unwrap_or(DataType::Float))
            })
            .collect();
        logical = LogicalPlan::Project {
            input: Box::new(logical),
            exprs: proj_exprs,
            schema: Schema::new(proj_fields),
        };

        Ok(PlannedQuery {
            logical,
            kind: QueryKind::Aggregate {
                table: stmt.from.name.clone(),
                filter,
                group_exprs,
                aggs,
                having,
                order_by,
                limit: stmt.limit,
                final_project,
            },
            output_names,
            continuous,
        })
    }

    fn plan_join(
        &self,
        stmt: &SelectStmt,
        continuous: Option<ContinuousSpec>,
    ) -> Result<PlannedQuery, PlanError> {
        if stmt.is_aggregate() {
            return Err(PlanError::new("aggregation over joins is not supported"));
        }
        let join = stmt.join.as_ref().expect("plan_join requires a join clause");
        let left_qualifier = stmt.from.qualifier().to_string();
        let right_qualifier = join.table.qualifier().to_string();
        let left_schema = self.table_schema(&stmt.from.name, Some(&left_qualifier))?;
        let right_schema = self.table_schema(&join.table.name, Some(&right_qualifier))?;

        // Resolve the equi-join keys; accept them written in either order.
        let (left_key, right_key) = match (
            left_schema.index_of(&join.left_column),
            right_schema.index_of(&join.right_column),
        ) {
            (Some(l), Some(r)) => (Expr::col(l), Expr::col(r)),
            _ => match (
                left_schema.index_of(&join.right_column),
                right_schema.index_of(&join.left_column),
            ) {
                (Some(l), Some(r)) => (Expr::col(l), Expr::col(r)),
                _ => {
                    return Err(PlanError::new(format!(
                        "cannot resolve join columns '{}' / '{}'",
                        join.left_column, join.right_column
                    )))
                }
            },
        };

        let joined_schema = left_schema.concat(&right_schema);
        let post_filter = match &stmt.where_clause {
            Some(ast) => Some(resolve_expr(ast, &joined_schema)?),
            None => None,
        };
        let (project, names, out_schema) =
            self.resolve_projections(&stmt.projections, &joined_schema)?;
        let order_by = resolve_order_by(stmt, &out_schema, None)?;

        let left_scan =
            LogicalPlan::Scan { table: stmt.from.name.clone(), schema: left_schema.clone() };
        let right_scan =
            LogicalPlan::Scan { table: join.table.name.clone(), schema: right_schema.clone() };
        let mut logical = LogicalPlan::Join {
            left: Box::new(left_scan),
            right: Box::new(right_scan),
            left_key: left_key.clone(),
            right_key: right_key.clone(),
        };
        if let Some(f) = &post_filter {
            logical = LogicalPlan::Filter { input: Box::new(logical), predicate: f.clone() };
        }
        logical = LogicalPlan::Project {
            input: Box::new(logical),
            exprs: project.clone(),
            schema: out_schema,
        };
        if !order_by.is_empty() {
            logical = LogicalPlan::Sort { input: Box::new(logical), keys: order_by.clone() };
        }
        if let Some(n) = stmt.limit {
            logical = LogicalPlan::Limit { input: Box::new(logical), n };
        }

        Ok(PlannedQuery {
            logical,
            kind: QueryKind::Join {
                left_table: stmt.from.name.clone(),
                right_table: join.table.name.clone(),
                left_key,
                right_key,
                post_filter,
                project,
                strategy: self.join_strategy,
                order_by,
                limit: stmt.limit,
            },
            output_names: names,
            continuous,
        })
    }

    /// Resolve a select list against an input schema (non-aggregate case).
    fn resolve_projections(
        &self,
        items: &[SelectItem],
        schema: &Schema,
    ) -> Result<(Vec<Expr>, Vec<String>, Schema), PlanError> {
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        let mut fields = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for (idx, field) in schema.fields().iter().enumerate() {
                        exprs.push(Expr::col(idx));
                        names.push(field.name.clone());
                        fields.push(field.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    if expr.contains_aggregate() {
                        return Err(PlanError::new(
                            "aggregate expressions require GROUP BY planning",
                        ));
                    }
                    let resolved = resolve_expr(expr, schema)?;
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        AstExpr::Column(c) => c.clone(),
                        _ => format!("col{i}"),
                    });
                    let dtype = match &resolved {
                        Expr::Column(idx) => {
                            schema.field(*idx).map(|f| f.dtype).unwrap_or(DataType::Float)
                        }
                        Expr::Literal(v) => v.data_type(),
                        _ => DataType::Float,
                    };
                    fields.push(Field::new(name.clone(), dtype));
                    names.push(name);
                    exprs.push(resolved);
                }
            }
        }
        Ok((exprs, names, Schema::new(fields)))
    }
}

/// Append an aggregate (deduplicating identical ones); returns its index.
fn push_agg(aggs: &mut Vec<AggExpr>, func: AggFunc, arg: Option<Expr>, name: String) -> usize {
    if let Some(pos) = aggs.iter().position(|a| a.func == func && a.arg == arg) {
        return pos;
    }
    aggs.push(AggExpr { func, arg, name });
    aggs.len() - 1
}

fn default_agg_name(func: AggFunc, arg: &Option<Box<AstExpr>>) -> String {
    match arg {
        Some(a) => match a.as_ref() {
            AstExpr::Column(c) => {
                format!("{}_{}", func.name().to_ascii_lowercase(), c.replace('.', "_"))
            }
            _ => func.name().to_ascii_lowercase(),
        },
        None => "count".to_string(),
    }
}

/// Resolve an expression against a schema (no aggregates allowed).
pub fn resolve_expr(ast: &AstExpr, schema: &Schema) -> Result<Expr, PlanError> {
    match ast {
        AstExpr::Column(name) => schema
            .index_of(name)
            .map(Expr::Column)
            .ok_or_else(|| PlanError::new(format!("unknown column '{name}'"))),
        AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(resolve_expr(left, schema)?),
            right: Box::new(resolve_expr(right, schema)?),
        }),
        AstExpr::Unary { op, expr } => {
            Ok(Expr::Unary { op: *op, expr: Box::new(resolve_expr(expr, schema)?) })
        }
        AstExpr::Like { expr, pattern } => Ok(Expr::Like {
            expr: Box::new(resolve_expr(expr, schema)?),
            pattern: pattern.clone(),
        }),
        AstExpr::Func { name, args } => {
            let func = match name.as_str() {
                "lower" => ScalarFunc::Lower,
                "upper" => ScalarFunc::Upper,
                "length" => ScalarFunc::Length,
                "abs" => ScalarFunc::Abs,
                other => return Err(PlanError::new(format!("unknown function '{other}'"))),
            };
            if args.len() != 1 {
                return Err(PlanError::new(format!("{name} takes exactly one argument")));
            }
            Ok(Expr::Func { func, arg: Box::new(resolve_expr(&args[0], schema)?) })
        }
        AstExpr::Agg { .. } => {
            Err(PlanError::new("aggregate calls are not allowed in this context"))
        }
    }
}

/// Resolve an expression over an *aggregate output* schema: group columns may
/// be referenced by name, aggregate calls map to (possibly newly appended)
/// aggregate columns.
fn resolve_agg_output_expr(
    ast: &AstExpr,
    input_schema: &Schema,
    group_exprs: &[Expr],
    group_names: &[String],
    aggs: &mut Vec<AggExpr>,
) -> Result<Expr, PlanError> {
    match ast {
        AstExpr::Agg { func, arg } => {
            let resolved_arg = match arg {
                Some(a) => Some(resolve_expr(a, input_schema)?),
                None => None,
            };
            let name = default_agg_name(*func, arg);
            let idx = group_exprs.len() + push_agg(aggs, *func, resolved_arg, name);
            Ok(Expr::Column(idx))
        }
        AstExpr::Column(name) => {
            // A group-by column referenced by name.
            if let Some(pos) = group_names.iter().position(|g| {
                g.eq_ignore_ascii_case(name)
                    || g.rsplit('.').next() == name.rsplit('.').next()
            }) {
                return Ok(Expr::Column(pos));
            }
            // An aggregate referenced by its alias.
            if let Some(pos) = aggs.iter().position(|a| a.name.eq_ignore_ascii_case(name)) {
                return Ok(Expr::Column(group_exprs.len() + pos));
            }
            Err(PlanError::new(format!(
                "column '{name}' must be a GROUP BY column or an aggregate alias"
            )))
        }
        AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(resolve_agg_output_expr(left, input_schema, group_exprs, group_names, aggs)?),
            right: Box::new(resolve_agg_output_expr(
                right,
                input_schema,
                group_exprs,
                group_names,
                aggs,
            )?),
        }),
        AstExpr::Unary { op, expr } => Ok(Expr::Unary {
            op: *op,
            expr: Box::new(resolve_agg_output_expr(expr, input_schema, group_exprs, group_names, aggs)?),
        }),
        AstExpr::Like { expr, pattern } => Ok(Expr::Like {
            expr: Box::new(resolve_agg_output_expr(expr, input_schema, group_exprs, group_names, aggs)?),
            pattern: pattern.clone(),
        }),
        AstExpr::Func { .. } => Err(PlanError::new(
            "scalar functions over aggregate outputs are not supported",
        )),
    }
}

fn resolve_order_by(
    stmt: &SelectStmt,
    out_schema: &Schema,
    _unused: Option<()>,
) -> Result<Vec<SortKey>, PlanError> {
    let mut keys = Vec::new();
    for item in &stmt.order_by {
        match &item.expr {
            AstExpr::Column(name) => {
                let idx = out_schema.index_of(name).ok_or_else(|| {
                    PlanError::new(format!("ORDER BY column '{name}' is not in the output"))
                })?;
                keys.push(SortKey { column: idx, desc: item.desc });
            }
            other => {
                return Err(PlanError::new(format!(
                    "ORDER BY only supports output columns here, found {other:?}"
                )))
            }
        }
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;
    use crate::sql::parse_select;
    use crate::value::{DataType, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(TableDef::new(
            "netstats",
            Schema::of(&[
                ("host", DataType::Str),
                ("out_rate", DataType::Float),
                ("in_rate", DataType::Float),
            ]),
            "host",
            Duration::from_secs(60),
        ));
        cat.register(TableDef::new(
            "intrusions",
            Schema::of(&[
                ("host", DataType::Str),
                ("rule_id", DataType::Int),
                ("description", DataType::Str),
                ("hits", DataType::Int),
            ]),
            "host",
            Duration::from_secs(120),
        ));
        cat.register(TableDef::new(
            "files",
            Schema::of(&[("file_id", DataType::Int), ("name", DataType::Str), ("owner", DataType::Str)]),
            "file_id",
            Duration::from_secs(300),
        ));
        cat.register(TableDef::new(
            "keywords",
            Schema::of(&[("keyword", DataType::Str), ("file_id", DataType::Int)]),
            "keyword",
            Duration::from_secs(300),
        ));
        cat
    }

    fn plan(sql: &str) -> PlannedQuery {
        let cat = catalog();
        let stmt = parse_select(sql).unwrap();
        Planner::new(&cat).plan_select(&stmt).unwrap()
    }

    fn plan_err(sql: &str) -> PlanError {
        let cat = catalog();
        let stmt = parse_select(sql).unwrap();
        Planner::new(&cat).plan_select(&stmt).unwrap_err()
    }

    #[test]
    fn simple_select_resolves_columns() {
        let p = plan("SELECT host, out_rate FROM netstats WHERE out_rate > 100");
        match &p.kind {
            QueryKind::Select { table, filter, project, .. } => {
                assert_eq!(table, "netstats");
                assert!(filter.is_some());
                assert_eq!(project, &vec![Expr::col(0), Expr::col(1)]);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(p.output_names, vec!["host", "out_rate"]);
        assert!(p.logical.explain().contains("Scan netstats"));
    }

    #[test]
    fn wildcard_expands_to_all_columns() {
        let p = plan("SELECT * FROM netstats");
        match &p.kind {
            QueryKind::Select { project, .. } => assert_eq!(project.len(), 3),
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(p.output_names, vec!["host", "out_rate", "in_rate"]);
    }

    #[test]
    fn figure1_continuous_sum_plan() {
        let p = plan("SELECT SUM(out_rate) AS total FROM netstats CONTINUOUS EVERY 5 SECONDS");
        let c = p.continuous.unwrap();
        assert_eq!(c.period, Duration::from_secs(5));
        assert_eq!(c.window, Duration::from_secs(5));
        match &p.kind {
            QueryKind::Aggregate { group_exprs, aggs, final_project, .. } => {
                assert!(group_exprs.is_empty());
                assert_eq!(aggs.len(), 1);
                assert_eq!(aggs[0].func, AggFunc::Sum);
                assert_eq!(aggs[0].arg, Some(Expr::col(1)));
                assert_eq!(final_project, &vec![0]);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(p.output_names, vec!["total"]);
    }

    #[test]
    fn table1_top10_plan() {
        let p = plan(
            "SELECT rule_id, description, SUM(hits) AS total FROM intrusions \
             GROUP BY rule_id, description ORDER BY SUM(hits) DESC LIMIT 10",
        );
        match &p.kind {
            QueryKind::Aggregate { group_exprs, aggs, order_by, limit, final_project, .. } => {
                assert_eq!(group_exprs, &vec![Expr::col(1), Expr::col(2)]);
                assert_eq!(aggs.len(), 1);
                assert_eq!(aggs[0].func, AggFunc::Sum);
                // ORDER BY SUM(hits) maps to the aggregate output column 2.
                assert_eq!(order_by, &vec![SortKey { column: 2, desc: true }]);
                assert_eq!(*limit, Some(10));
                assert_eq!(final_project, &vec![0, 1, 2]);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(p.output_names, vec!["rule_id", "description", "total"]);
    }

    #[test]
    fn order_by_alias_also_works() {
        let p = plan(
            "SELECT rule_id, SUM(hits) AS total FROM intrusions GROUP BY rule_id \
             ORDER BY total DESC LIMIT 3",
        );
        match &p.kind {
            QueryKind::Aggregate { order_by, .. } => {
                assert_eq!(order_by, &vec![SortKey { column: 1, desc: true }]);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn having_appends_hidden_aggregate() {
        let p = plan(
            "SELECT host, COUNT(*) AS c FROM intrusions GROUP BY host HAVING SUM(hits) > 100",
        );
        match &p.kind {
            QueryKind::Aggregate { aggs, having, .. } => {
                assert_eq!(aggs.len(), 2, "COUNT(*) plus the hidden SUM(hits)");
                let h = having.as_ref().unwrap();
                // HAVING references the hidden aggregate at output column 2.
                assert!(matches!(
                    h,
                    Expr::Binary { left, .. } if matches!(**left, Expr::Column(2))
                ));
            }
            other => panic!("unexpected kind {other:?}"),
        }
        // Hidden aggregates do not change the client-visible output.
        assert_eq!(p.output_names, vec!["host", "c"]);
    }

    #[test]
    fn join_plan_resolves_keys_and_projection() {
        let p = plan(
            "SELECT f.name, k.keyword FROM files f JOIN keywords k ON f.file_id = k.file_id \
             WHERE k.keyword = 'mp3'",
        );
        match &p.kind {
            QueryKind::Join { left_table, right_table, left_key, right_key, post_filter, project, strategy, .. } => {
                assert_eq!(left_table, "files");
                assert_eq!(right_table, "keywords");
                assert_eq!(left_key, &Expr::col(0));
                assert_eq!(right_key, &Expr::col(1));
                assert!(post_filter.is_some());
                // f.name is column 1 of the left schema; k.keyword is column 0
                // of the right schema = column 3 of the joined schema.
                assert_eq!(project, &vec![Expr::col(1), Expr::col(3)]);
                assert_eq!(*strategy, JoinStrategy::SymmetricHash);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(p.output_names, vec!["f.name", "k.keyword"]);
    }

    #[test]
    fn join_keys_accept_reversed_order() {
        let p = plan("SELECT f.name FROM files f JOIN keywords k ON k.file_id = f.file_id");
        match &p.kind {
            QueryKind::Join { left_key, right_key, .. } => {
                assert_eq!(left_key, &Expr::col(0));
                assert_eq!(right_key, &Expr::col(1));
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn join_strategy_is_configurable() {
        let cat = catalog();
        let stmt = parse_select("SELECT f.name FROM files f JOIN keywords k ON f.file_id = k.file_id").unwrap();
        let p = Planner::with_join_strategy(&cat, JoinStrategy::FetchMatches)
            .plan_select(&stmt)
            .unwrap();
        match p.kind {
            QueryKind::Join { strategy, .. } => assert_eq!(strategy, JoinStrategy::FetchMatches),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(plan_err("SELECT * FROM missing").message.contains("unknown table"));
        assert!(plan_err("SELECT nope FROM netstats").message.contains("unknown column"));
        assert!(plan_err("SELECT host FROM intrusions GROUP BY rule_id")
            .message
            .contains("must appear in GROUP BY"));
        assert!(plan_err("SELECT *, COUNT(*) FROM netstats GROUP BY host")
            .message
            .contains("SELECT *"));
        assert!(plan_err("SELECT host FROM netstats ORDER BY missing").message.contains("ORDER BY"));
        let e = plan_err("SELECT host, SUM(x) FROM netstats GROUP BY host");
        assert!(e.message.contains("unknown column"), "{}", e.message);
        assert!(format!("{e}").contains("planning error"));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let p = plan("SELECT COUNT(*), AVG(out_rate) FROM netstats WHERE out_rate > 0");
        match &p.kind {
            QueryKind::Aggregate { group_exprs, aggs, filter, .. } => {
                assert!(group_exprs.is_empty());
                assert_eq!(aggs.len(), 2);
                assert!(filter.is_some());
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(p.output_names, vec!["count", "avg_out_rate"]);
    }

    #[test]
    fn literal_defaults_order_limit_select() {
        let p = plan("SELECT host FROM netstats ORDER BY host LIMIT 5");
        match &p.kind {
            QueryKind::Select { order_by, limit, .. } => {
                assert_eq!(order_by, &vec![SortKey { column: 0, desc: false }]);
                assert_eq!(*limit, Some(5));
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn duplicate_aggregates_are_shared() {
        let p = plan(
            "SELECT rule_id, SUM(hits) AS a FROM intrusions GROUP BY rule_id ORDER BY SUM(hits) DESC",
        );
        match &p.kind {
            QueryKind::Aggregate { aggs, .. } => assert_eq!(aggs.len(), 1),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn recursive_kind_is_constructible() {
        // Not produced by SQL, but the algebraic interface builds it directly.
        let kind = QueryKind::Recursive {
            edges_table: "link".into(),
            src_col: 0,
            dst_col: 1,
            source: Value::str("n0"),
            max_depth: 4,
        };
        assert_eq!(kind.primary_table(), "link");
    }
}
