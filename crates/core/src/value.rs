//! Runtime values.
//!
//! PIER tuples are vectors of dynamically typed [`Value`]s.  The type system is
//! deliberately small — nulls, booleans, 64-bit integers, 64-bit floats and
//! strings — which covers every relation in the paper's workloads (monitoring
//! readings, intrusion-detection counters, file keywords, overlay links).

use pier_simnet::WireSize;
use std::cmp::Ordering;
use std::fmt;

/// The type of a [`Value`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// The null type (only the `Null` value).
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Null => "NULL",
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
        };
        write!(f, "{s}")
    }
}

/// Canonical float representative shared by [`Value::total_cmp`], `Hash` and
/// [`Value::partition_string`]: every NaN collapses to one bit pattern and
/// `-0.0` folds into `0.0`.  Without this, `-0.0 == 0.0` under `Eq` but the two
/// hash (and DHT-partition) differently, which makes hash-join key unification
/// depend on bucket layout.
fn canonical_f64(f: f64) -> f64 {
    if f.is_nan() {
        f64::NAN
    } else if f == 0.0 {
        0.0
    } else {
        f
    }
}

/// A dynamically typed value.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The value's type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Is this the null value?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness for predicate evaluation (NULL and non-booleans are false).
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Numeric view (integers widen to float); `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(if *b { 1 } else { 0 }),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A canonical string used as a DHT resource id (partitioning key).
    ///
    /// Distinct values map to distinct strings within a type, and the mapping
    /// is stable across nodes, which is what consistent partitioning needs.
    pub fn partition_string(&self) -> String {
        match self {
            Value::Null => "\u{0}null".to_string(),
            Value::Bool(b) => format!("b:{b}"),
            Value::Int(i) => format!("i:{i}"),
            Value::Float(f) => format!("f:{}", canonical_f64(*f).to_bits()),
            Value::Str(s) => format!("s:{s}"),
        }
    }

    /// SQL-style three-valued comparison.  Returns `None` when either side is
    /// NULL or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            // Mixed numerics compare as floats.
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            _ => None,
        }
    }

    /// Total ordering used for sorting / top-k: NULLs first, then booleans,
    /// integers/floats (numerically), then strings.  Unlike [`Value::sql_cmp`]
    /// this never fails, so sorts are well defined on mixed data.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => {
                let fa = canonical_f64(a.as_f64().unwrap_or(f64::NEG_INFINITY));
                let fb = canonical_f64(b.as_f64().unwrap_or(f64::NEG_INFINITY));
                fa.total_cmp(&fb)
            }
        }
    }

    /// SQL equality (NULL is not equal to anything, including NULL).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal && self.data_type() == other.data_type()
            || matches!(
                (self, other),
                (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_))
            ) && self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash must agree with `partition_string`-style identity.
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                canonical_f64(*f).to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl WireSize for Value {
    fn wire_size(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => 4 + s.len(),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_types() {
        assert_eq!(Value::Null.data_type(), DataType::Null);
        assert_eq!(Value::Bool(true).data_type(), DataType::Bool);
        assert_eq!(Value::Int(3).data_type(), DataType::Int);
        assert_eq!(Value::Float(1.5).data_type(), DataType::Float);
        assert_eq!(Value::str("x").data_type(), DataType::Str);
        assert_eq!(format!("{}", DataType::Str), "STRING");
    }

    #[test]
    fn truthiness_and_null() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Int(1).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Int(4).as_i64(), Some(4));
        assert_eq!(Value::Float(2.5).as_i64(), None);
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        assert_eq!(Value::Int(1).as_str(), None);
    }

    #[test]
    fn sql_comparisons() {
        use Ordering::*;
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Less));
        assert_eq!(Value::Float(2.0).sql_cmp(&Value::Int(2)), Some(Equal));
        assert_eq!(Value::str("a").sql_cmp(&Value::str("b")), Some(Less));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::str("1")), None);
        assert!(Value::Int(3).sql_eq(&Value::Float(3.0)));
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn total_ordering_is_total() {
        let mut values = [
            Value::str("zebra"),
            Value::Int(10),
            Value::Null,
            Value::Float(-1.5),
            Value::Bool(true),
            Value::Int(-3),
        ];
        values.sort_by(|a, b| a.total_cmp(b));
        assert!(values[0].is_null());
        assert_eq!(values[1], Value::Bool(true));
        assert_eq!(values[2], Value::Int(-3));
        assert_eq!(values[3], Value::Float(-1.5));
        assert_eq!(values[4], Value::Int(10));
        assert_eq!(values[5], Value::str("zebra"));
    }

    #[test]
    fn equality_and_hash_agree_for_numerics() {
        use std::collections::HashSet;
        assert_eq!(Value::Int(3), Value::Float(3.0));
        let mut set = HashSet::new();
        set.insert(Value::Int(3));
        assert!(set.contains(&Value::Float(3.0)));
        set.insert(Value::str("a"));
        set.insert(Value::Null);
        assert_eq!(set.len(), 3);

        // Signed zero: one equivalence class, one hash bucket, one partition.
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(Value::Float(-0.0), Value::Int(0));
        set.insert(Value::Float(0.0));
        assert!(set.contains(&Value::Float(-0.0)));
        assert_eq!(Value::Float(-0.0).partition_string(), Value::Float(0.0).partition_string());

        // NaN equals itself (any payload) and nothing else.
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, Value::Float(-f64::NAN));
        assert_ne!(nan, Value::Float(5.0));
        set.insert(nan.clone());
        assert!(set.contains(&Value::Float(-f64::NAN)));
    }

    #[test]
    fn partition_strings_distinguish_values() {
        let values = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(1),
            Value::Int(2),
            Value::Float(1.5),
            Value::str("1"),
            Value::str("b:true"),
        ];
        let mut seen = std::collections::HashSet::new();
        for v in &values {
            assert!(seen.insert(v.partition_string()), "collision for {v:?}");
        }
    }

    #[test]
    fn display_formatting() {
        assert_eq!(format!("{}", Value::Null), "NULL");
        assert_eq!(format!("{}", Value::Int(42)), "42");
        assert_eq!(format!("{}", Value::Float(2.0)), "2.0");
        assert_eq!(format!("{}", Value::str("hi")), "hi");
        assert_eq!(format!("{}", Value::Bool(false)), "false");
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::Int(1).wire_size(), 9);
        assert_eq!(Value::str("abc").wire_size(), 8);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("owned".to_string()), Value::str("owned"));
    }
}
