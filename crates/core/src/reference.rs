//! Centralized reference evaluator.
//!
//! Executes a [`LogicalPlan`] against in-memory tables on a single machine.
//! The test suite uses it as ground truth: a distributed PIER run over the
//! same data must produce the same answer (up to row order), which is exactly
//! the paper's implicit correctness claim for in-network execution.

use crate::dataflow::ops::{sort_tuples, GroupAggregator};
use crate::plan::LogicalPlan;
use crate::tuple::Tuple;
use std::collections::HashMap;

/// An in-memory database: table name → rows.
#[derive(Clone, Debug, Default)]
pub struct MemoryDb {
    tables: HashMap<String, Vec<Tuple>>,
}

impl MemoryDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append rows to a table (created on first use).
    pub fn insert(&mut self, table: &str, rows: impl IntoIterator<Item = Tuple>) {
        self.tables.entry(table.to_ascii_lowercase()).or_default().extend(rows);
    }

    /// Rows of a table (empty if absent).
    pub fn rows(&self, table: &str) -> &[Tuple] {
        self.tables.get(&table.to_ascii_lowercase()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Total number of rows across all tables.
    pub fn len(&self) -> usize {
        self.tables.values().map(|v| v.len()).sum()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluate a logical plan.
    pub fn execute(&self, plan: &LogicalPlan) -> Vec<Tuple> {
        match plan {
            LogicalPlan::Scan { table, .. } => self.rows(table).to_vec(),
            LogicalPlan::Filter { input, predicate } => {
                self.execute(input).into_iter().filter(|t| predicate.matches(t)).collect()
            }
            LogicalPlan::Project { input, exprs, .. } => self
                .execute(input)
                .iter()
                .map(|t| Tuple::new(exprs.iter().map(|e| e.eval(t)).collect()))
                .collect(),
            LogicalPlan::Join { left, right, left_key, right_key } => {
                let left_rows = self.execute(left);
                let right_rows = self.execute(right);
                let mut index: HashMap<crate::value::Value, Vec<&Tuple>> = HashMap::new();
                for r in &right_rows {
                    let k = right_key.eval(r);
                    if !k.is_null() {
                        index.entry(k).or_default().push(r);
                    }
                }
                let mut out = Vec::new();
                for l in &left_rows {
                    let k = left_key.eval(l);
                    if k.is_null() {
                        continue;
                    }
                    if let Some(matches) = index.get(&k) {
                        for r in matches {
                            out.push(l.concat(r));
                        }
                    }
                }
                out
            }
            LogicalPlan::MultiJoin { inputs, preds } => self.execute_multijoin(inputs, preds),
            LogicalPlan::Aggregate { input, group_exprs, aggs, .. } => {
                let rows = self.execute(input);
                let mut agg = GroupAggregator::new(group_exprs.clone(), aggs.clone());
                for r in &rows {
                    agg.update(r);
                }
                agg.finalize()
            }
            LogicalPlan::Sort { input, keys } => {
                let mut rows = self.execute(input);
                sort_tuples(&mut rows, keys);
                rows
            }
            LogicalPlan::Limit { input, n } => {
                let mut rows = self.execute(input);
                rows.truncate(*n);
                rows
            }
        }
    }
    /// Evaluate an n-ary equi-join.  Relations are folded in left-to-right
    /// as long as a predicate connects the next one (hash join on the first
    /// connecting predicate, the rest filtered); unconnected relations are
    /// deferred until a predicate links them.  The result columns are
    /// permuted back to declared input order, which is the schema every
    /// parent operator was resolved against.
    fn execute_multijoin(&self, inputs: &[LogicalPlan], preds: &[(usize, usize)]) -> Vec<Tuple> {
        let offsets: Vec<usize> = {
            let mut acc = 0;
            inputs
                .iter()
                .map(|i| {
                    let o = acc;
                    acc += i.schema().arity();
                    o
                })
                .collect()
        };
        let arities: Vec<usize> = inputs.iter().map(|i| i.schema().arity()).collect();
        let input_of = |g: usize| crate::plan::relation_of_column(&offsets, g);

        // `placed_cols[i]` = position of global column i in the accumulated
        // tuple, once its relation has been folded in.
        let total: usize = arities.iter().sum();
        let mut placed_cols: Vec<Option<usize>> = vec![None; total];
        let mut acc_rows = self.execute(&inputs[0]);
        for (c, slot) in placed_cols.iter_mut().enumerate().take(arities[0]) {
            *slot = Some(c);
        }
        let mut placed = vec![0usize];
        let mut width = arities[0];

        while placed.len() < inputs.len() {
            // Next declared relation with a predicate into the placed set
            // (falling back to a cross product only if none connects, which
            // the binder prevents for its own plans).
            let next = (0..inputs.len())
                .find(|i| {
                    !placed.contains(i)
                        && preds.iter().any(|&(a, b)| {
                            (input_of(a) == *i && placed.contains(&input_of(b)))
                                || (input_of(b) == *i && placed.contains(&input_of(a)))
                        })
                })
                .or_else(|| (0..inputs.len()).find(|i| !placed.contains(i)))
                .expect("some relation remains");
            let rel_rows = self.execute(&inputs[next]);
            // Predicates between the accumulated tuple and `next`, rewritten
            // as (accumulated position, local position) pairs.
            let links: Vec<(usize, usize)> = preds
                .iter()
                .filter_map(|&(a, b)| {
                    if input_of(a) == next && placed_cols[b].is_some() {
                        Some((placed_cols[b].expect("checked"), a - offsets[next]))
                    } else if input_of(b) == next && placed_cols[a].is_some() {
                        Some((placed_cols[a].expect("checked"), b - offsets[next]))
                    } else {
                        None
                    }
                })
                .collect();
            let mut out = Vec::new();
            match links.split_first() {
                Some((&(acc_col, rel_col), rest)) => {
                    let mut index: HashMap<crate::value::Value, Vec<&Tuple>> = HashMap::new();
                    for r in &rel_rows {
                        let k = r.get(rel_col).clone();
                        if !k.is_null() {
                            index.entry(k).or_default().push(r);
                        }
                    }
                    for l in &acc_rows {
                        let k = l.get(acc_col);
                        if k.is_null() {
                            continue;
                        }
                        if let Some(matches) = index.get(k) {
                            for r in matches {
                                if rest.iter().all(|&(ac, rc)| l.get(ac).sql_eq(r.get(rc))) {
                                    out.push(l.concat(r));
                                }
                            }
                        }
                    }
                }
                None => {
                    for l in &acc_rows {
                        for r in &rel_rows {
                            out.push(l.concat(r));
                        }
                    }
                }
            }
            for c in 0..arities[next] {
                placed_cols[offsets[next] + c] = Some(width + c);
            }
            width += arities[next];
            placed.push(next);
            acc_rows = out;
        }

        // Permute back to declared column order.
        let perm: Vec<usize> =
            (0..total).map(|g| placed_cols[g].expect("all relations placed")).collect();
        acc_rows.iter().map(|t| t.project(&perm)).collect()
    }
}

/// Compare two result sets ignoring row order (multiset equality).
pub fn same_rows(a: &[Tuple], b: &[Tuple]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut counts: HashMap<String, i64> = HashMap::new();
    for t in a {
        *counts.entry(format!("{t}")).or_insert(0) += 1;
    }
    for t in b {
        let e = counts.entry(format!("{t}")).or_insert(0);
        *e -= 1;
        if *e < 0 {
            return false;
        }
    }
    counts.values().all(|&c| c == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, TableDef};
    use crate::planner::Planner;
    use crate::sql::parse_select;
    use crate::tuple::Schema;
    use crate::value::{DataType, Value};
    use pier_simnet::Duration;

    fn db_and_catalog() -> (MemoryDb, Catalog) {
        let mut cat = Catalog::new();
        cat.register(TableDef::new(
            "emp",
            Schema::of(&[
                ("name", DataType::Str),
                ("dept", DataType::Str),
                ("salary", DataType::Int),
            ]),
            "name",
            Duration::from_secs(60),
        ));
        cat.register(TableDef::new(
            "dept",
            Schema::of(&[("dname", DataType::Str), ("building", DataType::Str)]),
            "dname",
            Duration::from_secs(60),
        ));
        let mut db = MemoryDb::new();
        db.insert(
            "emp",
            vec![
                Tuple::new(vec![Value::str("ann"), Value::str("db"), Value::Int(100)]),
                Tuple::new(vec![Value::str("bob"), Value::str("db"), Value::Int(80)]),
                Tuple::new(vec![Value::str("cat"), Value::str("os"), Value::Int(120)]),
                Tuple::new(vec![Value::str("dan"), Value::str("os"), Value::Int(90)]),
                Tuple::new(vec![Value::str("eve"), Value::str("net"), Value::Int(70)]),
            ],
        );
        db.insert(
            "dept",
            vec![
                Tuple::new(vec![Value::str("db"), Value::str("soda")]),
                Tuple::new(vec![Value::str("os"), Value::str("cory")]),
            ],
        );
        (db, cat)
    }

    fn run(sql: &str) -> Vec<Tuple> {
        let (db, cat) = db_and_catalog();
        let stmt = parse_select(sql).unwrap();
        let planned = Planner::new(&cat).plan_select(&stmt).unwrap();
        db.execute(&planned.logical)
    }

    #[test]
    fn select_filter_project() {
        let out = run("SELECT name FROM emp WHERE salary >= 90 ORDER BY name");
        assert_eq!(
            out,
            vec![
                Tuple::new(vec![Value::str("ann")]),
                Tuple::new(vec![Value::str("cat")]),
                Tuple::new(vec![Value::str("dan")]),
            ]
        );
    }

    #[test]
    fn group_by_aggregate() {
        let out = run(
            "SELECT dept, COUNT(*) AS c, SUM(salary) AS s FROM emp GROUP BY dept ORDER BY dept",
        );
        assert_eq!(
            out,
            vec![
                Tuple::new(vec![Value::str("db"), Value::Int(2), Value::Int(180)]),
                Tuple::new(vec![Value::str("net"), Value::Int(1), Value::Int(70)]),
                Tuple::new(vec![Value::str("os"), Value::Int(2), Value::Int(210)]),
            ]
        );
    }

    #[test]
    fn having_and_top_k() {
        let out = run("SELECT dept, SUM(salary) AS total FROM emp GROUP BY dept \
             HAVING COUNT(*) > 1 ORDER BY total DESC LIMIT 1");
        assert_eq!(out, vec![Tuple::new(vec![Value::str("os"), Value::Int(210)])]);
    }

    #[test]
    fn global_aggregate() {
        let out = run("SELECT COUNT(*), AVG(salary) FROM emp");
        assert_eq!(out, vec![Tuple::new(vec![Value::Int(5), Value::Float(92.0)])]);
    }

    #[test]
    fn join_query() {
        let out = run("SELECT e.name, d.building FROM emp e JOIN dept d ON e.dept = d.dname \
             WHERE e.salary > 85 ORDER BY e.name");
        assert_eq!(
            out,
            vec![
                Tuple::new(vec![Value::str("ann"), Value::str("soda")]),
                Tuple::new(vec![Value::str("cat"), Value::str("cory")]),
                Tuple::new(vec![Value::str("dan"), Value::str("cory")]),
            ]
        );
    }

    #[test]
    fn limit_without_order() {
        let out = run("SELECT name FROM emp LIMIT 2");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn same_rows_is_order_insensitive() {
        let a = vec![Tuple::new(vec![Value::Int(1)]), Tuple::new(vec![Value::Int(2)])];
        let b = vec![Tuple::new(vec![Value::Int(2)]), Tuple::new(vec![Value::Int(1)])];
        let c = vec![Tuple::new(vec![Value::Int(2)]), Tuple::new(vec![Value::Int(2)])];
        assert!(same_rows(&a, &b));
        assert!(!same_rows(&a, &c));
        assert!(!same_rows(&a, &a[..1]));
    }

    #[test]
    fn reference_evaluator_consumes_the_optimized_plan() {
        // `PlannedQuery::logical` is the optimizer's output; check that it
        // really is rewritten (pruned scan) and still evaluates correctly.
        let (db, cat) = db_and_catalog();
        let stmt = parse_select("SELECT name FROM emp WHERE salary >= 90 ORDER BY name").unwrap();
        let planned = Planner::new(&cat).plan_select(&stmt).unwrap();
        assert!(
            planned.rules_applied.contains(&"projection_pruning"),
            "three-column scan with two used columns must be pruned: {:?}",
            planned.rules_applied
        );
        assert_ne!(planned.logical, planned.logical_initial);
        let out = db.execute(&planned.logical);
        assert_eq!(out.len(), 3);
        assert!(same_rows(&out, &db.execute(&planned.logical_initial)));
    }

    #[test]
    fn memory_db_helpers() {
        let (db, _) = db_and_catalog();
        assert_eq!(db.rows("emp").len(), 5);
        assert_eq!(db.rows("missing").len(), 0);
        assert_eq!(db.len(), 7);
        assert!(!db.is_empty());
        assert!(MemoryDb::new().is_empty());
    }
}
