//! Per-query execution traces — the data plane behind `EXPLAIN ANALYZE`.
//!
//! Every [`PierNode`](crate::engine::PierNode) keeps one [`OpTrace`] per
//! installed query, incremented at exactly the points where the node's
//! [`EngineStats`](crate::engine::EngineStats) counters are incremented — but
//! scoped to that query, so the two views reconcile: in a deployment running a
//! single query whose tables were populated with `publish_local`, the
//! network-wide merge of the per-query traces equals the network-wide sum of
//! the engine counters.
//!
//! `EXPLAIN ANALYZE` collects these traces over the DHT: the origin broadcasts
//! a `TraceRequest`, every node answers with a `TraceReport` carrying its
//! [`OpTrace`], and the origin folds the reports with [`OpTrace::merge`] into
//! the network-wide totals rendered by [`render_network_trace`] next to the
//! static [`Explanation`](crate::planner::Explanation).
//!
//! The trace also records the **adaptivity plane**'s actions: every mid-flight
//! re-plan (a join-strategy switch driven by gossiped statistics) is counted in
//! [`OpTrace::replans`] and described in [`OpTrace::switches`].  Windowed
//! continuous aggregates add the **window plane**: windows closed at this
//! node as aggregation root, late partials dropped or patched under the
//! configured [`WindowLatePolicy`](crate::engine::WindowLatePolicy), and
//! `HAVING`-trigger alert tuples published ([`OpTrace::windows_closed`] and
//! friends); `render_network_trace` prints a `windows:` line whenever any of
//! them fired.

use crate::query::QueryKind;
use pier_simnet::WireSize;
use std::collections::BTreeMap;

/// Per-operator execution counters of one query at one node.
///
/// Counter semantics mirror the like-named fields of
/// [`EngineStats`](crate::engine::EngineStats); all counters are
/// *producer-side* (a node counts what it scanned, shipped, probed, or
/// produced — never what it received), so merging the traces of every node
/// counts each event exactly once.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpTrace {
    /// Epoch evaluations this node performed for the query (node-epochs).
    pub epochs_run: u64,
    /// Tuples read by this node's local scans for the query.
    pub tuples_scanned: u64,
    /// Tuples this node rehashed to join sites.
    pub tuples_shipped: u64,
    /// Fetch-Matches DHT probes this node issued.
    pub probes_sent: u64,
    /// Join output rows produced at this node (join site or probing node).
    pub join_matches: u64,
    /// Partial-aggregate messages this node sent toward the root.
    pub partials_sent: u64,
    /// Partial-aggregate messages this node merged in-network.
    pub partials_merged: u64,
    /// Result rows this node shipped toward the origin.
    pub results_sent: u64,
    /// Recursive expansion messages this node sent.
    pub expands_sent: u64,
    /// Wire messages this node initiated on the query's paths (rehashes,
    /// partials, results, Bloom summaries, expansions).
    pub messages_sent: u64,
    /// Batch payloads (each coalescing ≥ 2 tuples) among those messages.
    pub batches_sent: u64,
    /// Application-payload bytes this node handed to the DHT for the query.
    pub bytes_shipped: u64,
    /// Times this node swapped to a re-planned spec at an epoch boundary.
    pub replans: u64,
    /// Human-readable strategy switches, e.g.
    /// `"epoch 4: SymmetricHash -> BloomFilter"`.  Deduplicated on merge
    /// (every node that applied the same switch records the same line).
    pub switches: Vec<String>,
    /// Result rows produced per epoch (producer-side row counts).
    pub epoch_rows: BTreeMap<u64, u64>,
    /// Tuples shipped per join stage (base-table rehashes at stage 0 and
    /// 1-side rehashes at every stage; intermediate tuples count against the
    /// stage that *receives* them).  Sums to [`OpTrace::tuples_shipped`].
    pub stage_shipped: BTreeMap<u8, u64>,
    /// Fetch-Matches probes per join stage.  Sums to
    /// [`OpTrace::probes_sent`].
    pub stage_probes: BTreeMap<u8, u64>,
    /// Join output rows produced per stage (the last stage's rows are the
    /// query's result rows).  Sums to [`OpTrace::join_matches`].
    pub stage_matches: BTreeMap<u8, u64>,
    /// Right-relation tuples tested against a Bloom summary per stage
    /// (stage-0 semi-joins and inner-stage filters alike), counted at the
    /// scan site that ran the filter.
    pub stage_bloom_tested: BTreeMap<u8, u64>,
    /// How many of the tested tuples passed the summary (and were rehashed).
    /// `passed / tested` is the per-stage pass rate `EXPLAIN ANALYZE` shows.
    pub stage_bloom_passed: BTreeMap<u8, u64>,
    /// Rehash wire messages this node sent carrying *right-relation* tuples,
    /// per stage — the traffic inner-stage Bloom filters prune.  Only
    /// counted on per-query send paths (a cross-query piggybacked frame has
    /// no single stage); single-query runs account exactly.
    pub stage_rehash_msgs: BTreeMap<u8, u64>,
    /// Left-side (side-0) tuples that arrived at this node's join sites, per
    /// stage — the *observed* left-input cardinality the planner estimated.
    /// Receiver-side by design (it measures what the join actually saw, not
    /// what was sent); the trace-fed cost model folds these into
    /// [`ObservedStats`](crate::planner::ObservedStats).
    pub stage_left_in: BTreeMap<u8, u64>,
    /// Right-side (side-1) tuples that arrived at this node's join sites (or
    /// matched a Fetch-Matches probe), per stage — the observed right-input
    /// cardinality.
    pub stage_right_in: BTreeMap<u8, u64>,
    /// Inner-stage Bloom hold-down deadlines that expired before a combined
    /// summary arrived, degrading this node to an unfiltered rehash.
    pub bloom_fallbacks: u64,
    /// Payloads of this query that rode in a cross-query shared frame whose
    /// single wire message was charged to another query (the saved sends).
    pub piggybacked_payloads: u64,
    /// Epoch-count windows this node closed and reported as the query's
    /// aggregation root (windowed continuous aggregates).
    pub windows_closed: u64,
    /// Late partial payloads this root discarded because the windows
    /// covering their epoch had already closed (drop policy, or patch past
    /// its retention horizon).
    pub window_late_dropped: u64,
    /// Already-closed windows this root re-opened and re-emitted for late
    /// data (patch policy).
    pub window_late_patched: u64,
    /// Alert tuples this root published into the query's alert namespace
    /// (`HAVING` trigger on a windowed aggregate).
    pub alerts_emitted: u64,
}

impl OpTrace {
    /// Field-wise sum; `switches` are deduplicated, `epoch_rows` added per
    /// epoch.  The origin folds every node's report with this.
    pub fn merge(&mut self, other: &OpTrace) {
        self.epochs_run += other.epochs_run;
        self.tuples_scanned += other.tuples_scanned;
        self.tuples_shipped += other.tuples_shipped;
        self.probes_sent += other.probes_sent;
        self.join_matches += other.join_matches;
        self.partials_sent += other.partials_sent;
        self.partials_merged += other.partials_merged;
        self.results_sent += other.results_sent;
        self.expands_sent += other.expands_sent;
        self.messages_sent += other.messages_sent;
        self.batches_sent += other.batches_sent;
        self.bytes_shipped += other.bytes_shipped;
        self.replans += other.replans;
        for s in &other.switches {
            if !self.switches.contains(s) {
                self.switches.push(s.clone());
            }
        }
        for (&epoch, &rows) in &other.epoch_rows {
            *self.epoch_rows.entry(epoch).or_insert(0) += rows;
        }
        for (&stage, &n) in &other.stage_shipped {
            *self.stage_shipped.entry(stage).or_insert(0) += n;
        }
        for (&stage, &n) in &other.stage_probes {
            *self.stage_probes.entry(stage).or_insert(0) += n;
        }
        for (&stage, &n) in &other.stage_matches {
            *self.stage_matches.entry(stage).or_insert(0) += n;
        }
        for (&stage, &n) in &other.stage_bloom_tested {
            *self.stage_bloom_tested.entry(stage).or_insert(0) += n;
        }
        for (&stage, &n) in &other.stage_bloom_passed {
            *self.stage_bloom_passed.entry(stage).or_insert(0) += n;
        }
        for (&stage, &n) in &other.stage_rehash_msgs {
            *self.stage_rehash_msgs.entry(stage).or_insert(0) += n;
        }
        for (&stage, &n) in &other.stage_left_in {
            *self.stage_left_in.entry(stage).or_insert(0) += n;
        }
        for (&stage, &n) in &other.stage_right_in {
            *self.stage_right_in.entry(stage).or_insert(0) += n;
        }
        self.bloom_fallbacks += other.bloom_fallbacks;
        self.piggybacked_payloads += other.piggybacked_payloads;
        self.windows_closed += other.windows_closed;
        self.window_late_dropped += other.window_late_dropped;
        self.window_late_patched += other.window_late_patched;
        self.alerts_emitted += other.alerts_emitted;
    }

    /// Has this trace recorded any activity at all?
    pub fn is_empty(&self) -> bool {
        *self == OpTrace::default()
    }
}

impl WireSize for OpTrace {
    fn wire_size(&self) -> usize {
        // 19 fixed u64 counters + per-switch strings + per-epoch and
        // per-stage pairs.
        19 * 8
            + self.switches.iter().map(|s| s.len() + 2).sum::<usize>()
            + self.epoch_rows.len() * 16
            + (self.stage_shipped.len()
                + self.stage_probes.len()
                + self.stage_matches.len()
                + self.stage_bloom_tested.len()
                + self.stage_bloom_passed.len()
                + self.stage_rehash_msgs.len()
                + self.stage_left_in.len()
                + self.stage_right_in.len())
                * 9
    }
}

/// Render the network-wide merged trace as the annotated per-operator report
/// `EXPLAIN ANALYZE` prints below the static plan.  `reporters` is the number
/// of nodes whose traces were folded in; `kind` selects which operator lines
/// apply to the query's plan shape.
pub fn render_network_trace(reporters: u64, trace: &OpTrace, kind: &QueryKind) -> String {
    let mut out = String::new();
    out.push_str(&format!("== network-wide execution trace ({reporters} nodes reporting) ==\n"));
    out.push_str(&format!(
        "  epochs evaluated: {} node-epochs\n  scan: {} tuples scanned\n",
        trace.epochs_run, trace.tuples_scanned
    ));
    match kind {
        QueryKind::Join { stages, aggregate, .. } => {
            if stages.len() == 1 {
                out.push_str(&format!(
                    "  join [{:?}]: {} tuples shipped, {} probes, {} matches\n",
                    stages[0].strategy, trace.tuples_shipped, trace.probes_sent, trace.join_matches
                ));
            } else {
                out.push_str(&format!(
                    "  staged join: {} tuples shipped, {} probes, {} matches\n",
                    trace.tuples_shipped, trace.probes_sent, trace.join_matches
                ));
                for (k, s) in stages.iter().enumerate() {
                    let stage = k as u8;
                    let shipped = trace.stage_shipped.get(&stage).copied().unwrap_or(0);
                    let probes = trace.stage_probes.get(&stage).copied().unwrap_or(0);
                    let matches = trace.stage_matches.get(&stage).copied().unwrap_or(0);
                    out.push_str(&format!(
                        "    stage {k} [{:?}] ⋈ '{}': {shipped} shipped, {probes} probes, \
                         {matches} matches\n",
                        s.strategy, s.right_table
                    ));
                    if let Some(&tested) = trace.stage_bloom_tested.get(&stage) {
                        let passed = trace.stage_bloom_passed.get(&stage).copied().unwrap_or(0);
                        let rate =
                            if tested > 0 { 100.0 * passed as f64 / tested as f64 } else { 100.0 };
                        out.push_str(&format!(
                            "      bloom: {passed}/{tested} right tuples passed \
                             ({rate:.1}% pass rate)\n"
                        ));
                    }
                }
            }
            match aggregate {
                Some(agg) if agg.hierarchical => out.push_str(&format!(
                    "  aggregate over the join (hierarchical): {} partials sent, \
                     {} merged in-network\n",
                    trace.partials_sent, trace.partials_merged
                )),
                Some(_) => out.push_str(
                    "  aggregate over the join: raw matched rows streamed to the origin\n",
                ),
                None => {}
            }
        }
        QueryKind::Aggregate { .. } => {
            out.push_str(&format!(
                "  aggregate: {} partials sent, {} merged in-network\n",
                trace.partials_sent, trace.partials_merged
            ));
        }
        QueryKind::Recursive { .. } => {
            out.push_str(&format!("  recurse: {} expansions sent\n", trace.expands_sent));
        }
        QueryKind::Select { .. } => {}
    }
    out.push_str(&format!("  results: {} rows shipped to the origin\n", trace.results_sent));
    out.push_str(&format!(
        "  wire: {} messages, {} batches, {} payload bytes\n",
        trace.messages_sent, trace.batches_sent, trace.bytes_shipped
    ));
    if trace.windows_closed > 0 || trace.window_late_dropped > 0 || trace.window_late_patched > 0 {
        out.push_str(&format!(
            "  windows: {} closed, {} late drops, {} late patches, {} alerts\n",
            trace.windows_closed,
            trace.window_late_dropped,
            trace.window_late_patched,
            trace.alerts_emitted
        ));
    }
    if trace.bloom_fallbacks > 0 {
        out.push_str(&format!(
            "  bloom hold-down fallbacks: {} unfiltered rehashes\n",
            trace.bloom_fallbacks
        ));
    }
    if trace.piggybacked_payloads > 0 {
        out.push_str(&format!(
            "  piggyback: {} payloads rode cross-query shared frames\n",
            trace.piggybacked_payloads
        ));
    }
    if trace.replans > 0 {
        out.push_str(&format!(
            "  re-planning: {} node-switches at epoch boundaries\n",
            trace.replans
        ));
        for s in &trace.switches {
            out.push_str(&format!("    {s}\n"));
        }
    }
    if !trace.epoch_rows.is_empty() {
        let per_epoch: Vec<String> =
            trace.epoch_rows.iter().map(|(e, n)| format!("{e}:{n}")).collect();
        out.push_str(&format!("  rows per epoch: {}\n", per_epoch.join(" ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn sample() -> OpTrace {
        OpTrace {
            epochs_run: 2,
            tuples_scanned: 10,
            tuples_shipped: 4,
            probes_sent: 1,
            join_matches: 3,
            results_sent: 3,
            messages_sent: 5,
            batches_sent: 1,
            bytes_shipped: 128,
            replans: 1,
            switches: vec!["epoch 4: SymmetricHash -> BloomFilter".into()],
            epoch_rows: [(0, 1), (1, 2)].into_iter().collect(),
            ..OpTrace::default()
        }
    }

    #[test]
    fn merge_sums_and_dedups_switches() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.tuples_scanned, 20);
        assert_eq!(a.replans, 2);
        assert_eq!(a.switches.len(), 1, "identical switch lines fold");
        assert_eq!(a.epoch_rows[&1], 4);
        assert!(!a.is_empty());
        assert!(OpTrace::default().is_empty());
    }

    #[test]
    fn wire_size_scales_with_contents() {
        let small = OpTrace::default();
        let big = sample();
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn render_mentions_the_operators() {
        let stage = |table: &str| crate::query::JoinStage {
            right_table: table.into(),
            left_key: Expr::col(0),
            right_key: Expr::col(0),
            right_filter: None,
            post_filter: None,
            left_ship_cols: vec![0],
            right_ship_cols: vec![0],
            out_cols: vec![],
            strategy: crate::query::JoinStrategy::SymmetricHash,
            inner_bloom: false,
            bloom_bits: 0,
            left_scan: None,
            out_to: None,
        };
        let kind = QueryKind::Join {
            left_table: "l".into(),
            left_filter: None,
            stages: vec![stage("r")],
            project: vec![Expr::col(0)],
            aggregate: None,
            order_by: vec![],
            limit: None,
        };
        let text = render_network_trace(7, &sample(), &kind);
        assert!(text.contains("7 nodes reporting"), "{text}");
        assert!(text.contains("tuples scanned"), "{text}");
        assert!(text.contains("join [SymmetricHash]"), "{text}");
        assert!(text.contains("re-planning"), "{text}");
        assert!(text.contains("rows per epoch: 0:1 1:2"), "{text}");

        // Multi-stage joins get a per-stage section.
        let kind = QueryKind::Join {
            left_table: "l".into(),
            left_filter: None,
            stages: vec![stage("r"), stage("s")],
            project: vec![Expr::col(0)],
            aggregate: None,
            order_by: vec![],
            limit: None,
        };
        let mut t = sample();
        t.stage_shipped = [(0u8, 3u64), (1, 1)].into_iter().collect();
        t.stage_matches = [(0u8, 2u64), (1, 1)].into_iter().collect();
        let text = render_network_trace(7, &t, &kind);
        assert!(text.contains("staged join"), "{text}");
        assert!(text.contains("stage 0 [SymmetricHash] ⋈ 'r': 3 shipped"), "{text}");
        assert!(text.contains("stage 1 [SymmetricHash] ⋈ 's': 1 shipped"), "{text}");
    }
}
