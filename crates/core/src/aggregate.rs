//! Aggregate functions and their mergeable partial states.
//!
//! In-network aggregation only works if partial results can be **merged
//! associatively and commutatively**: every node computes a partial state over
//! its local tuples, states are combined pairwise as they flow up the
//! aggregation tree, and the root finalizes the value.  [`AggState`] is that
//! mergeable state; the property tests assert the merge laws hold.

use crate::value::Value;
use pier_simnet::WireSize;
use std::fmt;

/// The aggregate functions PIER supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)` — number of non-null inputs (or rows).
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

impl AggFunc {
    /// Parse a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "avg" => Some(AggFunc::Avg),
            _ => None,
        }
    }

    /// The SQL name of the function.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    /// Fresh (empty) partial state for this function.
    pub fn init(&self) -> AggState {
        match self {
            AggFunc::Count => AggState::Count { count: 0 },
            AggFunc::Sum => AggState::Sum { sum: 0.0, any: false, integral: true },
            AggFunc::Min => AggState::Min { min: None },
            AggFunc::Max => AggState::Max { max: None },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Mergeable partial aggregation state.
#[derive(Clone, Debug, PartialEq)]
pub enum AggState {
    /// Partial state of `COUNT`.
    Count {
        /// Rows (or non-null values) seen.
        count: u64,
    },
    /// Partial state of `SUM`.
    Sum {
        /// Running sum (as f64; exact for the integer ranges we use).
        sum: f64,
        /// Whether any non-null input has been seen (SUM of nothing is NULL).
        any: bool,
        /// Whether every input so far was an integer.
        integral: bool,
    },
    /// Partial state of `MIN`.
    Min {
        /// Smallest value seen.
        min: Option<Value>,
    },
    /// Partial state of `MAX`.
    Max {
        /// Largest value seen.
        max: Option<Value>,
    },
    /// Partial state of `AVG`.
    Avg {
        /// Running sum.
        sum: f64,
        /// Number of non-null inputs.
        count: u64,
    },
}

impl AggState {
    /// Fold one input value into the state.
    pub fn update(&mut self, value: &Value) {
        match self {
            AggState::Count { count } => {
                if !value.is_null() {
                    *count += 1;
                }
            }
            AggState::Sum { sum, any, integral } => {
                if let Some(x) = value.as_f64() {
                    *sum += x;
                    *any = true;
                    if !matches!(value, Value::Int(_)) {
                        *integral = false;
                    }
                }
            }
            AggState::Min { min } => {
                if value.is_null() {
                    return;
                }
                let better = match min {
                    None => true,
                    Some(current) => value.total_cmp(current) == std::cmp::Ordering::Less,
                };
                if better {
                    *min = Some(value.clone());
                }
            }
            AggState::Max { max } => {
                if value.is_null() {
                    return;
                }
                let better = match max {
                    None => true,
                    Some(current) => value.total_cmp(current) == std::cmp::Ordering::Greater,
                };
                if better {
                    *max = Some(value.clone());
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = value.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
        }
    }

    /// Merge another partial state of the same function into this one.
    /// Merging states of different functions is a programming error and panics
    /// in debug builds; in release the other state is ignored.
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count { count: a }, AggState::Count { count: b }) => *a += b,
            (
                AggState::Sum { sum: a, any: aa, integral: ai },
                AggState::Sum { sum: b, any: ba, integral: bi },
            ) => {
                *a += b;
                *aa |= ba;
                *ai &= bi;
            }
            (AggState::Min { min: a }, AggState::Min { min: b }) => {
                if let Some(bv) = b {
                    let better = match a {
                        None => true,
                        Some(av) => bv.total_cmp(av) == std::cmp::Ordering::Less,
                    };
                    if better {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max { max: a }, AggState::Max { max: b }) => {
                if let Some(bv) = b {
                    let better = match a {
                        None => true,
                        Some(av) => bv.total_cmp(av) == std::cmp::Ordering::Greater,
                    };
                    if better {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Avg { sum: a, count: ac }, AggState::Avg { sum: b, count: bc }) => {
                *a += b;
                *ac += bc;
            }
            (mine, other) => {
                debug_assert!(false, "merging mismatched aggregate states {mine:?} / {other:?}");
            }
        }
    }

    /// Produce the final SQL value.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count { count } => Value::Int(*count as i64),
            AggState::Sum { sum, any, integral } => {
                if !any {
                    Value::Null
                } else if *integral && sum.abs() < 9.0e15 {
                    Value::Int(*sum as i64)
                } else {
                    Value::Float(*sum)
                }
            }
            AggState::Min { min } => min.clone().unwrap_or(Value::Null),
            AggState::Max { max } => max.clone().unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
        }
    }

    /// Number of underlying input rows this state has absorbed, where that is
    /// meaningful (used by benchmarks to reason about fan-in).
    pub fn input_count(&self) -> Option<u64> {
        match self {
            AggState::Count { count } => Some(*count),
            AggState::Avg { count, .. } => Some(*count),
            _ => None,
        }
    }
}

impl WireSize for AggState {
    fn wire_size(&self) -> usize {
        1 + match self {
            AggState::Count { .. } => 8,
            AggState::Sum { .. } => 10,
            AggState::Min { min: v } | AggState::Max { max: v } => {
                1 + v.as_ref().map(|v| v.wire_size()).unwrap_or(0)
            }
            AggState::Avg { .. } => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, values: &[Value]) -> Value {
        let mut state = func.init();
        for v in values {
            state.update(v);
        }
        state.finalize()
    }

    #[test]
    fn from_name_round_trips() {
        for f in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
            assert_eq!(AggFunc::from_name(&f.name().to_lowercase()), Some(f));
        }
        assert_eq!(AggFunc::from_name("median"), None);
        assert_eq!(format!("{}", AggFunc::Sum), "SUM");
    }

    #[test]
    fn count_ignores_nulls() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(run(AggFunc::Count, &vals), Value::Int(2));
        assert_eq!(run(AggFunc::Count, &[]), Value::Int(0));
    }

    #[test]
    fn sum_int_and_float() {
        assert_eq!(run(AggFunc::Sum, &[Value::Int(1), Value::Int(2)]), Value::Int(3));
        assert_eq!(run(AggFunc::Sum, &[Value::Int(1), Value::Float(0.5)]), Value::Float(1.5));
        assert_eq!(run(AggFunc::Sum, &[Value::Null]), Value::Null);
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
    }

    #[test]
    fn min_max() {
        let vals = vec![Value::Int(5), Value::Int(-2), Value::Null, Value::Int(9)];
        assert_eq!(run(AggFunc::Min, &vals), Value::Int(-2));
        assert_eq!(run(AggFunc::Max, &vals), Value::Int(9));
        assert_eq!(run(AggFunc::Min, &[Value::Null]), Value::Null);
        let strs = vec![Value::str("pear"), Value::str("apple")];
        assert_eq!(run(AggFunc::Min, &strs), Value::str("apple"));
        assert_eq!(run(AggFunc::Max, &strs), Value::str("pear"));
    }

    #[test]
    fn avg() {
        let vals = vec![Value::Int(2), Value::Int(4), Value::Null];
        assert_eq!(run(AggFunc::Avg, &vals), Value::Float(3.0));
        assert_eq!(run(AggFunc::Avg, &[]), Value::Null);
    }

    #[test]
    fn merge_equals_single_pass() {
        // Split the input arbitrarily, aggregate the pieces, merge: the result
        // must equal aggregating everything in one pass.
        let values: Vec<Value> = (0..100).map(|i| Value::Int(i * 3 - 50)).collect();
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg] {
            let whole = run(func, &values);
            for split in [1usize, 7, 33, 99] {
                let (left, right) = values.split_at(split);
                let mut a = func.init();
                for v in left {
                    a.update(v);
                }
                let mut b = func.init();
                for v in right {
                    b.update(v);
                }
                a.merge(&b);
                assert_eq!(a.finalize(), whole, "{func} split at {split}");
            }
        }
    }

    #[test]
    fn merge_is_commutative() {
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg] {
            let mut a = func.init();
            let mut b = func.init();
            for i in 0..10 {
                a.update(&Value::Int(i));
            }
            for i in 100..120 {
                b.update(&Value::Int(i));
            }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab.finalize(), ba.finalize(), "{func}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg] {
            let mut a = func.init();
            for i in 0..5 {
                a.update(&Value::Int(i));
            }
            let before = a.finalize();
            a.merge(&func.init());
            assert_eq!(a.finalize(), before, "{func}");
        }
    }

    #[test]
    fn input_count() {
        let mut c = AggFunc::Count.init();
        c.update(&Value::Int(1));
        assert_eq!(c.input_count(), Some(1));
        let mut a = AggFunc::Avg.init();
        a.update(&Value::Int(1));
        a.update(&Value::Int(2));
        assert_eq!(a.input_count(), Some(2));
        assert_eq!(AggFunc::Sum.init().input_count(), None);
    }

    #[test]
    fn wire_size_positive() {
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg] {
            let mut s = func.init();
            s.update(&Value::Int(5));
            assert!(s.wire_size() > 0);
        }
    }
}
