//! Automatic statistics — gossiped per-table cardinality summaries.
//!
//! PIER has no central statistics authority, and nobody hand-installs
//! `ANALYZE` output on a planetary deployment.  Instead, every node
//! periodically summarizes the live soft state it stores (tuples and distinct
//! partitioning keys per table, read straight from the DHT store so TTL
//! expiry is accounted for) and **gossips** the summaries: each node pushes
//! its entire epoch-stamped view to a few ring neighbours, receivers keep the
//! newest entry per node, and the per-table totals — the sum over all known
//! nodes, exact when every node is known because base tuples are partitioned
//! across the ring — are folded into the local
//! [`Catalog::set_stats`](crate::catalog::Catalog::set_stats).
//!
//! Updating the catalog bumps [`Catalog::version`](crate::catalog::Catalog::
//! version), which invalidates the per-node plan cache *and* arms the engine's
//! mid-flight re-planner: a live continuous query whose cost ranking flips
//! under the new statistics is re-planned at the next epoch boundary.  To keep
//! the version (and therefore the plan cache) from churning on every gossip
//! round, the catalog is only touched when an estimate moves by more than
//! [`STATS_REL_THRESHOLD`].
//!
//! Entries **expire**: every absorbed entry is stamped with the local time
//! it was last *refreshed* (a strictly newer sequence number arrived), and
//! [`GossipView::expire`] evicts entries stale for longer than a TTL — so a
//! permanently departed node's last summary stops inflating the totals
//! after `PierConfig::stats_ttl_intervals` missed gossip rounds.  Evicted
//! nodes leave a tombstone holding their last sequence number; peers keep
//! re-gossiping the stale entry, and only a strictly fresher summary (a
//! genuine restart — sequence numbers are seeded from virtual time) may
//! re-enter the view, so expired entries cannot flap back in.

use crate::catalog::{Catalog, TableStats};
use pier_simnet::{NodeAddr, WireSize};
use std::collections::HashMap;

/// Relative change in an estimate below which the catalog is left untouched
/// (avoids plan-cache invalidation storms while gossip converges).
pub const STATS_REL_THRESHOLD: f64 = 0.1;

/// One table's local summary at one node: live tuples stored here and the
/// number of distinct live partitioning-key values stored here.
#[derive(Clone, Debug, PartialEq)]
pub struct TableSummary {
    /// Table (namespace) name.
    pub table: String,
    /// Live tuples this node stores for the table.
    pub rows: u64,
    /// Distinct live partitioning keys this node stores for the table.
    pub distinct_keys: u64,
}

impl WireSize for TableSummary {
    fn wire_size(&self) -> usize {
        self.table.len() + 2 + 16
    }
}

/// One node's epoch-stamped statistics entry, as it travels in gossip
/// messages.  `seq` increases every time the node re-summarizes; receivers
/// keep the highest `seq` per node.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeStatsEntry {
    /// Which node measured these summaries.
    pub node: NodeAddr,
    /// The node's summary sequence number (anti-entropy freshness).
    pub seq: u64,
    /// Per-table local summaries.
    pub tables: Vec<TableSummary>,
}

impl WireSize for NodeStatsEntry {
    fn wire_size(&self) -> usize {
        4 + 8 + self.tables.iter().map(|t| t.wire_size()).sum::<usize>()
    }
}

/// A node's view of the whole network's statistics: the newest
/// [`NodeStatsEntry`] it has seen from every node (including itself), each
/// stamped with the local virtual time it was last refreshed.
#[derive(Clone, Debug, Default)]
pub struct GossipView {
    /// Newest entry per node plus the local time (µs) a strictly fresher
    /// sequence number last arrived.
    entries: HashMap<NodeAddr, (NodeStatsEntry, u64)>,
    /// Expired nodes and the highest sequence number seen from them.
    /// Re-gossiped stale copies of an evicted entry are rejected; only a
    /// strictly fresher summary (a restarted node) re-enters the view.
    tombstones: HashMap<NodeAddr, u64>,
}

impl GossipView {
    /// An empty view.
    pub fn new() -> Self {
        GossipView::default()
    }

    /// Replace this node's own entry (refreshed at local time `now_micros`).
    pub fn update_self(
        &mut self,
        node: NodeAddr,
        seq: u64,
        tables: Vec<TableSummary>,
        now_micros: u64,
    ) {
        self.tombstones.remove(&node);
        self.entries.insert(node, (NodeStatsEntry { node, seq, tables }, now_micros));
    }

    /// Fold received entries in, keeping the newest per node.  Returns `true`
    /// if anything in the view changed.  Entries whose node was expired are
    /// only accepted with a strictly fresher sequence number than the
    /// tombstone records.
    pub fn absorb(&mut self, entries: Vec<NodeStatsEntry>, now_micros: u64) -> bool {
        let mut changed = false;
        for entry in entries {
            if let Some(&dead_seq) = self.tombstones.get(&entry.node) {
                if entry.seq <= dead_seq {
                    continue;
                }
                self.tombstones.remove(&entry.node);
            }
            match self.entries.get(&entry.node) {
                Some((known, _)) if known.seq >= entry.seq => {}
                _ => {
                    self.entries.insert(entry.node, (entry, now_micros));
                    changed = true;
                }
            }
        }
        changed
    }

    /// Evict entries not refreshed for `ttl_micros` (a `ttl_micros` of 0
    /// disables expiry).  Evicted nodes leave tombstones.  Returns how many
    /// entries were evicted.
    pub fn expire(&mut self, now_micros: u64, ttl_micros: u64) -> usize {
        if ttl_micros == 0 {
            return 0;
        }
        let dead: Vec<NodeAddr> = self
            .entries
            .iter()
            .filter(|(_, (_, seen))| now_micros.saturating_sub(*seen) > ttl_micros)
            .map(|(&node, _)| node)
            .collect();
        for node in &dead {
            if let Some((entry, _)) = self.entries.remove(node) {
                self.tombstones.insert(*node, entry.seq);
            }
        }
        dead.len()
    }

    /// The full view, ready to push to a gossip peer (deterministic order).
    pub fn wire_entries(&self) -> Vec<NodeStatsEntry> {
        let mut entries: Vec<NodeStatsEntry> =
            self.entries.values().map(|(e, _)| e.clone()).collect();
        entries.sort_by_key(|e| e.node.0);
        entries
    }

    /// How many nodes this view has heard from.
    pub fn nodes_known(&self) -> usize {
        self.entries.len()
    }

    /// Network-wide per-table totals: the sum of every known node's local
    /// summary.  Base tuples live at exactly one responsible node, so the sum
    /// converges to the true network-wide cardinality (and the distinct-key
    /// sum to the true key count, keys being partitioned across the ring).
    pub fn totals(&self) -> Vec<TableSummary> {
        let mut by_table: HashMap<String, (u64, u64)> = HashMap::new();
        for (entry, _) in self.entries.values() {
            for t in &entry.tables {
                let e = by_table.entry(t.table.clone()).or_insert((0, 0));
                e.0 += t.rows;
                e.1 += t.distinct_keys;
            }
        }
        let mut totals: Vec<TableSummary> = by_table
            .into_iter()
            .map(|(table, (rows, distinct_keys))| TableSummary { table, rows, distinct_keys })
            .collect();
        totals.sort_by(|a, b| a.table.cmp(&b.table));
        totals
    }
}

/// Fold network-wide totals into a catalog, touching
/// [`Catalog::set_stats`] (and therefore the catalog version) only for tables
/// whose estimate moved by more than [`STATS_REL_THRESHOLD`] relative to the
/// recorded one.  Returns the number of tables updated.
pub fn apply_totals(catalog: &mut Catalog, totals: &[TableSummary]) -> usize {
    let mut updated = 0;
    for t in totals {
        if !catalog.contains(&t.table) {
            continue;
        }
        let fresh = TableStats::with_rows(t.rows).distinct_keys(t.distinct_keys.max(1));
        let stale = match catalog.stats(&t.table) {
            None => true,
            Some(cur) => {
                rel_change(cur.rows, fresh.rows) > STATS_REL_THRESHOLD
                    || rel_change(cur.distinct_keys.unwrap_or(0), t.distinct_keys.max(1))
                        > STATS_REL_THRESHOLD
            }
        };
        if stale {
            catalog.set_stats(&t.table, fresh);
            updated += 1;
        }
    }
    updated
}

fn rel_change(old: u64, new: u64) -> f64 {
    let old = old as f64;
    let new = new as f64;
    (new - old).abs() / old.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;
    use crate::tuple::Schema;
    use crate::value::DataType;
    use pier_simnet::Duration;

    fn entry(node: u32, seq: u64, rows: u64) -> NodeStatsEntry {
        NodeStatsEntry {
            node: NodeAddr(node),
            seq,
            tables: vec![TableSummary { table: "t".into(), rows, distinct_keys: rows / 2 }],
        }
    }

    #[test]
    fn absorb_keeps_newest_per_node() {
        let mut view = GossipView::new();
        assert!(view.absorb(vec![entry(1, 1, 10), entry(2, 1, 20)], 0));
        assert!(!view.absorb(vec![entry(1, 1, 99)], 1), "stale seq is ignored");
        assert!(view.absorb(vec![entry(1, 2, 30)], 2));
        assert_eq!(view.nodes_known(), 2);
        let totals = view.totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].rows, 50);
        assert_eq!(totals[0].distinct_keys, 25);
    }

    #[test]
    fn wire_entries_are_deterministic() {
        let mut view = GossipView::new();
        view.absorb(vec![entry(5, 1, 1), entry(2, 1, 1), entry(9, 1, 1)], 0);
        let nodes: Vec<u32> = view.wire_entries().iter().map(|e| e.node.0).collect();
        assert_eq!(nodes, vec![2, 5, 9]);
    }

    #[test]
    fn expiry_evicts_silent_nodes_and_tombstones_block_stale_reentry() {
        let mut view = GossipView::new();
        view.update_self(NodeAddr(0), 5, vec![], 0);
        view.absorb(vec![entry(1, 10, 40)], 0);
        // Node 1 keeps being re-gossiped at the same seq: not a refresh.
        assert!(!view.absorb(vec![entry(1, 10, 40)], 500));
        assert_eq!(view.expire(400, 1_000), 0, "within TTL nothing expires");
        // Our own entry refreshes every round; node 1 has gone silent.
        view.update_self(NodeAddr(0), 6, vec![], 1_500);
        assert_eq!(view.expire(2_000, 1_000), 1, "node 1 missed its refreshes");
        assert_eq!(view.nodes_known(), 1, "only our own entry remains");
        assert_eq!(view.totals().first().map(|t| t.rows), None);

        // A re-gossiped stale copy must NOT resurrect the entry…
        assert!(!view.absorb(vec![entry(1, 10, 40)], 2_100));
        assert_eq!(view.nodes_known(), 1);
        // …but a restarted node 1 (strictly fresher seq) re-enters.
        assert!(view.absorb(vec![entry(1, 11, 7)], 2_200));
        assert_eq!(view.nodes_known(), 2);
        assert_eq!(view.totals()[0].rows, 7);

        // TTL 0 disables expiry entirely.
        assert_eq!(view.expire(u64::MAX, 0), 0);
        assert_eq!(view.nodes_known(), 2);
    }

    #[test]
    fn apply_totals_respects_threshold() {
        let mut cat = Catalog::new();
        cat.register(TableDef::new(
            "t",
            Schema::of(&[("a", DataType::Int)]),
            "a",
            Duration::from_secs(60),
        ));
        let totals = vec![TableSummary { table: "t".into(), rows: 100, distinct_keys: 50 }];
        assert_eq!(apply_totals(&mut cat, &totals), 1, "no prior stats: always install");
        let v1 = cat.version();

        // Within the threshold: untouched, version stable.
        let close = vec![TableSummary { table: "t".into(), rows: 105, distinct_keys: 52 }];
        assert_eq!(apply_totals(&mut cat, &close), 0);
        assert_eq!(cat.version(), v1);

        // Beyond the threshold: updated, version bumped.
        let far = vec![TableSummary { table: "t".into(), rows: 200, distinct_keys: 50 }];
        assert_eq!(apply_totals(&mut cat, &far), 1);
        assert!(cat.version() > v1);
        assert_eq!(cat.stats("t").unwrap().rows, 200);

        // Unknown tables are skipped.
        let other = vec![TableSummary { table: "nope".into(), rows: 1, distinct_keys: 1 }];
        assert_eq!(apply_totals(&mut cat, &other), 0);
    }

    #[test]
    fn wire_sizes_scale() {
        let e = entry(1, 1, 10);
        assert!(e.wire_size() > 12);
        let mut big = e.clone();
        big.tables.push(TableSummary { table: "longer_name".into(), rows: 1, distinct_keys: 1 });
        assert!(big.wire_size() > e.wire_size());
    }
}
