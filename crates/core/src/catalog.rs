//! Table catalog.
//!
//! PIER has no central authority; a "table" is just an agreed-upon namespace
//! in the DHT plus a schema.  The catalog records that agreement locally on
//! each node: which namespaces exist, their schemas, which column partitions
//! the relation across the ring (the DHT resource id), and the soft-state TTL
//! its tuples are published with.

use crate::tuple::{Schema, Tuple};
use crate::value::Value;
use pier_simnet::Duration;
use std::collections::BTreeMap;

/// Definition of one relation.
#[derive(Clone, Debug, PartialEq)]
pub struct TableDef {
    /// Relation name; doubles as the DHT namespace.
    pub name: String,
    /// Column names and types.
    pub schema: Schema,
    /// Index of the column whose value partitions tuples across the DHT
    /// (PIER's "resource id").
    pub partition_column: usize,
    /// TTL tuples of this table are published with (soft state).
    pub ttl: Duration,
}

impl TableDef {
    /// Create a table definition.  `partition_column` defaults to column 0
    /// when the named column cannot be found.
    pub fn new(name: impl Into<String>, schema: Schema, partition_by: &str, ttl: Duration) -> Self {
        let partition_column = schema.index_of(partition_by).unwrap_or(0);
        TableDef { name: name.into().to_ascii_lowercase(), schema, partition_column, ttl }
    }

    /// The partitioning value ("resource id") of a tuple of this table.
    pub fn partition_value(&self, tuple: &Tuple) -> Value {
        tuple.get(self.partition_column).clone()
    }

    /// The DHT resource string for a tuple of this table.
    pub fn resource_of(&self, tuple: &Tuple) -> String {
        self.partition_value(tuple).partition_string()
    }
}

/// Optimizer statistics for one relation: cardinality hints the physical
/// planner uses to cost distributed join strategies.  PIER has no central
/// statistics authority, so these are per-node *hints*, not exact figures —
/// the planner treats them accordingly.  They can be installed by hand
/// ([`Catalog::set_stats`]) or — with `PierConfig::auto_stats` on — arrive
/// automatically via the statistics gossip in [`crate::stats`].
///
/// # Example
///
/// ```
/// use pier_core::TableStats;
///
/// let stats = TableStats::with_rows(50_000).distinct_keys(1_000);
/// assert_eq!(stats.rows, 50_000);
/// assert_eq!(stats.distinct_keys, Some(1_000));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableStats {
    /// Estimated number of live tuples across the whole ring.
    pub rows: u64,
    /// Estimated number of distinct partitioning-key values (`None` = unknown,
    /// assumed to be on the order of `rows`).
    pub distinct_keys: Option<u64>,
}

impl TableStats {
    /// Stats carrying only a row-count estimate.
    pub fn with_rows(rows: u64) -> Self {
        TableStats { rows, distinct_keys: None }
    }

    /// Add a distinct-partitioning-key estimate.
    pub fn distinct_keys(mut self, keys: u64) -> Self {
        self.distinct_keys = Some(keys);
        self
    }
}

/// A per-node collection of table definitions.
///
/// # Example
///
/// ```
/// use pier_core::{Catalog, TableDef, TableStats};
/// use pier_core::tuple::Schema;
/// use pier_core::value::DataType;
/// use pier_simnet::Duration;
///
/// let mut catalog = Catalog::new();
/// catalog.register(TableDef::new(
///     "netstats",
///     Schema::of(&[("host", DataType::Str), ("out_rate", DataType::Float)]),
///     "host",
///     Duration::from_secs(60),
/// ));
/// assert!(catalog.contains("NetStats")); // names are case-insensitive
///
/// // Every mutation bumps the version; plan caches key on it, and the
/// // engine's mid-flight re-planner re-costs live queries when it moves.
/// let before = catalog.version();
/// catalog.set_stats("netstats", TableStats::with_rows(10_000).distinct_keys(300));
/// assert!(catalog.version() > before);
/// assert_eq!(catalog.stats("netstats").unwrap().rows, 10_000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableDef>,
    stats: BTreeMap<String, TableStats>,
    /// Monotonic counter bumped by every mutation; plan caches key on it so
    /// any definition or statistics change invalidates cached plans.
    version: u64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a table definition.
    pub fn register(&mut self, def: TableDef) {
        self.version += 1;
        self.tables.insert(def.name.clone(), def);
    }

    /// Remove a table definition (and its statistics).  Returns true if it
    /// existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        self.version += 1;
        self.stats.remove(&key);
        self.tables.remove(&key).is_some()
    }

    /// Record (or replace) cardinality statistics for a table.  Statistics
    /// may be set before or after the table definition is registered.
    pub fn set_stats(&mut self, name: &str, stats: TableStats) {
        self.version += 1;
        self.stats.insert(name.to_ascii_lowercase(), stats);
    }

    /// The catalog's mutation counter.  Two calls returning the same value
    /// bracket a window in which no definition or statistic changed, so a
    /// query plan produced inside the window is still valid (plan caches key
    /// on `(SQL, version)`).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Cardinality statistics for a table, if any have been recorded.
    pub fn stats(&self, name: &str) -> Option<TableStats> {
        self.stats.get(&name.to_ascii_lowercase()).copied()
    }

    /// Look up a table by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Option<&TableDef> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Does the table exist?
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn netstats() -> TableDef {
        TableDef::new(
            "NetStats",
            Schema::of(&[
                ("host", DataType::Str),
                ("out_rate", DataType::Float),
                ("in_rate", DataType::Float),
            ]),
            "host",
            Duration::from_secs(60),
        )
    }

    #[test]
    fn table_def_partitioning() {
        let def = netstats();
        assert_eq!(def.name, "netstats");
        assert_eq!(def.partition_column, 0);
        let t = Tuple::new(vec![Value::str("host-7"), Value::Float(10.0), Value::Float(2.0)]);
        assert_eq!(def.partition_value(&t), Value::str("host-7"));
        assert_eq!(def.resource_of(&t), "s:host-7");
    }

    #[test]
    fn unknown_partition_column_falls_back_to_zero() {
        let def = TableDef::new(
            "t",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
            "zzz",
            Duration::from_secs(1),
        );
        assert_eq!(def.partition_column, 0);
    }

    #[test]
    fn catalog_register_lookup_drop() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        cat.register(netstats());
        assert_eq!(cat.len(), 1);
        assert!(cat.contains("netstats"));
        assert!(cat.contains("NETSTATS"));
        assert!(cat.get("netstats").is_some());
        assert_eq!(cat.table_names(), vec!["netstats"]);
        // Re-registering replaces.
        let mut replacement = netstats();
        replacement.ttl = Duration::from_secs(5);
        cat.register(replacement);
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get("netstats").unwrap().ttl, Duration::from_secs(5));
        assert!(cat.drop_table("netstats"));
        assert!(!cat.drop_table("netstats"));
        assert!(cat.is_empty());
    }

    #[test]
    fn stats_are_case_insensitive_and_dropped_with_table() {
        let mut cat = Catalog::new();
        cat.register(netstats());
        assert_eq!(cat.stats("netstats"), None);
        cat.set_stats("NetStats", TableStats::with_rows(1_000).distinct_keys(300));
        let s = cat.stats("NETSTATS").unwrap();
        assert_eq!(s.rows, 1_000);
        assert_eq!(s.distinct_keys, Some(300));
        cat.drop_table("netstats");
        assert_eq!(cat.stats("netstats"), None);
    }
}
