//! Stage 1 — the binder.
//!
//! Resolves every name in a parsed [`SelectStmt`] against the [`Catalog`]:
//! tables become schemas, column names become tuple positions, aggregate
//! calls become [`AggExpr`] slots, and the select list / `ORDER BY` /
//! `HAVING` are checked for shape errors (ungrouped columns, `*` mixed with
//! aggregation, …).  The output is a fully typed [`BoundSelect`] with **no
//! remaining strings to resolve** — the later stages work purely on
//! positions, which keeps the optimizer and the physical planner free of
//! name-lookup concerns.

use crate::aggregate::AggFunc;
use crate::catalog::Catalog;
use crate::expr::{Expr, ScalarFunc};
use crate::plan::{AggExpr, SortKey};
use crate::query::{ContinuousSpec, WindowSpec};
use crate::sql::{AstExpr, SelectItem, SelectStmt};
use crate::tuple::{Field, Schema};
use crate::value::DataType;
use pier_simnet::Duration;

use super::PlanError;

/// A base relation with its (possibly alias-qualified) schema.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundTable {
    /// Catalog / DHT namespace name.
    pub name: String,
    /// Schema, qualified with the alias when the query used one.
    pub schema: Schema,
}

/// One resolved equi-join predicate between two bound relations: an edge of
/// the query's predicate graph.  Column indexes are *local* to each
/// relation's schema; `left_rel < right_rel` canonically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EquiPred {
    /// Index of the first relation in [`BoundSelect::relations`].
    pub left_rel: usize,
    /// Column within the first relation's schema.
    pub left_col: usize,
    /// Index of the second relation.
    pub right_rel: usize,
    /// Column within the second relation's schema.
    pub right_col: usize,
}

impl EquiPred {
    /// The predicate's column pair as global indexes over the concatenated
    /// schema, given per-relation offsets.
    pub fn global(&self, offsets: &[usize]) -> (usize, usize) {
        (offsets[self.left_rel] + self.left_col, offsets[self.right_rel] + self.right_col)
    }

    /// The column this predicate contributes on relation `rel`, if any.
    pub fn col_on(&self, rel: usize) -> Option<usize> {
        if self.left_rel == rel {
            Some(self.left_col)
        } else if self.right_rel == rel {
            Some(self.right_col)
        } else {
            None
        }
    }

    /// Does this predicate connect relation `rel` to any relation in `set`?
    pub fn connects(&self, rel: usize, set: &[usize]) -> bool {
        (self.left_rel == rel && set.contains(&self.right_rel))
            || (self.right_rel == rel && set.contains(&self.left_rel))
    }
}

/// Resolved grouped (or global) aggregation.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundAggregate {
    /// Grouping expressions over the input schema.
    pub group_exprs: Vec<Expr>,
    /// Aggregates over the input schema (select-list plus hidden ones
    /// appended for `HAVING` / `ORDER BY`).
    pub aggs: Vec<AggExpr>,
    /// `HAVING` predicate over the aggregate output (groups ++ aggs).
    pub having: Option<Expr>,
    /// Output schema of the aggregate operator: group columns then
    /// aggregate columns.
    pub schema: Schema,
    /// Final projection over the aggregate output mapping to the client's
    /// select-list order.
    pub final_project: Vec<usize>,
    /// Epoch-count window (`WINDOW TUMBLING … / SLIDING …`) of a windowed
    /// continuous aggregate.
    pub window: Option<WindowSpec>,
}

/// A fully resolved `SELECT`: the binder's output and the input to the
/// logical planner.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundSelect {
    /// All bound relations in declared order (`FROM` list, then each
    /// chained `JOIN`).  Exactly one for non-join statements.
    pub relations: Vec<BoundTable>,
    /// The equi-join predicate graph over `relations` (empty for
    /// single-relation statements).  Every relation is connected to the rest
    /// through these edges — the binder rejects cross products.
    pub join_preds: Vec<EquiPred>,
    /// `WHERE` predicate over the scan schema (the concatenated schema, in
    /// `relations` order, for joins), with equi-join conjuncts already
    /// extracted into `join_preds`.
    pub filter: Option<Expr>,
    /// Aggregation, when the statement groups or calls aggregate functions.
    pub aggregate: Option<BoundAggregate>,
    /// Select-list expressions over the input schema (non-aggregate case).
    pub projections: Vec<Expr>,
    /// Schema of `projections` (non-aggregate case; for aggregates this is
    /// the final projected schema).
    pub project_schema: Schema,
    /// Client-visible output column names.
    pub output_names: Vec<String>,
    /// Sort keys.  For plain selects and joins they index the projected
    /// output; for aggregates they index the aggregate output schema.
    pub order_by: Vec<SortKey>,
    /// Row limit.
    pub limit: Option<usize>,
    /// Continuous-query settings.
    pub continuous: Option<ContinuousSpec>,
}

impl BoundSelect {
    /// Is this an aggregation query?
    pub fn is_aggregate(&self) -> bool {
        self.aggregate.is_some()
    }

    /// Is this a join (more than one relation)?
    pub fn is_join(&self) -> bool {
        self.relations.len() > 1
    }

    /// The primary (first `FROM`) relation.
    pub fn primary(&self) -> &BoundTable {
        &self.relations[0]
    }

    /// Per-relation column offsets within the concatenated schema, plus the
    /// total arity as a final sentinel entry.
    pub fn offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.relations.len() + 1);
        let mut acc = 0;
        for rel in &self.relations {
            offsets.push(acc);
            acc += rel.schema.arity();
        }
        offsets.push(acc);
        offsets
    }

    /// One-line-per-table rendering for `EXPLAIN`.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for t in &self.relations {
            let cols: Vec<String> =
                t.schema.fields().iter().map(|f| format!("{}:{:?}", f.name, f.dtype)).collect();
            out.push_str(&format!("table {} ({})\n", t.name, cols.join(", ")));
        }
        for p in &self.join_preds {
            let col = |rel: usize, c: usize| -> String {
                self.relations[rel]
                    .schema
                    .field(c)
                    .map(|f| f.name.clone())
                    .unwrap_or_else(|| format!("#{c}"))
            };
            out.push_str(&format!(
                "join pred: {} = {}\n",
                col(p.left_rel, p.left_col),
                col(p.right_rel, p.right_col)
            ));
        }
        out.push_str(&format!("output: [{}]\n", self.output_names.join(", ")));
        out
    }
}

/// Resolves names in parsed statements against a catalog.
pub struct Binder<'a> {
    catalog: &'a Catalog,
}

impl<'a> Binder<'a> {
    /// A binder over the given catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Binder { catalog }
    }

    /// Bind a parsed `SELECT`.
    pub fn bind_select(&self, stmt: &SelectStmt) -> Result<BoundSelect, PlanError> {
        let continuous = stmt.continuous.map(|c| {
            let period = Duration::from_secs_f64(c.every_secs.max(0.001));
            let window = c.window_secs.map(Duration::from_secs_f64).unwrap_or(period);
            ContinuousSpec { period, window }
        });

        // Epoch-count windows only make sense on a continuous aggregate: the
        // window is counted in epochs (there are none without CONTINUOUS) and
        // it is the aggregation root that retains per-epoch states (a plain
        // streaming SELECT has no root to close windows at).
        if let Some(w) = &stmt.window {
            if continuous.is_none() {
                return Err(PlanError::new(
                    "WINDOW TUMBLING/SLIDING requires a CONTINUOUS query \
                     (windows are counted in epochs)",
                ));
            }
            if !stmt.is_aggregate() {
                return Err(PlanError::new(
                    "WINDOW TUMBLING/SLIDING requires aggregation \
                     (GROUP BY or an aggregate select list)",
                ));
            }
            if let Some(slide) = w.slide_epochs {
                if slide > w.size_epochs {
                    return Err(PlanError::new(format!(
                        "window SLIDE ({slide}) must not exceed the window size ({})",
                        w.size_epochs
                    )));
                }
            }
        }

        if stmt.relation_count() > 1 {
            self.bind_join(stmt, continuous)
        } else if stmt.is_aggregate() {
            self.bind_aggregate(stmt, continuous)
        } else {
            self.bind_simple_select(stmt, continuous)
        }
    }

    fn table_schema(&self, name: &str, qualifier: Option<&str>) -> Result<Schema, PlanError> {
        let def = self
            .catalog
            .get(name)
            .ok_or_else(|| PlanError::new(format!("unknown table '{name}'")))?;
        Ok(match qualifier {
            Some(q) => def.schema.qualified(q),
            None => def.schema.clone(),
        })
    }

    fn bind_simple_select(
        &self,
        stmt: &SelectStmt,
        continuous: Option<ContinuousSpec>,
    ) -> Result<BoundSelect, PlanError> {
        let primary = stmt.primary();
        let schema = self.table_schema(&primary.name, None)?;
        let filter = match &stmt.where_clause {
            Some(ast) => Some(resolve_expr(ast, &schema)?),
            None => None,
        };
        let (exprs, names, out_schema) = resolve_projections(&stmt.projections, &schema)?;
        let order_by = resolve_order_by(stmt, &out_schema)?;

        Ok(BoundSelect {
            relations: vec![BoundTable { name: primary.name.clone(), schema }],
            join_preds: Vec::new(),
            filter,
            aggregate: None,
            projections: exprs,
            project_schema: out_schema,
            output_names: names,
            order_by,
            limit: stmt.limit,
            continuous,
        })
    }

    fn bind_aggregate(
        &self,
        stmt: &SelectStmt,
        continuous: Option<ContinuousSpec>,
    ) -> Result<BoundSelect, PlanError> {
        let primary = stmt.primary();
        let schema = self.table_schema(&primary.name, None)?;
        let filter = match &stmt.where_clause {
            Some(ast) => Some(resolve_expr(ast, &schema)?),
            None => None,
        };
        let parts = resolve_aggregate_parts(stmt, &schema)?;

        Ok(BoundSelect {
            relations: vec![BoundTable { name: primary.name.clone(), schema }],
            join_preds: Vec::new(),
            filter,
            aggregate: Some(parts.aggregate),
            projections: Vec::new(),
            project_schema: parts.project_schema,
            output_names: parts.output_names,
            order_by: parts.order_by,
            limit: stmt.limit,
            continuous,
        })
    }

    /// Bind a join over any number of relations: the `FROM` list plus every
    /// chained `JOIN`.  Each `ON` clause contributes one edge of the
    /// equi-predicate graph; equality conjuncts between two relations'
    /// columns in `WHERE` contribute the rest (that is how comma-listed
    /// `FROM a, b` tables are joined).  The graph must connect all relations
    /// — cross products are rejected.  A `GROUP BY` (or global aggregate)
    /// over the join resolves its grouping and aggregate expressions against
    /// the concatenated join-output schema.
    fn bind_join(
        &self,
        stmt: &SelectStmt,
        continuous: Option<ContinuousSpec>,
    ) -> Result<BoundSelect, PlanError> {
        // Resolve every relation, alias-qualified so `a.x` style references
        // work across the concatenated schema.
        let refs: Vec<&crate::sql::TableRef> =
            stmt.from.iter().chain(stmt.joins.iter().map(|j| &j.table)).collect();
        let mut relations = Vec::with_capacity(refs.len());
        for r in &refs {
            let schema = self.table_schema(&r.name, Some(r.qualifier()))?;
            relations.push(BoundTable { name: r.name.clone(), schema });
        }
        let mut joined_schema = Schema::empty();
        let mut offsets = Vec::with_capacity(relations.len());
        for rel in &relations {
            offsets.push(joined_schema.arity());
            joined_schema = joined_schema.concat(&rel.schema);
        }
        let rel_of = |global: usize| -> (usize, usize) {
            let rel = crate::plan::relation_of_column(&offsets, global);
            (rel, global - offsets[rel])
        };
        let make_pred = |a: usize, b: usize| -> Result<EquiPred, PlanError> {
            let (ra, ca) = rel_of(a);
            let (rb, cb) = rel_of(b);
            if ra == rb {
                return Err(PlanError::new(format!(
                    "join predicate must relate two different relations, \
                     both columns are in '{}'",
                    relations[ra].name
                )));
            }
            Ok(if ra < rb {
                EquiPred { left_rel: ra, left_col: ca, right_rel: rb, right_col: cb }
            } else {
                EquiPred { left_rel: rb, left_col: cb, right_rel: ra, right_col: ca }
            })
        };

        // ON clauses: one predicate each.  A name may match several columns
        // of the concatenated schema (e.g. an unqualified `file_id` on both
        // sides); an exact (qualified) match pins the column outright —
        // mirroring `Schema::index_of` — and only otherwise do all
        // suffix matches compete.  Among candidates, prefer an
        // interpretation that relates the newly joined table to an earlier
        // one, then any pair of distinct relations.
        let candidates = |name: &str| -> Vec<usize> {
            let lname = name.to_ascii_lowercase();
            let fields = joined_schema.fields();
            if let Some(i) = fields.iter().position(|f| f.name == lname) {
                return vec![i];
            }
            let suffix = lname.rsplit('.').next().unwrap_or(&lname).to_string();
            fields
                .iter()
                .enumerate()
                .filter(|(_, f)| f.name == suffix || f.name.ends_with(&format!(".{suffix}")))
                .map(|(i, _)| i)
                .collect()
        };
        let mut join_preds = Vec::new();
        for (j, join) in stmt.joins.iter().enumerate() {
            let new_rel = stmt.from.len() + j;
            let ls = candidates(&join.left_column);
            let rs = candidates(&join.right_column);
            let mut preferred: Option<(usize, usize)> = None;
            let mut fallback: Option<(usize, usize)> = None;
            for &l in &ls {
                for &r in &rs {
                    let (rl, rr) = (rel_of(l).0, rel_of(r).0);
                    if rl == rr {
                        continue;
                    }
                    if rl == new_rel || rr == new_rel {
                        preferred = preferred.or(Some((l, r)));
                    } else {
                        fallback = fallback.or(Some((l, r)));
                    }
                }
            }
            let Some((l, r)) = preferred.or(fallback) else {
                return Err(PlanError::new(format!(
                    "cannot resolve join columns '{}' / '{}'",
                    join.left_column, join.right_column
                )));
            };
            join_preds.push(make_pred(l, r)?);
        }

        // WHERE: extract cross-relation equality conjuncts into the
        // predicate graph; the rest stays as the (pushable) filter.
        let mut residual = Vec::new();
        if let Some(ast) = &stmt.where_clause {
            let resolved = resolve_expr(ast, &joined_schema)?;
            let mut conjuncts = Vec::new();
            crate::planner::optimizer::split_conjuncts(resolved, &mut conjuncts);
            for c in conjuncts {
                if let Expr::Binary { op: crate::expr::BinaryOp::Eq, left, right } = &c {
                    if let (Expr::Column(a), Expr::Column(b)) = (&**left, &**right) {
                        if rel_of(*a).0 != rel_of(*b).0 {
                            join_preds.push(make_pred(*a, *b)?);
                            continue;
                        }
                    }
                }
                residual.push(c);
            }
        }
        let filter = crate::planner::optimizer::conjoin(residual);

        // Connectivity: every relation must be reachable through the
        // predicate graph, or some stage would degenerate to a cross product.
        let mut placed = vec![0usize];
        while placed.len() < relations.len() {
            let next = (0..relations.len()).find(|r| {
                !placed.contains(r) && join_preds.iter().any(|p| p.connects(*r, &placed))
            });
            match next {
                Some(r) => placed.push(r),
                None => {
                    let missing = (0..relations.len())
                        .find(|r| !placed.contains(r))
                        .expect("some relation is unplaced");
                    return Err(PlanError::new(format!(
                        "relation '{}' is not connected to the rest of the query by an \
                         equi-join predicate (cross joins are not supported)",
                        relations[missing].name
                    )));
                }
            }
        }

        if stmt.is_aggregate() {
            // GROUP BY over the join: grouping and aggregate expressions
            // resolve against the concatenated join-output schema, exactly
            // as for a single relation.
            let parts = resolve_aggregate_parts(stmt, &joined_schema)?;
            return Ok(BoundSelect {
                relations,
                join_preds,
                filter,
                aggregate: Some(parts.aggregate),
                projections: Vec::new(),
                project_schema: parts.project_schema,
                output_names: parts.output_names,
                order_by: parts.order_by,
                limit: stmt.limit,
                continuous,
            });
        }

        let (project, names, out_schema) = resolve_projections(&stmt.projections, &joined_schema)?;
        let order_by = resolve_order_by(stmt, &out_schema)?;

        Ok(BoundSelect {
            relations,
            join_preds,
            filter,
            aggregate: None,
            projections: project,
            project_schema: out_schema,
            output_names: names,
            order_by,
            limit: stmt.limit,
            continuous,
        })
    }
}

/// The binder's resolution of everything aggregate-shaped in a statement,
/// against a given input schema (a base table's, or the concatenated schema
/// of a join): the [`BoundAggregate`], the client-visible output, and the
/// `ORDER BY` keys over the aggregate output.
struct AggregateParts {
    aggregate: BoundAggregate,
    output_names: Vec<String>,
    project_schema: Schema,
    order_by: Vec<SortKey>,
}

/// Resolve the `GROUP BY` list, the aggregate select list, `HAVING`, and
/// `ORDER BY` of an aggregate statement against `schema`.
fn resolve_aggregate_parts(
    stmt: &SelectStmt,
    schema: &Schema,
) -> Result<AggregateParts, PlanError> {
    // Group-by expressions.
    let mut group_exprs = Vec::new();
    let mut group_fields = Vec::new();
    for name in &stmt.group_by {
        let idx = schema
            .index_of(name)
            .ok_or_else(|| PlanError::new(format!("unknown GROUP BY column '{name}'")))?;
        group_exprs.push(Expr::col(idx));
        let f = schema.field(idx).expect("index_of returned valid index");
        group_fields.push(Field::new(name.clone(), f.dtype));
    }

    // Select list: group columns and aggregates.  Track, for each select
    // item, which aggregate-output column it maps to.
    let mut aggs: Vec<AggExpr> = Vec::new();
    let mut final_project = Vec::new();
    let mut output_names = Vec::new();

    for (i, item) in stmt.projections.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                return Err(PlanError::new("SELECT * cannot be combined with aggregation"))
            }
            SelectItem::Expr { expr, alias } => {
                if let AstExpr::Agg { func, arg } = expr {
                    let resolved_arg = match arg {
                        Some(a) => Some(resolve_expr(a, schema)?),
                        None => None,
                    };
                    let name = alias.clone().unwrap_or_else(|| default_agg_name(*func, arg));
                    let col =
                        group_exprs.len() + push_agg(&mut aggs, *func, resolved_arg, name.clone());
                    final_project.push(col);
                    output_names.push(name);
                } else if expr.contains_aggregate() {
                    return Err(PlanError::new(
                        "expressions over aggregates in SELECT are not supported; \
                         use the aggregate directly",
                    ));
                } else {
                    // Must be (equivalent to) a grouping column.
                    let cols = expr.referenced_columns();
                    let name = alias.clone().unwrap_or_else(|| {
                        cols.first().cloned().unwrap_or_else(|| format!("col{i}"))
                    });
                    let resolved = resolve_expr(expr, schema)?;
                    let pos = group_exprs.iter().position(|g| *g == resolved).ok_or_else(|| {
                        PlanError::new(format!(
                            "non-aggregate select item '{name}' must appear in GROUP BY"
                        ))
                    })?;
                    final_project.push(pos);
                    output_names.push(name);
                }
            }
        }
    }

    // HAVING and ORDER BY are resolved over the aggregate output
    // (group columns ++ aggregate columns); aggregates they mention that
    // are not already computed are appended as hidden columns.
    let having = match &stmt.having {
        Some(ast) => {
            Some(resolve_agg_output_expr(ast, schema, &group_exprs, &stmt.group_by, &mut aggs)?)
        }
        None => None,
    };

    let mut order_by = Vec::new();
    for item in &stmt.order_by {
        let expr =
            resolve_agg_output_expr(&item.expr, schema, &group_exprs, &stmt.group_by, &mut aggs)?;
        let column = match expr {
            Expr::Column(c) => c,
            _ => {
                return Err(PlanError::new(
                    "ORDER BY in aggregate queries must be a group column or an aggregate",
                ))
            }
        };
        order_by.push(SortKey { column, desc: item.desc });
    }

    // Output schema of the aggregate operator.
    let mut agg_fields = group_fields.clone();
    for a in &aggs {
        let dtype = match a.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum => DataType::Float,
            AggFunc::Min | AggFunc::Max => a
                .arg
                .as_ref()
                .and_then(|e| match e {
                    Expr::Column(i) => schema.field(*i).map(|f| f.dtype),
                    _ => None,
                })
                .unwrap_or(DataType::Float),
        };
        agg_fields.push(Field::new(a.name.clone(), dtype));
    }
    let agg_schema = Schema::new(agg_fields);

    // The final projected schema, in select-list order.
    let proj_fields: Vec<Field> = final_project
        .iter()
        .zip(&output_names)
        .map(|(&i, name)| {
            Field::new(
                name.clone(),
                agg_schema.field(i).map(|f| f.dtype).unwrap_or(DataType::Float),
            )
        })
        .collect();

    let window = stmt.window.map(|w| match w.slide_epochs {
        Some(slide) => WindowSpec::sliding(w.size_epochs, slide),
        None => WindowSpec::tumbling(w.size_epochs),
    });

    Ok(AggregateParts {
        aggregate: BoundAggregate {
            group_exprs,
            aggs,
            having,
            schema: agg_schema,
            final_project,
            window,
        },
        output_names,
        project_schema: Schema::new(proj_fields),
        order_by,
    })
}

/// Resolve a select list against an input schema (non-aggregate case).
fn resolve_projections(
    items: &[SelectItem],
    schema: &Schema,
) -> Result<(Vec<Expr>, Vec<String>, Schema), PlanError> {
    let mut exprs = Vec::new();
    let mut names = Vec::new();
    let mut fields = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (idx, field) in schema.fields().iter().enumerate() {
                    exprs.push(Expr::col(idx));
                    names.push(field.name.clone());
                    fields.push(field.clone());
                }
            }
            SelectItem::Expr { expr, alias } => {
                if expr.contains_aggregate() {
                    return Err(PlanError::new("aggregate expressions require GROUP BY planning"));
                }
                let resolved = resolve_expr(expr, schema)?;
                let name = alias.clone().unwrap_or_else(|| match expr {
                    AstExpr::Column(c) => c.clone(),
                    _ => format!("col{i}"),
                });
                let dtype = match &resolved {
                    Expr::Column(idx) => {
                        schema.field(*idx).map(|f| f.dtype).unwrap_or(DataType::Float)
                    }
                    Expr::Literal(v) => v.data_type(),
                    _ => DataType::Float,
                };
                fields.push(Field::new(name.clone(), dtype));
                names.push(name);
                exprs.push(resolved);
            }
        }
    }
    Ok((exprs, names, Schema::new(fields)))
}

/// Append an aggregate (deduplicating identical ones); returns its index.
fn push_agg(aggs: &mut Vec<AggExpr>, func: AggFunc, arg: Option<Expr>, name: String) -> usize {
    if let Some(pos) = aggs.iter().position(|a| a.func == func && a.arg == arg) {
        return pos;
    }
    aggs.push(AggExpr { func, arg, name });
    aggs.len() - 1
}

fn default_agg_name(func: AggFunc, arg: &Option<Box<AstExpr>>) -> String {
    match arg {
        Some(a) => match a.as_ref() {
            AstExpr::Column(c) => {
                format!("{}_{}", func.name().to_ascii_lowercase(), c.replace('.', "_"))
            }
            _ => func.name().to_ascii_lowercase(),
        },
        None => "count".to_string(),
    }
}

/// Resolve an expression against a schema (no aggregates allowed).
pub fn resolve_expr(ast: &AstExpr, schema: &Schema) -> Result<Expr, PlanError> {
    match ast {
        AstExpr::Column(name) => schema
            .index_of(name)
            .map(Expr::Column)
            .ok_or_else(|| PlanError::new(format!("unknown column '{name}'"))),
        AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(resolve_expr(left, schema)?),
            right: Box::new(resolve_expr(right, schema)?),
        }),
        AstExpr::Unary { op, expr } => {
            Ok(Expr::Unary { op: *op, expr: Box::new(resolve_expr(expr, schema)?) })
        }
        AstExpr::Like { expr, pattern } => {
            Ok(Expr::Like { expr: Box::new(resolve_expr(expr, schema)?), pattern: pattern.clone() })
        }
        AstExpr::Func { name, args } => {
            let func = match name.as_str() {
                "lower" => ScalarFunc::Lower,
                "upper" => ScalarFunc::Upper,
                "length" => ScalarFunc::Length,
                "abs" => ScalarFunc::Abs,
                other => return Err(PlanError::new(format!("unknown function '{other}'"))),
            };
            if args.len() != 1 {
                return Err(PlanError::new(format!("{name} takes exactly one argument")));
            }
            Ok(Expr::Func { func, arg: Box::new(resolve_expr(&args[0], schema)?) })
        }
        AstExpr::Agg { .. } => {
            Err(PlanError::new("aggregate calls are not allowed in this context"))
        }
    }
}

/// Resolve an expression over an *aggregate output* schema: group columns may
/// be referenced by name, aggregate calls map to (possibly newly appended)
/// aggregate columns.
fn resolve_agg_output_expr(
    ast: &AstExpr,
    input_schema: &Schema,
    group_exprs: &[Expr],
    group_names: &[String],
    aggs: &mut Vec<AggExpr>,
) -> Result<Expr, PlanError> {
    match ast {
        AstExpr::Agg { func, arg } => {
            let resolved_arg = match arg {
                Some(a) => Some(resolve_expr(a, input_schema)?),
                None => None,
            };
            let name = default_agg_name(*func, arg);
            let idx = group_exprs.len() + push_agg(aggs, *func, resolved_arg, name);
            Ok(Expr::Column(idx))
        }
        AstExpr::Column(name) => {
            // A group-by column referenced by name.
            if let Some(pos) = group_names.iter().position(|g| {
                g.eq_ignore_ascii_case(name) || g.rsplit('.').next() == name.rsplit('.').next()
            }) {
                return Ok(Expr::Column(pos));
            }
            // An aggregate referenced by its alias.
            if let Some(pos) = aggs.iter().position(|a| a.name.eq_ignore_ascii_case(name)) {
                return Ok(Expr::Column(group_exprs.len() + pos));
            }
            Err(PlanError::new(format!(
                "column '{name}' must be a GROUP BY column or an aggregate alias"
            )))
        }
        AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(resolve_agg_output_expr(
                left,
                input_schema,
                group_exprs,
                group_names,
                aggs,
            )?),
            right: Box::new(resolve_agg_output_expr(
                right,
                input_schema,
                group_exprs,
                group_names,
                aggs,
            )?),
        }),
        AstExpr::Unary { op, expr } => Ok(Expr::Unary {
            op: *op,
            expr: Box::new(resolve_agg_output_expr(
                expr,
                input_schema,
                group_exprs,
                group_names,
                aggs,
            )?),
        }),
        AstExpr::Like { expr, pattern } => Ok(Expr::Like {
            expr: Box::new(resolve_agg_output_expr(
                expr,
                input_schema,
                group_exprs,
                group_names,
                aggs,
            )?),
            pattern: pattern.clone(),
        }),
        AstExpr::Func { .. } => {
            Err(PlanError::new("scalar functions over aggregate outputs are not supported"))
        }
    }
}

fn resolve_order_by(stmt: &SelectStmt, out_schema: &Schema) -> Result<Vec<SortKey>, PlanError> {
    let mut keys = Vec::new();
    for item in &stmt.order_by {
        match &item.expr {
            AstExpr::Column(name) => {
                let idx = out_schema.index_of(name).ok_or_else(|| {
                    PlanError::new(format!("ORDER BY column '{name}' is not in the output"))
                })?;
                keys.push(SortKey { column: idx, desc: item.desc });
            }
            other => {
                return Err(PlanError::new(format!(
                    "ORDER BY only supports output columns here, found {other:?}"
                )))
            }
        }
    }
    Ok(keys)
}
