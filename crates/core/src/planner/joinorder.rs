//! Join-order enumeration for multi-way joins.
//!
//! Given the binder's relation list and equi-predicate graph plus per-scan
//! pushed-down filters, this module picks the join order the staged
//! distributed execution will run, costed from [`Catalog`]
//! [`TableStats`](crate::catalog::TableStats) — the very cardinalities the
//! PR 3 statistics gossip keeps converged network-wide.  Up to
//! [`DP_MAX_RELATIONS`] relations the search is exact (dynamic programming
//! over connected subsets, the classic System-R construction restricted to
//! **left-deep** trees, the shape the stage chain executes); above that, a
//! greedy heuristic grows the chain by the cheapest connected extension.
//! For unforced joins of ≥ 4 relations the enumerator additionally
//! considers **bushy** shapes — two independent subchains meeting at a
//! rehash-merge stage ([`BushyChoice`]) — and takes one when its shipped
//! cost beats the best left-deep order (see `choose_order`'s `bushy`
//! parameter and the stage-DAG notes in `docs/ARCHITECTURE.md`).
//!
//! Each stage also gets its [`JoinStrategy`] — symmetric rehash,
//! Fetch-Matches, or (for a stage whose sides are both base tables) the
//! Bloom-filter semi-join — using the same cost rules the two-way planner
//! has always applied.
//!
//! Cost proxy: tuples shipped over the wire, the quantity PIER actually
//! pays for.  A symmetric-rehash stage ships both sides; a Fetch-Matches
//! stage pays `FETCH_PROBE_COST` routed messages per probing tuple.  With
//! `PierConfig::feedback`, per-query [`ObservedStats`] folded from
//! collected execution traces override the catalog estimates the next time
//! the origin re-plans — the trace-fed costing loop.

use crate::catalog::Catalog;
use crate::expr::Expr;
use crate::query::JoinStrategy;
use std::collections::HashMap;

use super::binder::{BoundTable, EquiPred};
use super::physical::{
    selectivity, DEFAULT_ROW_ESTIMATE, FETCH_PROBE_COST, {BLOOM_MIN_RIGHT, BLOOM_SKEW},
};

/// Trace-fed statistics observed while a query actually ran: per-table
/// filtered cardinalities and per-stage join selectivities, folded from the
/// network-wide merge of [`OpTrace`](crate::trace::OpTrace) counters
/// (`stage_left_in` / `stage_right_in` / `stage_matches`, averaged per
/// epoch).  When supplied to [`choose_order_with`], these **override** the
/// catalog's static estimates — the feedback loop the paper's adaptivity
/// discussion calls for: the engine measures exactly what the enumerator
/// guessed, so the next plan is costed from ground truth.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObservedStats {
    /// Observed post-filter rows per table, per epoch.  Replaces the
    /// catalog-derived `base_est` (and the row basis of distinct-value
    /// guesses) for tables present in the map.
    pub table_rows: HashMap<String, f64>,
    /// Observed whole-stage join selectivity, keyed by
    /// `(right table, placed-set key)` where the placed-set key is the
    /// sorted, comma-joined table names accumulated before the stage ran
    /// (see [`ObservedStats::placed_key`]).  The value is
    /// `matches / (left_in · right_in)` — the combined selectivity of every
    /// predicate connecting the right table to the placed set, which is the
    /// exact quantity [`choose_order`]'s `extend` otherwise estimates from
    /// distinct-value counts.
    pub stage_selectivity: HashMap<(String, String), f64>,
}

impl ObservedStats {
    /// Canonical key for a set of placed table names: sorted and
    /// comma-joined, so the engine (folding traces over the *executed*
    /// order) and the enumerator (probing an arbitrary candidate order)
    /// agree whenever the sets agree.
    pub fn placed_key<'n>(names: impl IntoIterator<Item = &'n str>) -> String {
        let mut v: Vec<&str> = names.into_iter().collect();
        v.sort_unstable();
        v.join(",")
    }

    /// No observations recorded at all?
    pub fn is_empty(&self) -> bool {
        self.table_rows.is_empty() && self.stage_selectivity.is_empty()
    }

    /// How far the observation diverges from an estimate, as a ≥ 1 factor
    /// (`4.0` = off by 4× in either direction).
    pub fn divergence(observed: f64, estimated: f64) -> f64 {
        let (a, b) = (observed.max(1e-9), estimated.max(1e-9));
        (a / b).max(b / a)
    }
}

/// Exact (dynamic-programming) search is used up to this many relations;
/// larger queries fall back to the greedy heuristic.
pub const DP_MAX_RELATIONS: usize = 6;

/// Default distinct-value guess for a column without statistics: one tenth
/// of the relation's rows (a flat System-R style assumption).
const DEFAULT_DISTINCT_FRACTION: f64 = 0.1;

/// One stage of a chosen join order.
#[derive(Clone, Debug)]
pub struct StageChoice {
    /// The relation (index into the bound relation list) joined in here.
    pub rel: usize,
    /// Index (into the bound predicate list) of the predicate used as the
    /// stage's rehash/probe key.
    pub key_pred: usize,
    /// Other predicates connecting `rel` to the accumulated relations; they
    /// run as stage post-filters.
    pub extra_preds: Vec<usize>,
    /// Estimated rows of the stage's left input (the accumulated
    /// intermediate, or the filtered driving table for stage 0).
    pub left_est: f64,
    /// Estimated rows of the filtered right side.
    pub right_est: f64,
    /// Estimated rows of the stage's output.
    pub out_est: f64,
    /// The stage's join algorithm.
    pub strategy: JoinStrategy,
    /// Whether an inner-stage Bloom semi-join should prune this stage's
    /// right-relation rehash (symmetric-hash stages ≥ 1 only; stage 0 uses
    /// the dedicated [`JoinStrategy::BloomFilter`] protocol instead).
    pub inner_bloom: bool,
    /// Suggested Bloom geometry (bits) for the inner filter, sized from the
    /// estimated left-key population; 0 when `inner_bloom` is false.  The
    /// engine clamps this to its configured bounds.
    pub bloom_bits: u32,
    /// Human-readable rationale (surfaced by `EXPLAIN`).
    pub note: String,
}

/// The bushy half of an [`OrderPlan`]: the order is split into two
/// independent left-deep subchains (`order[..split]` and `order[split..]`)
/// whose outputs meet at a final rehash-merge stage.
#[derive(Clone, Debug)]
pub struct BushyChoice {
    /// Number of relations in the first subchain (`order[..split]`).
    pub split: usize,
    /// Index (into the bound predicate list) of the predicate keying the
    /// merge stage's rehash.
    pub key_pred: usize,
    /// Other predicates crossing the two subchains; they run as merge-stage
    /// post-filters.
    pub extra_preds: Vec<usize>,
    /// Estimated output rows of the first subchain (the merge's side 0).
    pub left_est: f64,
    /// Estimated output rows of the second subchain (the merge's side 1).
    pub right_est: f64,
    /// Estimated rows of the merged output.
    pub out_est: f64,
    /// Human-readable rationale (surfaced by `EXPLAIN`).
    pub note: String,
}

/// A complete join order: the relation permutation and per-stage choices.
#[derive(Clone, Debug)]
pub struct OrderPlan {
    /// Relation indexes in execution order (`order[0]` drives the chain).
    /// For bushy plans this is the first subchain's order followed by the
    /// second's.
    pub order: Vec<usize>,
    /// One entry per chain stage: `order.len() - 1` for left-deep plans;
    /// for bushy plans, the first subchain's stages followed by the
    /// second's (the merge stage is described by `bushy` instead).
    pub stages: Vec<StageChoice>,
    /// The merge-stage description when the enumerator chose a bushy shape.
    pub bushy: Option<BushyChoice>,
}

/// Everything the enumerator knows about the query, precomputed.
struct SearchContext<'a> {
    relations: &'a [BoundTable],
    preds: &'a [EquiPred],
    catalog: &'a Catalog,
    /// Filtered base-cardinality estimate per relation.
    base_est: Vec<f64>,
    /// Unfiltered base rows per relation (for EXPLAIN notes).
    base_rows: Vec<f64>,
    forced: Option<JoinStrategy>,
    /// Trace-fed overrides of the catalog estimates, when feedback supplied
    /// them.
    observed: Option<&'a ObservedStats>,
}

impl<'a> SearchContext<'a> {
    /// Estimated distinct values of `col` of relation `rel`: the gossiped
    /// partition-key count when the column is the partitioning column,
    /// otherwise a flat fraction of the row estimate.
    fn distinct(&self, rel: usize, col: usize) -> f64 {
        let name = &self.relations[rel].name;
        let partition = self.catalog.get(name).map(|d| d.partition_column);
        let keys = self.catalog.stats(name).and_then(|s| s.distinct_keys);
        match (partition, keys) {
            (Some(p), Some(k)) if p == col => (k as f64).max(1.0),
            _ => (self.base_rows[rel] * DEFAULT_DISTINCT_FRACTION).max(1.0),
        }
    }

    /// Is relation `rel` partitioned on `col` (a Fetch-Matches probe can
    /// answer with a single DHT `get`)?
    fn partitioned_on(&self, rel: usize, col: usize) -> bool {
        self.catalog.get(&self.relations[rel].name).map(|d| d.partition_column) == Some(col)
    }

    /// Cost and cardinality of extending the accumulated set `placed`
    /// (estimated at `card`) with relation `rel`.
    fn extend(&self, placed: &[usize], card: f64, rel: usize) -> Option<Extension> {
        let connecting: Vec<usize> =
            (0..self.preds.len()).filter(|&i| self.preds[i].connects(rel, placed)).collect();
        if connecting.is_empty() {
            return None;
        }
        let right_est = self.base_est[rel];

        // Output estimate: every connecting predicate divides by the larger
        // distinct-value count of its two columns.
        let mut out_est = card * right_est;
        let mut divisors: Vec<(usize, f64)> = Vec::with_capacity(connecting.len());
        for &i in &connecting {
            let p = &self.preds[i];
            let (other_rel, other_col, rel_col) = if p.left_rel == rel {
                (p.right_rel, p.right_col, p.left_col)
            } else {
                (p.left_rel, p.left_col, p.right_col)
            };
            let d = self.distinct(other_rel, other_col).max(self.distinct(rel, rel_col));
            divisors.push((i, d));
            out_est /= d;
        }
        let mut out_est = out_est.max(1.0);

        // Trace-fed override: when the engine has *measured* this exact
        // (placed set ⋈ rel) stage, its observed whole-stage selectivity
        // replaces the distinct-count guesses wholesale.
        if let Some(obs) = self.observed {
            let key =
                ObservedStats::placed_key(placed.iter().map(|&r| self.relations[r].name.as_str()));
            if let Some(&sel) = obs.stage_selectivity.get(&(self.relations[rel].name.clone(), key))
            {
                out_est = (card * right_est * sel).max(1.0);
            }
        }

        // Key predicate: a probe-enabling predicate when probing is what
        // the executor would actually run (the gate is the *same* rule
        // `assign_strategies` applies, so the search prices exactly the
        // plan that executes), else the most selective one.
        let sym_cost = card + right_est;
        let fetch = divisors
            .iter()
            .find(|(i, _)| {
                let col = self.preds[*i].col_on(rel).expect("pred connects rel");
                self.partitioned_on(rel, col)
            })
            .map(|&(i, _)| i)
            .filter(|_| card * FETCH_PROBE_COST <= right_est);
        let (key_pred, cost) = match fetch {
            Some(i) => (i, card * FETCH_PROBE_COST),
            None => {
                let best = divisors
                    .iter()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("connecting is non-empty");
                (best.0, sym_cost)
            }
        };
        let extra_preds = connecting.into_iter().filter(|&i| i != key_pred).collect();
        Some(Extension { key_pred, extra_preds, cost, out_est, right_est })
    }

    /// Final per-stage strategy selection for a fixed order (the same rules
    /// the two-way planner applies, generalized to stage position).
    fn assign_strategies(&self, order: &[usize]) -> Vec<StageChoice> {
        let mut stages = Vec::with_capacity(order.len() - 1);
        let mut card = self.base_est[order[0]];
        let mut placed = vec![order[0]];
        for (k, &rel) in order.iter().enumerate().skip(1) {
            let ext = self
                .extend(&placed, card, rel)
                .expect("orders are built from connected extensions");
            let left_est = card;
            let right_est = ext.right_est;
            let key_col = self.preds[ext.key_pred].col_on(rel).expect("key pred touches rel");
            let fetch_eligible = self.partitioned_on(rel, key_col);
            let name = &self.relations[rel].name;
            let left_rows = if k == 1 { self.base_rows[order[0]] } else { left_est };

            let (strategy, note) = match self.forced {
                Some(s) => {
                    let actual = match s {
                        JoinStrategy::FetchMatches if !fetch_eligible => {
                            JoinStrategy::SymmetricHash
                        }
                        // The Bloom protocol's phase structure needs both
                        // sides to be base tables, which only stage 0 has.
                        JoinStrategy::BloomFilter if k != 1 => JoinStrategy::SymmetricHash,
                        s => s,
                    };
                    if actual == s {
                        (actual, format!("{s:?} (forced by caller)"))
                    } else {
                        (actual, format!("{actual:?} (forced {s:?} not eligible here)"))
                    }
                }
                None => {
                    if fetch_eligible && left_est * FETCH_PROBE_COST <= right_est {
                        (
                            JoinStrategy::FetchMatches,
                            format!(
                                "Fetch-Matches: ~{left_est:.0} probing tuples (of \
                                 ~{left_rows:.0}) vs ~{right_est:.0} inner tuples; '{name}' \
                                 is partitioned on the join key"
                            ),
                        )
                    } else if k == 1
                        && right_est >= BLOOM_MIN_RIGHT
                        && right_est >= BLOOM_SKEW * left_est
                    {
                        (
                            JoinStrategy::BloomFilter,
                            format!(
                                "Bloom semi-join: right side ~{right_est:.0} tuples dwarfs \
                                 left ~{left_est:.0}; a key summary prunes the rehash"
                            ),
                        )
                    } else {
                        (
                            JoinStrategy::SymmetricHash,
                            format!(
                                "symmetric rehash: comparable cardinalities (~{left_est:.0} \
                                 left vs ~{right_est:.0} right), both sides ship to the \
                                 key's node"
                            ),
                        )
                    }
                }
            };

            // Inner-stage Bloom semi-join: a symmetric-hash stage past the
            // first can summarize the intermediate keys that reached its
            // join sites and prune the right relation's rehash through the
            // combined filter — worth the handshake under the same skew
            // rule that picks the stage-0 Bloom protocol.
            let inner_eligible = k != 1
                && strategy == JoinStrategy::SymmetricHash
                && right_est >= BLOOM_MIN_RIGHT
                && right_est >= BLOOM_SKEW * left_est;
            let (inner_bloom, bloom_bits, note) = if inner_eligible {
                let (bits, fp) = inner_bloom_geometry(left_est);
                let pass_est = ext.out_est.min(right_est);
                let fp_extra = (right_est - pass_est).max(0.0) * fp;
                (
                    true,
                    bits,
                    format!(
                        "{note}; inner Bloom semi-join: ~{left_est:.0} intermediate keys \
                         summarized in {bits} bits (k=4, FP budget {:.2}%) prune the \
                         right rehash to ~{:.0} of ~{right_est:.0} tuples",
                        fp * 100.0,
                        pass_est + fp_extra,
                    ),
                )
            } else {
                (false, 0, note)
            };
            stages.push(StageChoice {
                rel,
                key_pred: ext.key_pred,
                extra_preds: ext.extra_preds,
                left_est,
                right_est,
                out_est: ext.out_est,
                strategy,
                inner_bloom,
                bloom_bits,
                note,
            });
            card = ext.out_est;
            placed.push(rel);
        }
        stages
    }
}

struct Extension {
    key_pred: usize,
    extra_preds: Vec<usize>,
    cost: f64,
    out_est: f64,
    right_est: f64,
}

/// Size an inner-stage Bloom filter from the estimated key population it
/// must summarize: ~10 bits per expected key (a classic ≲1% false-positive
/// budget at k=4), rounded up to a power of two, floored at 1024 bits.
/// Returns `(bits, expected_false_positive_rate)`.  The engine clamps the
/// suggestion to its configured `[bloom_bits_min, bloom_bits_max]` range.
pub fn inner_bloom_geometry(left_est: f64) -> (u32, f64) {
    let raw = (left_est * 10.0).max(1024.0).min(u32::MAX as f64 / 2.0) as u64;
    let bits = raw.next_power_of_two() as u32;
    let k = 4.0_f64;
    let fp = (1.0 - (-k * left_est.max(1.0) / bits as f64).exp()).powf(k);
    (bits, fp)
}

/// Choose the join order and per-stage strategies for a bound join.
///
/// Two-way joins (and any join planned with a forced strategy, which
/// benchmarks use for apples-to-apples comparisons) keep the declared
/// relation order; three relations and up are reordered by cost.
pub fn choose_order(
    catalog: &Catalog,
    relations: &[BoundTable],
    preds: &[EquiPred],
    rel_filters: &[Option<Expr>],
    forced: Option<JoinStrategy>,
) -> OrderPlan {
    choose_order_with(catalog, relations, preds, rel_filters, forced, None, false)
}

/// [`choose_order`] with the feedback-loop knobs: trace-fed
/// [`ObservedStats`] overriding the catalog estimates, and permission to
/// pick a **bushy** shape (two independent subchains meeting at a
/// rehash-merge stage) when its shipped-tuple cost beats every left-deep
/// order.  Bushy shapes are only considered for unforced joins of ≥ 4
/// relations within the exact-search budget.
pub fn choose_order_with(
    catalog: &Catalog,
    relations: &[BoundTable],
    preds: &[EquiPred],
    rel_filters: &[Option<Expr>],
    forced: Option<JoinStrategy>,
    observed: Option<&ObservedStats>,
    bushy: bool,
) -> OrderPlan {
    let n = relations.len();
    let mut base_rows = Vec::with_capacity(n);
    let mut base_est = Vec::with_capacity(n);
    for (i, rel) in relations.iter().enumerate() {
        let observed_rows = observed.and_then(|o| o.table_rows.get(&rel.name)).copied();
        let rows = observed_rows
            .or_else(|| catalog.stats(&rel.name).map(|s| s.rows as f64))
            .unwrap_or(DEFAULT_ROW_ESTIMATE)
            .max(1.0);
        let partition = catalog.get(&rel.name).map(|d| d.partition_column);
        let distinct = catalog.stats(&rel.name).and_then(|s| s.distinct_keys);
        let eq_sel = move |col: usize| match (partition, distinct) {
            (Some(p), Some(k)) if p == col => (1.0 / k.max(1) as f64).clamp(1e-6, 1.0),
            _ => super::physical::DEFAULT_EQ_SELECTIVITY,
        };
        base_rows.push(rows);
        // Observed rows are already post-filter (the trace measured what the
        // scans actually shipped); catalog rows still need the filter's
        // estimated selectivity applied.
        base_est.push(match observed_rows {
            Some(r) => r.max(1.0),
            None => (rows * selectivity(&rel_filters[i], &eq_sel)).max(1.0),
        });
    }
    let ctx = SearchContext { relations, preds, catalog, base_est, base_rows, forced, observed };

    if n == 2 || forced.is_some() {
        let order = (0..n).collect::<Vec<_>>();
        let stages = ctx.assign_strategies(&order);
        return OrderPlan { order, stages, bushy: None };
    }
    if n > DP_MAX_RELATIONS {
        let order = greedy_order(&ctx, n);
        let stages = ctx.assign_strategies(&order);
        return OrderPlan { order, stages, bushy: None };
    }

    let dp = dp_table(&ctx, n);
    let full = (1usize << n) - 1;
    let (left_deep_cost, _, left_deep_order) =
        dp[full].clone().expect("the binder guarantees a connected predicate graph");

    if bushy && n >= 4 {
        if let Some(plan) = best_bushy(&ctx, &dp, n, left_deep_cost) {
            return plan;
        }
    }
    let stages = ctx.assign_strategies(&left_deep_order);
    OrderPlan { order: left_deep_order, stages, bushy: None }
}

/// Exact left-deep search: dynamic programming over connected subsets.
/// `dp[mask]` = best `(cost, card, order)` reaching exactly `mask`.
fn dp_table(ctx: &SearchContext<'_>, n: usize) -> Vec<Option<(f64, f64, Vec<usize>)>> {
    let full = (1usize << n) - 1;
    let mut dp: Vec<Option<(f64, f64, Vec<usize>)>> = vec![None; full + 1];
    for r in 0..n {
        dp[1 << r] = Some((0.0, ctx.base_est[r], vec![r]));
    }
    for mask in 1..=full {
        let Some((cost, card, order)) = dp[mask].clone() else { continue };
        for rel in 0..n {
            if mask & (1 << rel) != 0 {
                continue;
            }
            let Some(ext) = ctx.extend(&order, card, rel) else { continue };
            let next_mask = mask | (1 << rel);
            let next_cost = cost + ext.cost;
            let better = match &dp[next_mask] {
                None => true,
                Some((c, ..)) => next_cost < *c,
            };
            if better {
                let mut next_order = order.clone();
                next_order.push(rel);
                dp[next_mask] = Some((next_cost, ext.out_est, next_order));
            }
        }
    }
    dp
}

/// Search every 2-partition of the relations for a bushy shape cheaper than
/// the best left-deep order.  A bushy plan runs each part as its own
/// left-deep subchain and rehash-merges the two outputs, so its cost is the
/// two subchain costs plus shipping both outputs to the merge sites.
fn best_bushy(
    ctx: &SearchContext<'_>,
    dp: &[Option<(f64, f64, Vec<usize>)>],
    n: usize,
    left_deep_cost: f64,
) -> Option<OrderPlan> {
    let full = (1usize << n) - 1;
    let mut best: Option<(f64, usize)> = None; // (cost, mask of chain A)
                                               // Fixing relation 0 into chain A enumerates each unordered partition
                                               // once.
    for m1 in 1..=full {
        if m1 & 1 == 0 || m1 == full {
            continue;
        }
        let m2 = full ^ m1;
        if m1.count_ones() < 2 || m2.count_ones() < 2 {
            continue;
        }
        let (Some((c1, card1, _)), Some((c2, card2, _))) = (&dp[m1], &dp[m2]) else { continue };
        if crossing_preds(ctx.preds, m1, m2).is_empty() {
            continue;
        }
        let cost = c1 + c2 + card1 + card2;
        if cost < left_deep_cost && best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, m1));
        }
    }
    let (_, m1) = best?;
    let m2 = full ^ m1;
    let (_, card1, order1) = dp[m1].clone().expect("chosen mask is reachable");
    let (_, card2, order2) = dp[m2].clone().expect("chosen mask is reachable");

    // Merge estimate: every crossing predicate divides by the larger
    // distinct count of its endpoints, exactly like a chain extension.
    let connecting = crossing_preds(ctx.preds, m1, m2);
    let mut out_est = card1 * card2;
    let mut divisors: Vec<(usize, f64)> = Vec::with_capacity(connecting.len());
    for &i in &connecting {
        let p = &ctx.preds[i];
        let d = ctx.distinct(p.left_rel, p.left_col).max(ctx.distinct(p.right_rel, p.right_col));
        divisors.push((i, d));
        out_est /= d;
    }
    let out_est = out_est.max(1.0);
    let key_pred =
        divisors.iter().max_by(|a, b| a.1.total_cmp(&b.1)).expect("connected partition").0;
    let extra_preds: Vec<usize> = connecting.into_iter().filter(|&i| i != key_pred).collect();

    let mut stages = ctx.assign_strategies(&order1);
    let mut chain_b = ctx.assign_strategies(&order2);
    // A subchain root past global stage 0 cannot run the stage-0 Bloom
    // protocol (its phase-2 broadcast is keyed to stage 0); degrade to the
    // symmetric rehash the merge DAG executes everywhere.
    if let Some(first) = chain_b.first_mut() {
        if first.strategy == JoinStrategy::BloomFilter {
            first.strategy = JoinStrategy::SymmetricHash;
            first.note = format!("{} (Bloom ineligible at a subchain root)", first.note);
        }
    }
    stages.append(&mut chain_b);

    let names = |order: &[usize]| {
        order.iter().map(|&r| ctx.relations[r].name.as_str()).collect::<Vec<_>>().join(" ⋈ ")
    };
    let note = format!(
        "bushy merge: subchains ({}) and ({}) run concurrently; \
         ~{card1:.0} ⋈ ~{card2:.0} → ~{out_est:.0} rows rehash-merged",
        names(&order1),
        names(&order2),
    );
    let split = order1.len();
    let mut order = order1;
    order.extend(order2);
    Some(OrderPlan {
        order,
        stages,
        bushy: Some(BushyChoice {
            split,
            key_pred,
            extra_preds,
            left_est: card1,
            right_est: card2,
            out_est,
            note,
        }),
    })
}

/// Predicates with one endpoint in each of the two disjoint relation masks.
fn crossing_preds(preds: &[EquiPred], m1: usize, m2: usize) -> Vec<usize> {
    (0..preds.len())
        .filter(|&i| {
            let p = &preds[i];
            let (l, r) = (1usize << p.left_rel, 1usize << p.right_rel);
            (m1 & l != 0 && m2 & r != 0) || (m2 & l != 0 && m1 & r != 0)
        })
        .collect()
}

/// Greedy fallback for wide joins: start from the smallest filtered
/// relation, repeatedly add the connected relation with the cheapest stage.
fn greedy_order(ctx: &SearchContext<'_>, n: usize) -> Vec<usize> {
    let start = (0..n)
        .min_by(|&a, &b| ctx.base_est[a].total_cmp(&ctx.base_est[b]))
        .expect("at least one relation");
    let mut order = vec![start];
    let mut card = ctx.base_est[start];
    while order.len() < n {
        let best = (0..n)
            .filter(|r| !order.contains(r))
            .filter_map(|r| ctx.extend(&order, card, r).map(|e| (r, e)))
            .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost));
        let Some((rel, ext)) = best else {
            // Disconnected remainder cannot happen for binder-produced
            // graphs; bail to declared order defensively.
            for r in 0..n {
                if !order.contains(&r) {
                    order.push(r);
                }
            }
            break;
        };
        card = ext.out_est;
        order.push(rel);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{TableDef, TableStats};
    use crate::tuple::Schema;
    use crate::value::DataType;
    use pier_simnet::Duration;

    fn rel(name: &str) -> BoundTable {
        BoundTable {
            name: name.into(),
            schema: Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
        }
    }

    fn catalog(rows: &[(&str, u64)]) -> Catalog {
        let mut cat = Catalog::new();
        for (name, n) in rows {
            cat.register(TableDef::new(
                *name,
                Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
                "k",
                Duration::from_secs(60),
            ));
            cat.set_stats(name, TableStats::with_rows(*n));
        }
        cat
    }

    fn chain_preds() -> Vec<EquiPred> {
        // a.v = b.k, b.v = c.k — a linear chain.
        vec![
            EquiPred { left_rel: 0, left_col: 1, right_rel: 1, right_col: 0 },
            EquiPred { left_rel: 1, left_col: 1, right_rel: 2, right_col: 0 },
        ]
    }

    #[test]
    fn dp_starts_from_the_smallest_relation() {
        let cat = catalog(&[("a", 100_000), ("b", 1_000), ("c", 10)]);
        let rels = [rel("a"), rel("b"), rel("c")];
        let plan = choose_order(&cat, &rels, &chain_preds(), &[None, None, None], None);
        assert_eq!(plan.order[2], 0, "the 100k-row relation must join last: {:?}", plan.order);
        assert_ne!(plan.order[0], 0, "the 100k-row relation must not drive: {:?}", plan.order);
        assert_eq!(plan.stages.len(), 2);
    }

    #[test]
    fn order_flips_with_the_statistics() {
        let rels = [rel("a"), rel("b"), rel("c")];
        let cat1 = catalog(&[("a", 10), ("b", 1_000), ("c", 100_000)]);
        let p1 = choose_order(&cat1, &rels, &chain_preds(), &[None, None, None], None);
        let cat2 = catalog(&[("a", 100_000), ("b", 1_000), ("c", 10)]);
        let p2 = choose_order(&cat2, &rels, &chain_preds(), &[None, None, None], None);
        assert_ne!(p1.order, p2.order, "flipping cardinalities must flip the order");
        assert_eq!(p1.order[0], 0, "{:?}", p1.order);
        assert_eq!(*p2.order.last().unwrap(), 0, "{:?}", p2.order);
    }

    #[test]
    fn two_way_joins_keep_declared_order() {
        let cat = catalog(&[("a", 100_000), ("b", 10)]);
        let rels = [rel("a"), rel("b")];
        let preds = vec![EquiPred { left_rel: 0, left_col: 1, right_rel: 1, right_col: 0 }];
        let plan = choose_order(&cat, &rels, &preds, &[None, None], None);
        assert_eq!(plan.order, vec![0, 1]);
    }

    #[test]
    fn forced_strategy_applies_where_eligible() {
        let cat = catalog(&[("a", 100), ("b", 100), ("c", 100)]);
        let rels = [rel("a"), rel("b"), rel("c")];
        let plan = choose_order(
            &cat,
            &rels,
            &chain_preds(),
            &[None, None, None],
            Some(JoinStrategy::BloomFilter),
        );
        assert_eq!(plan.order, vec![0, 1, 2], "forced plans keep the declared order");
        assert_eq!(plan.stages[0].strategy, JoinStrategy::BloomFilter);
        assert_eq!(
            plan.stages[1].strategy,
            JoinStrategy::SymmetricHash,
            "Bloom needs two base-table sides, which only stage 0 has"
        );
    }

    #[test]
    fn inner_bloom_requires_skew_and_size() {
        // Stage 1 (b⋈c) with a huge filtered right side and a tiny
        // intermediate: eligible.  With comparable sides: not.
        let rels = [rel("a"), rel("b"), rel("c")];
        let skewed = catalog(&[("a", 10), ("b", 20), ("c", 100_000)]);
        let plan = choose_order(
            &skewed,
            &rels,
            &chain_preds(),
            &[None, None, None],
            Some(JoinStrategy::SymmetricHash),
        );
        assert!(!plan.stages[0].inner_bloom, "stage 0 uses the BloomFilter strategy instead");
        assert!(plan.stages[1].inner_bloom, "{}", plan.stages[1].note);
        assert!(plan.stages[1].bloom_bits >= 1024);
        assert!(plan.stages[1].note.contains("inner Bloom semi-join"));

        let flat = catalog(&[("a", 100), ("b", 100), ("c", 100)]);
        let plan = choose_order(
            &flat,
            &rels,
            &chain_preds(),
            &[None, None, None],
            Some(JoinStrategy::SymmetricHash),
        );
        assert!(plan.stages.iter().all(|s| !s.inner_bloom && s.bloom_bits == 0));
    }

    #[test]
    fn bloom_geometry_is_a_power_of_two_with_small_fp() {
        let (bits, fp) = inner_bloom_geometry(50.0);
        assert_eq!(bits, 1024);
        assert!(fp < 0.02, "fp = {fp}");
        let (bits, fp) = inner_bloom_geometry(10_000.0);
        assert!(bits >= 100_000 && bits.is_power_of_two());
        assert!(fp < 0.02, "fp = {fp}");
    }

    #[test]
    fn greedy_handles_wide_joins() {
        let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
        let rows: Vec<(&str, u64)> = names.iter().map(|n| (*n, 1_000)).collect();
        let cat = catalog(&rows);
        let rels: Vec<BoundTable> = names.iter().map(|n| rel(n)).collect();
        // A chain a-b-c-…-h.
        let preds: Vec<EquiPred> = (0..7)
            .map(|i| EquiPred { left_rel: i, left_col: 1, right_rel: i + 1, right_col: 0 })
            .collect();
        let filters: Vec<Option<Expr>> = vec![None; 8];
        let plan = choose_order(&cat, &rels, &preds, &filters, None);
        assert_eq!(plan.order.len(), 8);
        assert_eq!(plan.stages.len(), 7);
        let mut sorted = plan.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }
}
