//! The layered planning pipeline: SQL AST → bound AST → logical plan →
//! optimized logical plan → distributed physical plan.
//!
//! Planning runs in four distinct stages, each in its own module:
//!
//! 1. [`binder`] resolves table/column names against the [`Catalog`] into a
//!    typed [`BoundSelect`];
//! 2. [`logical`] builds the initial [`LogicalPlan`] operator tree;
//! 3. [`optimizer`] rewrites it (constant folding, predicate pushdown,
//!    projection pruning) under a rule framework;
//! 4. [`physical`] costs distributed join strategies from catalog
//!    cardinality hints and emits the per-node [`QueryKind`] spec.
//!
//! [`Planner`] is the façade the engine, the apps, and the tests drive; it
//! also renders [`Explanation`]s for `EXPLAIN <select>` showing every
//! stage's output.  See `README.md` in this directory for the full tour.

pub mod binder;
pub mod cache;
pub mod joinorder;
pub mod logical;
pub mod optimizer;
pub mod physical;

pub use binder::{resolve_expr, Binder, BoundSelect, EquiPred};
pub use cache::PlanCache;
pub use joinorder::{BushyChoice, ObservedStats, OrderPlan, StageChoice};
pub use optimizer::{Optimized, Optimizer, Rule};
pub use physical::{PhysicalPlan, PhysicalPlanner};

use crate::catalog::Catalog;
use crate::plan::LogicalPlan;
use crate::query::{ContinuousSpec, JoinStrategy, QueryKind};
use crate::sql::SelectStmt;
use std::fmt;

/// Planning errors (unknown tables/columns, unsupported shapes).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanError {
    /// What went wrong.
    pub message: String,
}

impl PlanError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        PlanError { message: message.into() }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "planning error: {}", self.message)
    }
}

impl std::error::Error for PlanError {}

/// The result of planning: the optimized centralized plan (what the
/// [`reference`](crate::reference) evaluator executes) plus the distributed
/// per-node work description.
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    /// Optimized logical plan.
    pub logical: LogicalPlan,
    /// The plan as the logical planner first built it (pre-optimization),
    /// kept for `EXPLAIN`.
    pub logical_initial: LogicalPlan,
    /// Optimizer rules that changed the plan, in application order.
    pub rules_applied: Vec<&'static str>,
    /// Distributed execution description.
    pub kind: QueryKind,
    /// Why the join strategy was chosen (`None` for non-join queries).
    pub strategy_note: Option<String>,
    /// Client-visible output column names.
    pub output_names: Vec<String>,
    /// Continuous-query settings, if any.
    pub continuous: Option<ContinuousSpec>,
}

/// Plans SQL statements against a catalog by running the four-stage
/// pipeline.
pub struct Planner<'a> {
    catalog: &'a Catalog,
    forced_strategy: Option<JoinStrategy>,
    observed: Option<&'a ObservedStats>,
    allow_bushy: bool,
}

impl<'a> Planner<'a> {
    /// A planner over the given catalog; join strategies are chosen by cost
    /// from the catalog's cardinality hints.
    pub fn new(catalog: &'a Catalog) -> Self {
        Planner { catalog, forced_strategy: None, observed: None, allow_bushy: false }
    }

    /// A planner that always uses a specific join strategy (bypassing the
    /// cost model — benchmarks compare strategies this way).
    pub fn with_join_strategy(catalog: &'a Catalog, strategy: JoinStrategy) -> Self {
        Planner { catalog, forced_strategy: Some(strategy), observed: None, allow_bushy: false }
    }

    /// Overlay trace-observed per-query statistics on the catalog estimates
    /// (the `feedback` re-planning path).
    pub fn observed(mut self, stats: &'a ObservedStats) -> Self {
        self.observed = Some(stats);
        self
    }

    /// Let the join-order enumerator consider bushy shapes (two independent
    /// subchains meeting at a rehash-merge stage) alongside left-deep chains.
    pub fn allow_bushy(mut self) -> Self {
        self.allow_bushy = true;
        self
    }

    /// Run the full pipeline over a parsed `SELECT`.
    pub fn plan_select(&self, stmt: &SelectStmt) -> Result<PlannedQuery, PlanError> {
        // Stage 1: bind names.
        let bound = Binder::new(self.catalog).bind_select(stmt)?;
        self.plan_bound(bound)
    }

    /// Stages 2–4 over an already-bound statement.
    fn plan_bound(&self, bound: BoundSelect) -> Result<PlannedQuery, PlanError> {
        // Stage 2: build the logical plan.
        let initial = logical::build_logical(&bound);
        // Stage 3: optimize.
        let optimized = Optimizer::new().optimize(initial.clone());
        // Stage 4: derive the distributed spec.
        let mut physical_planner = match self.forced_strategy {
            Some(s) => PhysicalPlanner::with_forced_strategy(self.catalog, s),
            None => PhysicalPlanner::new(self.catalog),
        };
        if let Some(stats) = self.observed {
            physical_planner = physical_planner.observed(stats);
        }
        if self.allow_bushy {
            physical_planner = physical_planner.allow_bushy();
        }
        let physical = physical_planner.plan(&bound, &optimized.plan)?;

        Ok(PlannedQuery {
            logical: optimized.plan,
            logical_initial: initial,
            rules_applied: optimized.applied,
            kind: physical.kind,
            strategy_note: physical.strategy_note,
            output_names: bound.output_names,
            continuous: bound.continuous,
        })
    }

    /// Plan a `SELECT` and render every pipeline stage (for `EXPLAIN`).
    pub fn explain_select(&self, stmt: &SelectStmt) -> Result<Explanation, PlanError> {
        let bound = Binder::new(self.catalog).bind_select(stmt)?;
        let binder_text = bound.describe();
        let planned = self.plan_bound(bound)?;
        Ok(Explanation {
            binder: binder_text,
            logical: planned.logical_initial.explain(),
            optimized: planned.logical.explain(),
            rules: planned.rules_applied.clone(),
            physical: render_kind(&planned.kind, planned.strategy_note.as_deref()),
        })
    }
}

/// The rendered output of every planning stage, as `EXPLAIN` prints it.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// Stage 1: resolved tables, join keys, output columns.
    pub binder: String,
    /// Stage 2: the logical plan before optimization.
    pub logical: String,
    /// Stage 3: the logical plan after optimization.
    pub optimized: String,
    /// Optimizer rules that fired.
    pub rules: Vec<&'static str>,
    /// Stage 4: the distributed physical plan.
    pub physical: String,
}

impl Explanation {
    /// The full multi-section report.
    pub fn render(&self) -> String {
        let rules = if self.rules.is_empty() {
            "(no rules fired)".to_string()
        } else {
            self.rules.join(", ")
        };
        format!(
            "== binder ==\n{}\
             == logical plan ==\n{}\
             == optimized logical plan ==\n{}rules applied: {}\n\
             == distributed physical plan ==\n{}",
            self.binder, self.logical, self.optimized, rules, self.physical
        )
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// One-line `EXPLAIN` rendering of an epoch-count window.
fn render_window(w: &crate::query::WindowSpec) -> String {
    if w.is_tumbling() {
        format!("window: tumbling {} epochs (results once per window)", w.size)
    } else {
        format!("window: sliding {} epochs, slide {} (results once per window)", w.size, w.slide)
    }
}

/// Render the distributed spec for `EXPLAIN`.
fn render_kind(kind: &QueryKind, strategy_note: Option<&str>) -> String {
    let mut out = String::new();
    match kind {
        QueryKind::Select { table, filter, project, order_by, limit } => {
            out.push_str(&format!("distributed select on '{table}'\n"));
            if let Some(f) = filter {
                out.push_str(&format!("  node-local filter: {f}\n"));
            }
            let cols: Vec<String> = project.iter().map(|e| e.to_string()).collect();
            out.push_str(&format!("  node-local project: [{}]\n", cols.join(", ")));
            push_order_limit(&mut out, order_by, *limit);
        }
        QueryKind::Aggregate {
            table,
            filter,
            group_exprs,
            aggs,
            having,
            order_by,
            limit,
            window,
            ..
        } => {
            out.push_str(&format!(
                "hierarchical aggregation on '{table}' ({} groups, {} aggregates)\n",
                group_exprs.len(),
                aggs.len()
            ));
            if let Some(f) = filter {
                out.push_str(&format!("  node-local filter: {f}\n"));
            }
            for a in aggs {
                match &a.arg {
                    Some(arg) => out.push_str(&format!("  agg {}({arg}) AS {}\n", a.func, a.name)),
                    None => out.push_str(&format!("  agg {}(*) AS {}\n", a.func, a.name)),
                }
            }
            if let Some(w) = window {
                out.push_str(&format!("  {}\n", render_window(w)));
            }
            if let Some(h) = having {
                out.push_str(&format!("  having (at root): {h}\n"));
            }
            push_order_limit(&mut out, order_by, *limit);
        }
        QueryKind::Join { left_table, left_filter, stages, aggregate, order_by, limit, .. } => {
            let tables: Vec<String> = std::iter::once(format!("'{left_table}'"))
                .chain(stages.iter().map(|s| format!("'{}'", s.right_table)))
                .collect();
            out.push_str(&format!(
                "distributed join {} ({} stage{})\n",
                tables.join(" ⋈ "),
                stages.len(),
                if stages.len() == 1 { "" } else { "s" }
            ));
            if let Some(note) = strategy_note {
                for line in note.lines() {
                    out.push_str(&format!("  chosen because: {line}\n"));
                }
            }
            if let Some(f) = left_filter {
                out.push_str(&format!("  driving-side filter (before shipping): {f}\n"));
            }
            let fmt_cols = |cols: &[usize]| {
                cols.iter().map(|c| format!("#{c}")).collect::<Vec<_>>().join(", ")
            };
            for (k, s) in stages.iter().enumerate() {
                out.push_str(&format!(
                    "  stage {k}: ⋈ '{}' on {} = {}\n    strategy: {:?}\n",
                    s.right_table, s.left_key, s.right_key, s.strategy
                ));
                if let Some(scan) = &s.left_scan {
                    out.push_str(&format!(
                        "    subchain root: drives from scan of '{}'",
                        scan.table
                    ));
                    if let Some(f) = &scan.filter {
                        out.push_str(&format!(" where {f}"));
                    }
                    out.push('\n');
                }
                if let Some(f) = &s.right_filter {
                    out.push_str(&format!("    right-side filter (before shipping): {f}\n"));
                }
                out.push_str(&format!(
                    "    shipped columns: left [{}], right [{}]\n",
                    fmt_cols(&s.left_ship_cols),
                    fmt_cols(&s.right_ship_cols)
                ));
                if let Some(f) = &s.post_filter {
                    out.push_str(&format!("    residual filter (at join site): {f}\n"));
                }
                if !s.out_cols.is_empty() {
                    out.push_str(&format!(
                        "    rehash to next stage: [{}]\n",
                        fmt_cols(&s.out_cols)
                    ));
                }
                if let Some((stage, side)) = s.out_to {
                    out.push_str(&format!(
                        "    output feeds stage {stage} side {side} ({})\n",
                        if side == 0 { "as its probing input" } else { "as its inner input" }
                    ));
                }
            }
            if let Some(agg) = aggregate {
                out.push_str(&format!(
                    "  aggregate above the final stage ({} groups, {} aggregates): {}\n",
                    agg.group_exprs.len(),
                    agg.aggs.len(),
                    if agg.hierarchical {
                        "hierarchical in-network partials"
                    } else {
                        "raw rows streamed to the origin"
                    }
                ));
                for a in &agg.aggs {
                    match &a.arg {
                        Some(arg) => {
                            out.push_str(&format!("    agg {}({arg}) AS {}\n", a.func, a.name))
                        }
                        None => out.push_str(&format!("    agg {}(*) AS {}\n", a.func, a.name)),
                    }
                }
                if let Some(w) = &agg.window {
                    out.push_str(&format!("    {}\n", render_window(w)));
                }
                if let Some(h) = &agg.having {
                    out.push_str(&format!(
                        "    having (at {}): {h}\n",
                        if agg.hierarchical { "root" } else { "origin" }
                    ));
                }
            }
            push_order_limit(&mut out, order_by, *limit);
        }
        QueryKind::Recursive { edges_table, source, max_depth, .. } => {
            out.push_str(&format!(
                "recursive expansion over '{edges_table}' from {source} (depth ≤ {max_depth})\n"
            ));
        }
    }
    out
}

fn push_order_limit(out: &mut String, order_by: &[crate::plan::SortKey], limit: Option<usize>) {
    if !order_by.is_empty() {
        let keys: Vec<String> = order_by
            .iter()
            .map(|k| format!("#{}{}", k.column, if k.desc { " DESC" } else { "" }))
            .collect();
        out.push_str(&format!("  order at origin: [{}]\n", keys.join(", ")));
    }
    if let Some(n) = limit {
        out.push_str(&format!("  limit at origin: {n}\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use crate::catalog::{TableDef, TableStats};
    use crate::expr::Expr;
    use crate::plan::SortKey;
    use crate::sql::parse_select;
    use crate::tuple::Schema;
    use crate::value::{DataType, Value};
    use pier_simnet::Duration;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(TableDef::new(
            "netstats",
            Schema::of(&[
                ("host", DataType::Str),
                ("out_rate", DataType::Float),
                ("in_rate", DataType::Float),
            ]),
            "host",
            Duration::from_secs(60),
        ));
        cat.register(TableDef::new(
            "intrusions",
            Schema::of(&[
                ("host", DataType::Str),
                ("rule_id", DataType::Int),
                ("description", DataType::Str),
                ("hits", DataType::Int),
            ]),
            "host",
            Duration::from_secs(120),
        ));
        cat.register(TableDef::new(
            "files",
            Schema::of(&[
                ("file_id", DataType::Int),
                ("name", DataType::Str),
                ("owner", DataType::Str),
            ]),
            "file_id",
            Duration::from_secs(300),
        ));
        cat.register(TableDef::new(
            "keywords",
            Schema::of(&[("keyword", DataType::Str), ("file_id", DataType::Int)]),
            "keyword",
            Duration::from_secs(300),
        ));
        cat
    }

    fn plan(sql: &str) -> PlannedQuery {
        let cat = catalog();
        let stmt = parse_select(sql).unwrap();
        Planner::new(&cat).plan_select(&stmt).unwrap()
    }

    fn plan_err(sql: &str) -> PlanError {
        let cat = catalog();
        let stmt = parse_select(sql).unwrap();
        Planner::new(&cat).plan_select(&stmt).unwrap_err()
    }

    #[test]
    fn simple_select_resolves_columns() {
        let p = plan("SELECT host, out_rate FROM netstats WHERE out_rate > 100");
        match &p.kind {
            QueryKind::Select { table, filter, project, .. } => {
                assert_eq!(table, "netstats");
                assert!(filter.is_some());
                assert_eq!(project, &vec![Expr::col(0), Expr::col(1)]);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(p.output_names, vec!["host", "out_rate"]);
        assert!(p.logical.explain().contains("Scan netstats"));
        assert!(p.logical_initial.explain().contains("Scan netstats"));
    }

    #[test]
    fn wildcard_expands_to_all_columns() {
        let p = plan("SELECT * FROM netstats");
        match &p.kind {
            QueryKind::Select { project, .. } => assert_eq!(project.len(), 3),
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(p.output_names, vec!["host", "out_rate", "in_rate"]);
    }

    #[test]
    fn figure1_continuous_sum_plan() {
        let p = plan("SELECT SUM(out_rate) AS total FROM netstats CONTINUOUS EVERY 5 SECONDS");
        let c = p.continuous.unwrap();
        assert_eq!(c.period, Duration::from_secs(5));
        assert_eq!(c.window, Duration::from_secs(5));
        match &p.kind {
            QueryKind::Aggregate { group_exprs, aggs, final_project, .. } => {
                assert!(group_exprs.is_empty());
                assert_eq!(aggs.len(), 1);
                assert_eq!(aggs[0].func, AggFunc::Sum);
                assert_eq!(aggs[0].arg, Some(Expr::col(1)));
                assert_eq!(final_project, &vec![0]);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(p.output_names, vec!["total"]);
    }

    #[test]
    fn table1_top10_plan() {
        let p = plan(
            "SELECT rule_id, description, SUM(hits) AS total FROM intrusions \
             GROUP BY rule_id, description ORDER BY SUM(hits) DESC LIMIT 10",
        );
        match &p.kind {
            QueryKind::Aggregate { group_exprs, aggs, order_by, limit, final_project, .. } => {
                assert_eq!(group_exprs, &vec![Expr::col(1), Expr::col(2)]);
                assert_eq!(aggs.len(), 1);
                assert_eq!(aggs[0].func, AggFunc::Sum);
                // ORDER BY SUM(hits) maps to the aggregate output column 2.
                assert_eq!(order_by, &vec![SortKey { column: 2, desc: true }]);
                assert_eq!(*limit, Some(10));
                assert_eq!(final_project, &vec![0, 1, 2]);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(p.output_names, vec!["rule_id", "description", "total"]);
    }

    #[test]
    fn order_by_alias_also_works() {
        let p = plan(
            "SELECT rule_id, SUM(hits) AS total FROM intrusions GROUP BY rule_id \
             ORDER BY total DESC LIMIT 3",
        );
        match &p.kind {
            QueryKind::Aggregate { order_by, .. } => {
                assert_eq!(order_by, &vec![SortKey { column: 1, desc: true }]);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn having_appends_hidden_aggregate() {
        let p =
            plan("SELECT host, COUNT(*) AS c FROM intrusions GROUP BY host HAVING SUM(hits) > 100");
        match &p.kind {
            QueryKind::Aggregate { aggs, having, .. } => {
                assert_eq!(aggs.len(), 2, "COUNT(*) plus the hidden SUM(hits)");
                let h = having.as_ref().unwrap();
                // HAVING references the hidden aggregate at output column 2.
                assert!(matches!(
                    h,
                    Expr::Binary { left, .. } if matches!(**left, Expr::Column(2))
                ));
            }
            other => panic!("unexpected kind {other:?}"),
        }
        // Hidden aggregates do not change the client-visible output.
        assert_eq!(p.output_names, vec!["host", "c"]);
    }

    #[test]
    fn join_plan_resolves_keys_and_pushes_filter() {
        let p = plan(
            "SELECT f.name, k.keyword FROM files f JOIN keywords k ON f.file_id = k.file_id \
             WHERE k.keyword = 'mp3'",
        );
        match &p.kind {
            QueryKind::Join { left_table, left_filter, stages, project, .. } => {
                assert_eq!(left_table, "files");
                assert_eq!(stages.len(), 1);
                let s = &stages[0];
                assert_eq!(s.right_table, "keywords");
                assert_eq!(s.left_key, Expr::col(0));
                assert_eq!(s.right_key, Expr::col(1));
                // The keyword predicate referenced only the right side, so
                // the optimizer pushed it below the join.
                assert!(left_filter.is_none());
                assert!(s.post_filter.is_none());
                assert_eq!(s.right_filter.as_ref().unwrap(), &Expr::col(0).eq(Expr::lit("mp3")));
                // Join-side projection pushdown: only f.name (left column 1)
                // and k.keyword (right column 0) ship; the projection is
                // renumbered over the narrowed concatenated schema.
                assert_eq!(s.left_ship_cols, vec![1]);
                assert_eq!(s.right_ship_cols, vec![0]);
                assert_eq!(project, &vec![Expr::col(0), Expr::col(1)]);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(p.output_names, vec!["f.name", "k.keyword"]);
        assert!(p.rules_applied.contains(&"predicate_pushdown"));
    }

    #[test]
    fn join_keys_accept_reversed_order() {
        let p = plan("SELECT f.name FROM files f JOIN keywords k ON k.file_id = f.file_id");
        let stages = p.kind.join_stages().expect("join plan");
        assert_eq!(stages[0].left_key, Expr::col(0));
        assert_eq!(stages[0].right_key, Expr::col(1));
    }

    #[test]
    fn join_strategy_is_configurable() {
        let cat = catalog();
        let stmt =
            parse_select("SELECT f.name FROM files f JOIN keywords k ON f.file_id = k.file_id")
                .unwrap();
        let p = Planner::with_join_strategy(&cat, JoinStrategy::FetchMatches)
            .plan_select(&stmt)
            .unwrap();
        // keywords is not partitioned on file_id, so a forced Fetch-Matches
        // is not executable there and degrades to symmetric rehash…
        let stages = p.kind.join_stages().expect("join plan");
        assert_eq!(stages[0].strategy, JoinStrategy::SymmetricHash);
        assert!(p.strategy_note.unwrap().contains("forced"));
        // …while the probe-shaped direction accepts the forced strategy.
        let stmt =
            parse_select("SELECT f.name FROM keywords k JOIN files f ON k.file_id = f.file_id")
                .unwrap();
        let p = Planner::with_join_strategy(&cat, JoinStrategy::FetchMatches)
            .plan_select(&stmt)
            .unwrap();
        let stages = p.kind.join_stages().expect("join plan");
        assert_eq!(stages[0].strategy, JoinStrategy::FetchMatches);
        assert!(p.strategy_note.unwrap().contains("forced"));
    }

    #[test]
    fn join_strategy_defaults_to_symmetric_without_stats() {
        let p = plan("SELECT f.name FROM files f JOIN keywords k ON f.file_id = k.file_id");
        let stages = p.kind.join_stages().expect("join plan");
        assert_eq!(stages[0].strategy, JoinStrategy::SymmetricHash);
    }

    #[test]
    fn cardinality_hints_drive_fetch_matches() {
        let mut cat = catalog();
        // keywords (outer, filtered by an equality) is tiny relative to the
        // files relation, which is partitioned on the join key file_id.
        cat.set_stats("keywords", TableStats::with_rows(5_000));
        cat.set_stats("files", TableStats::with_rows(2_000));
        let stmt = parse_select(
            "SELECT f.name FROM keywords k JOIN files f ON k.file_id = f.file_id \
             WHERE k.keyword = 'linux'",
        )
        .unwrap();
        let p = Planner::new(&cat).plan_select(&stmt).unwrap();
        match &p.kind {
            QueryKind::Join { left_filter, stages, .. } => {
                assert_eq!(stages[0].strategy, JoinStrategy::FetchMatches);
                assert!(left_filter.is_some(), "keyword filter must sit on the probing side");
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert!(p.strategy_note.unwrap().contains("Fetch-Matches"));
    }

    #[test]
    fn cardinality_hints_keep_symmetric_for_unfiltered_join() {
        let mut cat = catalog();
        cat.set_stats("keywords", TableStats::with_rows(5_000));
        cat.set_stats("files", TableStats::with_rows(2_000));
        // No filter: the whole outer relation would probe, so rehashing wins.
        let stmt =
            parse_select("SELECT f.name FROM keywords k JOIN files f ON k.file_id = f.file_id")
                .unwrap();
        let p = Planner::new(&cat).plan_select(&stmt).unwrap();
        let stages = p.kind.join_stages().expect("join plan");
        assert_eq!(stages[0].strategy, JoinStrategy::SymmetricHash);
    }

    #[test]
    fn cardinality_hints_pick_bloom_for_skewed_unpartitioned_join() {
        let mut cat = catalog();
        // Join keyed on a column that is NOT the inner table's partition key
        // (files ⋈ keywords on file_id: keywords is partitioned by keyword),
        // with a huge right side: the Bloom semi-join should win.
        cat.set_stats("files", TableStats::with_rows(500));
        cat.set_stats("keywords", TableStats::with_rows(50_000));
        let stmt =
            parse_select("SELECT f.name FROM files f JOIN keywords k ON f.file_id = k.file_id")
                .unwrap();
        let p = Planner::new(&cat).plan_select(&stmt).unwrap();
        let stages = p.kind.join_stages().expect("join plan");
        assert_eq!(stages[0].strategy, JoinStrategy::BloomFilter);
    }

    #[test]
    fn group_column_having_pushes_into_distributed_filter() {
        let p = plan("SELECT host, COUNT(*) AS c FROM intrusions GROUP BY host HAVING host = 'h1'");
        match &p.kind {
            QueryKind::Aggregate { filter, having, .. } => {
                // The group-column conjunct runs at every node's scan; no
                // residual HAVING remains for the root.
                assert_eq!(filter, &Some(Expr::col(0).eq(Expr::lit("h1"))));
                assert!(having.is_none());
            }
            other => panic!("unexpected kind {other:?}"),
        }
        // Mixed HAVING: group conjunct sinks, aggregate conjunct stays.
        let p = plan(
            "SELECT host, COUNT(*) AS c FROM intrusions GROUP BY host \
             HAVING host = 'h1' AND COUNT(*) > 2",
        );
        match &p.kind {
            QueryKind::Aggregate { filter, having, .. } => {
                assert!(filter.is_some());
                assert!(having.is_some(), "COUNT(*) conjunct must remain at the root");
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn distinct_keys_only_sharpen_partition_column_equality() {
        let mut cat = catalog();
        // keywords: 5000 rows over 2 distinct partition keys — an equality
        // on the partition column keeps half the table, so probing loses.
        cat.set_stats("keywords", TableStats::with_rows(5_000).distinct_keys(2));
        cat.set_stats("files", TableStats::with_rows(2_000));
        let stmt = parse_select(
            "SELECT f.name FROM keywords k JOIN files f ON k.file_id = f.file_id \
             WHERE k.keyword = 'linux'",
        )
        .unwrap();
        let p = Planner::new(&cat).plan_select(&stmt).unwrap();
        let stages = p.kind.join_stages().expect("join plan");
        assert_eq!(stages[0].strategy, JoinStrategy::SymmetricHash, "{:?}", p.strategy_note);

        // Equality on a non-partition column must NOT borrow the partition
        // key's distinct count: file_id is not keywords' partition column,
        // so the flat guess applies and the plan stays the same as without
        // distinct_keys.
        let mut cat2 = catalog();
        cat2.set_stats("keywords", TableStats::with_rows(5_000).distinct_keys(1_000_000));
        cat2.set_stats("files", TableStats::with_rows(2_000));
        let stmt = parse_select(
            "SELECT f.name FROM keywords k JOIN files f ON k.file_id = f.file_id \
             WHERE k.file_id = 7",
        )
        .unwrap();
        let p = Planner::new(&cat2).plan_select(&stmt).unwrap();
        // The flat 0.05 guess applies: ~250 probing tuples, not the ~1-row
        // estimate the million-key partition statistic would wrongly give.
        let note = p.strategy_note.clone().unwrap();
        assert!(note.contains("~250 probing tuples"), "{note}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(plan_err("SELECT * FROM missing").message.contains("unknown table"));
        assert!(plan_err("SELECT nope FROM netstats").message.contains("unknown column"));
        assert!(plan_err("SELECT host FROM intrusions GROUP BY rule_id")
            .message
            .contains("must appear in GROUP BY"));
        assert!(plan_err("SELECT *, COUNT(*) FROM netstats GROUP BY host")
            .message
            .contains("SELECT *"));
        assert!(plan_err("SELECT host FROM netstats ORDER BY missing")
            .message
            .contains("ORDER BY"));
        let e = plan_err("SELECT host, SUM(x) FROM netstats GROUP BY host");
        assert!(e.message.contains("unknown column"), "{}", e.message);
        assert!(format!("{e}").contains("planning error"));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let p = plan("SELECT COUNT(*), AVG(out_rate) FROM netstats WHERE out_rate > 0");
        match &p.kind {
            QueryKind::Aggregate { group_exprs, aggs, filter, .. } => {
                assert!(group_exprs.is_empty());
                assert_eq!(aggs.len(), 2);
                assert!(filter.is_some());
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(p.output_names, vec!["count", "avg_out_rate"]);
    }

    #[test]
    fn literal_defaults_order_limit_select() {
        let p = plan("SELECT host FROM netstats ORDER BY host LIMIT 5");
        match &p.kind {
            QueryKind::Select { order_by, limit, .. } => {
                assert_eq!(order_by, &vec![SortKey { column: 0, desc: false }]);
                assert_eq!(*limit, Some(5));
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn duplicate_aggregates_are_shared() {
        let p = plan(
            "SELECT rule_id, SUM(hits) AS a FROM intrusions GROUP BY rule_id ORDER BY SUM(hits) DESC",
        );
        match &p.kind {
            QueryKind::Aggregate { aggs, .. } => assert_eq!(aggs.len(), 1),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn recursive_kind_is_constructible() {
        // Not produced by SQL, but the algebraic interface builds it directly.
        let kind = QueryKind::Recursive {
            edges_table: "link".into(),
            src_col: 0,
            dst_col: 1,
            source: Value::str("n0"),
            max_depth: 4,
        };
        assert_eq!(kind.primary_table(), "link");
    }

    #[test]
    fn explain_renders_every_stage() {
        let cat = catalog();
        let stmt = parse_select(
            "SELECT f.name FROM files f JOIN keywords k ON f.file_id = k.file_id \
             WHERE k.keyword = 'mp3' AND 1 + 1 = 2",
        )
        .unwrap();
        let explanation = Planner::new(&cat).explain_select(&stmt).unwrap();
        let text = explanation.render();
        assert!(text.contains("== binder =="));
        assert!(text.contains("== logical plan =="));
        assert!(text.contains("== optimized logical plan =="));
        assert!(text.contains("== distributed physical plan =="));
        assert!(text.contains("constant_folding"), "{text}");
        assert!(text.contains("predicate_pushdown"), "{text}");
        assert!(text.contains("strategy:"), "{text}");
        // Display is render().
        assert_eq!(format!("{explanation}"), text);
    }
}
