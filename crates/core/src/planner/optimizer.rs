//! Stage 3 — the logical optimizer.
//!
//! Rewrites the initial [`LogicalPlan`] with a small rule framework.  Three
//! rules ship today:
//!
//! * **constant folding** — expression subtrees without column references are
//!   evaluated at plan time; boolean identities (`TRUE AND p`, `FALSE OR p`)
//!   are simplified and filters whose predicate folds to `TRUE` disappear;
//! * **predicate pushdown** — filter conjuncts sink below joins (onto the
//!   side whose columns they reference) and below aggregations (when they
//!   only touch group-by columns), so distributed scans ship fewer tuples;
//! * **projection pruning** — scans feeding a projection or an aggregation
//!   are narrowed to the columns actually used.
//!
//! Rules run in phases: folding and pushdown iterate to a fixpoint, then
//! pruning runs once, then a final folding pass cleans up.  Pruning is
//! deliberately not iterated against pushdown — the two would otherwise
//! oscillate (pushdown re-expands predicates through the pruning projection).

use crate::expr::{BinaryOp, Expr};
use crate::plan::LogicalPlan;
use crate::tuple::{Schema, Tuple};
use crate::value::Value;

/// Result of optimizing a plan: the rewritten tree plus the names of the
/// rules that changed it (in application order, for `EXPLAIN`).
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The rewritten plan.
    pub plan: LogicalPlan,
    /// Rules that fired at least once.
    pub applied: Vec<&'static str>,
}

/// A rewrite rule over logical plans.
pub trait Rule {
    /// Rule name, surfaced by `EXPLAIN`.
    fn name(&self) -> &'static str;
    /// Rewrite the plan, returning `None` when nothing changed.
    fn rewrite(&self, plan: &LogicalPlan) -> Option<LogicalPlan>;
}

/// Rule: evaluate constant expression subtrees.
pub struct ConstantFolding;

impl Rule for ConstantFolding {
    fn name(&self) -> &'static str {
        "constant_folding"
    }

    fn rewrite(&self, plan: &LogicalPlan) -> Option<LogicalPlan> {
        let new = fold_plan(plan);
        (new != *plan).then_some(new)
    }
}

/// Rule: sink filter conjuncts below joins and aggregations.
pub struct PredicatePushdown;

impl Rule for PredicatePushdown {
    fn name(&self) -> &'static str {
        "predicate_pushdown"
    }

    fn rewrite(&self, plan: &LogicalPlan) -> Option<LogicalPlan> {
        let new = push_plan(plan.clone());
        (new != *plan).then_some(new)
    }
}

/// Rule: narrow scans to the columns their consumers actually use.
pub struct ProjectionPruning;

impl Rule for ProjectionPruning {
    fn name(&self) -> &'static str {
        "projection_pruning"
    }

    fn rewrite(&self, plan: &LogicalPlan) -> Option<LogicalPlan> {
        let new = prune_plan(plan.clone());
        (new != *plan).then_some(new)
    }
}

/// The optimizer: a fixed pipeline of rewrite phases.
pub struct Optimizer {
    fixpoint_rules: Vec<Box<dyn Rule>>,
    late_rules: Vec<Box<dyn Rule>>,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer {
            fixpoint_rules: vec![Box::new(ConstantFolding), Box::new(PredicatePushdown)],
            late_rules: vec![Box::new(ProjectionPruning), Box::new(ConstantFolding)],
        }
    }
}

impl Optimizer {
    /// The default rule pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Optimize a plan, recording which rules fired.
    pub fn optimize(&self, plan: LogicalPlan) -> Optimized {
        let mut plan = plan;
        let mut applied = Vec::new();
        // Phase 1: fold + pushdown to a (bounded) fixpoint.
        for _ in 0..4 {
            let mut changed = false;
            for rule in &self.fixpoint_rules {
                if let Some(new) = rule.rewrite(&plan) {
                    plan = new;
                    changed = true;
                    if !applied.contains(&rule.name()) {
                        applied.push(rule.name());
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Phase 2: single pruning + cleanup pass.
        for rule in &self.late_rules {
            if let Some(new) = rule.rewrite(&plan) {
                plan = new;
                if !applied.contains(&rule.name()) {
                    applied.push(rule.name());
                }
            }
        }
        Optimized { plan, applied }
    }
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Fold constant subtrees of one expression.
pub fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
        Expr::Binary { op, left, right } => {
            let l = fold_expr(left);
            let r = fold_expr(right);
            // Boolean identities that are valid under SQL three-valued logic.
            match op {
                BinaryOp::And => {
                    if let Expr::Literal(Value::Bool(true)) = l {
                        return r;
                    }
                    if let Expr::Literal(Value::Bool(true)) = r {
                        return l;
                    }
                    // FALSE AND anything (even NULL) is FALSE.
                    if matches!(l, Expr::Literal(Value::Bool(false)))
                        || matches!(r, Expr::Literal(Value::Bool(false)))
                    {
                        return Expr::Literal(Value::Bool(false));
                    }
                }
                BinaryOp::Or => {
                    if let Expr::Literal(Value::Bool(false)) = l {
                        return r;
                    }
                    if let Expr::Literal(Value::Bool(false)) = r {
                        return l;
                    }
                    if matches!(l, Expr::Literal(Value::Bool(true)))
                        || matches!(r, Expr::Literal(Value::Bool(true)))
                    {
                        return Expr::Literal(Value::Bool(true));
                    }
                }
                _ => {}
            }
            let folded = Expr::Binary { op: *op, left: Box::new(l), right: Box::new(r) };
            eval_if_constant(folded)
        }
        Expr::Unary { op, expr } => {
            let folded = Expr::Unary { op: *op, expr: Box::new(fold_expr(expr)) };
            eval_if_constant(folded)
        }
        Expr::Func { func, arg } => {
            let folded = Expr::Func { func: *func, arg: Box::new(fold_expr(arg)) };
            eval_if_constant(folded)
        }
        Expr::Like { expr, pattern } => {
            let folded = Expr::Like { expr: Box::new(fold_expr(expr)), pattern: pattern.clone() };
            eval_if_constant(folded)
        }
    }
}

fn eval_if_constant(e: Expr) -> Expr {
    if e.is_constant() && !matches!(e, Expr::Literal(_)) {
        Expr::Literal(e.eval(&Tuple::new(Vec::new())))
    } else {
        e
    }
}

fn fold_plan(plan: &LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } => plan.clone(),
        LogicalPlan::Filter { input, predicate } => {
            let input = fold_plan(input);
            let predicate = fold_expr(predicate);
            // A tautological filter disappears entirely.
            if matches!(predicate, Expr::Literal(Value::Bool(true))) {
                input
            } else {
                LogicalPlan::Filter { input: Box::new(input), predicate }
            }
        }
        LogicalPlan::Project { input, exprs, schema } => LogicalPlan::Project {
            input: Box::new(fold_plan(input)),
            exprs: exprs.iter().map(fold_expr).collect(),
            schema: schema.clone(),
        },
        LogicalPlan::Join { left, right, left_key, right_key } => LogicalPlan::Join {
            left: Box::new(fold_plan(left)),
            right: Box::new(fold_plan(right)),
            left_key: fold_expr(left_key),
            right_key: fold_expr(right_key),
        },
        LogicalPlan::MultiJoin { inputs, preds } => LogicalPlan::MultiJoin {
            inputs: inputs.iter().map(fold_plan).collect(),
            preds: preds.clone(),
        },
        LogicalPlan::Aggregate { input, group_exprs, aggs, schema } => LogicalPlan::Aggregate {
            input: Box::new(fold_plan(input)),
            group_exprs: group_exprs.iter().map(fold_expr).collect(),
            aggs: aggs
                .iter()
                .map(|a| crate::plan::AggExpr {
                    func: a.func,
                    arg: a.arg.as_ref().map(fold_expr),
                    name: a.name.clone(),
                })
                .collect(),
            schema: schema.clone(),
        },
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(fold_plan(input)), keys: keys.clone() }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(fold_plan(input)), n: *n }
        }
    }
}

// ---------------------------------------------------------------------------
// Predicate pushdown
// ---------------------------------------------------------------------------

/// Split a predicate into its AND-ed conjuncts.
pub fn split_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary { op: BinaryOp::And, left, right } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

/// AND together a list of conjuncts (`None` when the list is empty).
pub fn conjoin(mut exprs: Vec<Expr>) -> Option<Expr> {
    let first = if exprs.is_empty() { return None } else { exprs.remove(0) };
    Some(exprs.into_iter().fold(first, |acc, e| acc.and(e)))
}

/// Split a predicate over an aggregate's *output* schema into the part that
/// can run before aggregation (rewritten onto the input schema) and the
/// residual.  A conjunct is pushable when it only references group-by
/// columns whose grouping expressions are plain column references.
pub fn split_group_having(predicate: &Expr, group_exprs: &[Expr]) -> (Option<Expr>, Option<Expr>) {
    let mut conjuncts = Vec::new();
    split_conjuncts(predicate.clone(), &mut conjuncts);
    let mut below = Vec::new();
    let mut above = Vec::new();
    for c in conjuncts {
        let cols = c.referenced_columns();
        let pushable = !cols.is_empty()
            && cols
                .iter()
                .all(|&i| i < group_exprs.len() && matches!(group_exprs[i], Expr::Column(_)));
        if pushable {
            below.push(c.substitute_columns(&|i| group_exprs[i].clone()));
        } else {
            above.push(c);
        }
    }
    (conjoin(below), conjoin(above))
}

fn push_plan(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_plan(*input);
            match input {
                // Adjacent filters merge so later rounds see one predicate.
                LogicalPlan::Filter { input: inner, predicate: p_inner } => {
                    LogicalPlan::Filter { input: inner, predicate: p_inner.and(predicate) }
                }
                LogicalPlan::Join { left, right, left_key, right_key } => {
                    let left_arity = left.schema().arity();
                    let mut conjuncts = Vec::new();
                    split_conjuncts(predicate, &mut conjuncts);
                    let mut left_parts = Vec::new();
                    let mut right_parts = Vec::new();
                    let mut residual = Vec::new();
                    for c in conjuncts {
                        let cols = c.referenced_columns();
                        if cols.iter().all(|&i| i < left_arity) && !cols.is_empty() {
                            left_parts.push(c);
                        } else if cols.iter().all(|&i| i >= left_arity) && !cols.is_empty() {
                            // Rebase onto the right schema.
                            right_parts
                                .push(c.substitute_columns(&|i| Expr::Column(i - left_arity)));
                        } else {
                            residual.push(c);
                        }
                    }
                    let left = match conjoin(left_parts) {
                        Some(p) => Box::new(LogicalPlan::Filter { input: left, predicate: p }),
                        None => left,
                    };
                    let right = match conjoin(right_parts) {
                        Some(p) => Box::new(LogicalPlan::Filter { input: right, predicate: p }),
                        None => right,
                    };
                    let join = LogicalPlan::Join { left, right, left_key, right_key };
                    match conjoin(residual) {
                        Some(p) => LogicalPlan::Filter { input: Box::new(join), predicate: p },
                        None => join,
                    }
                }
                LogicalPlan::MultiJoin { inputs, preds } => {
                    // Conjuncts that reference a single input sink onto that
                    // input (rebased to its local schema); the rest stays
                    // above the join.
                    let mut offsets = Vec::with_capacity(inputs.len() + 1);
                    let mut acc = 0;
                    for input in &inputs {
                        offsets.push(acc);
                        acc += input.schema().arity();
                    }
                    offsets.push(acc);
                    let input_of = |col: usize| crate::plan::relation_of_column(&offsets, col);
                    let mut conjuncts = Vec::new();
                    split_conjuncts(predicate, &mut conjuncts);
                    let mut per_input: Vec<Vec<Expr>> = vec![Vec::new(); inputs.len()];
                    let mut residual = Vec::new();
                    for c in conjuncts {
                        let cols = c.referenced_columns();
                        match cols.split_first() {
                            Some((&first, rest)) => {
                                let i = input_of(first);
                                if rest.iter().all(|&col| input_of(col) == i) {
                                    per_input[i].push(
                                        c.substitute_columns(&|col| Expr::Column(col - offsets[i])),
                                    );
                                } else {
                                    residual.push(c);
                                }
                            }
                            None => residual.push(c),
                        }
                    }
                    let inputs = inputs
                        .into_iter()
                        .zip(per_input)
                        .map(|(input, parts)| match conjoin(parts) {
                            Some(p) => LogicalPlan::Filter { input: Box::new(input), predicate: p },
                            None => input,
                        })
                        .collect();
                    let join = LogicalPlan::MultiJoin { inputs, preds };
                    match conjoin(residual) {
                        Some(p) => LogicalPlan::Filter { input: Box::new(join), predicate: p },
                        None => join,
                    }
                }
                LogicalPlan::Aggregate { input: agg_in, group_exprs, aggs, schema } => {
                    // A HAVING conjunct that only touches group-by columns
                    // whose grouping expressions are plain column references
                    // can run before aggregation.
                    let (below, above) = split_group_having(&predicate, &group_exprs);
                    let agg_in = match below {
                        Some(p) => Box::new(LogicalPlan::Filter { input: agg_in, predicate: p }),
                        None => agg_in,
                    };
                    let agg = LogicalPlan::Aggregate { input: agg_in, group_exprs, aggs, schema };
                    match above {
                        Some(p) => LogicalPlan::Filter { input: Box::new(agg), predicate: p },
                        None => agg,
                    }
                }
                other => LogicalPlan::Filter { input: Box::new(other), predicate },
            }
        }
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::Project { input, exprs, schema } => {
            LogicalPlan::Project { input: Box::new(push_plan(*input)), exprs, schema }
        }
        LogicalPlan::Join { left, right, left_key, right_key } => LogicalPlan::Join {
            left: Box::new(push_plan(*left)),
            right: Box::new(push_plan(*right)),
            left_key,
            right_key,
        },
        LogicalPlan::MultiJoin { inputs, preds } => {
            LogicalPlan::MultiJoin { inputs: inputs.into_iter().map(push_plan).collect(), preds }
        }
        LogicalPlan::Aggregate { input, group_exprs, aggs, schema } => {
            LogicalPlan::Aggregate { input: Box::new(push_plan(*input)), group_exprs, aggs, schema }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(push_plan(*input)), keys }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(push_plan(*input)), n }
        }
    }
}

// ---------------------------------------------------------------------------
// Projection pruning
// ---------------------------------------------------------------------------

/// If `input` is `Scan` or `Filter(Scan)` and only `outer_cols` of the scan
/// schema are needed (plus whatever the filter itself reads), rewrite it to
/// scan-project-filter over the narrowed column set.  Returns the rewritten
/// input and the old→new column mapping, or `None` when nothing can shrink.
fn narrow_scan(input: &LogicalPlan, outer_cols: &[usize]) -> Option<(LogicalPlan, Vec<usize>)> {
    let (scan_table, scan_schema, filter) = match input {
        LogicalPlan::Scan { table, schema } => (table.clone(), schema.clone(), None),
        LogicalPlan::Filter { input: inner, predicate } => match &**inner {
            LogicalPlan::Scan { table, schema } => {
                (table.clone(), schema.clone(), Some(predicate.clone()))
            }
            _ => return None,
        },
        _ => return None,
    };

    let mut used: Vec<usize> = outer_cols.to_vec();
    if let Some(f) = &filter {
        used.extend(f.referenced_columns());
    }
    used.sort_unstable();
    used.dedup();
    if used.len() >= scan_schema.arity() {
        return None;
    }

    // old index -> new index within the narrowed schema.
    let mut mapping = vec![usize::MAX; scan_schema.arity()];
    for (new, &old) in used.iter().enumerate() {
        mapping[old] = new;
    }

    let narrow_fields: Vec<crate::tuple::Field> =
        used.iter().filter_map(|&i| scan_schema.field(i).cloned()).collect();
    let narrow = LogicalPlan::Project {
        input: Box::new(LogicalPlan::Scan { table: scan_table, schema: scan_schema }),
        exprs: used.iter().map(|&i| Expr::col(i)).collect(),
        schema: Schema::new(narrow_fields),
    };
    let rewritten = match filter {
        Some(p) => LogicalPlan::Filter {
            input: Box::new(narrow),
            predicate: p.substitute_columns(&|i| Expr::Column(mapping[i])),
        },
        None => narrow,
    };
    Some((rewritten, mapping))
}

fn prune_plan(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(prune_plan(*input)), predicate }
        }
        LogicalPlan::Project { input, exprs, schema } => {
            let input = prune_plan(*input);
            let mut outer_cols = Vec::new();
            for e in &exprs {
                outer_cols.extend(e.referenced_columns());
            }
            match narrow_scan(&input, &outer_cols) {
                Some((new_input, mapping)) => LogicalPlan::Project {
                    input: Box::new(new_input),
                    exprs: exprs
                        .iter()
                        .map(|e| e.substitute_columns(&|i| Expr::Column(mapping[i])))
                        .collect(),
                    schema,
                },
                None => LogicalPlan::Project { input: Box::new(input), exprs, schema },
            }
        }
        LogicalPlan::Join { left, right, left_key, right_key } => LogicalPlan::Join {
            left: Box::new(prune_plan(*left)),
            right: Box::new(prune_plan(*right)),
            left_key,
            right_key,
        },
        // Scans under a MultiJoin keep their full width: narrowing is the
        // distributed planner's job (per-stage ship columns), and a local
        // projection here would invalidate the global predicate numbering.
        LogicalPlan::MultiJoin { .. } => plan,
        LogicalPlan::Aggregate { input, group_exprs, aggs, schema } => {
            let input = prune_plan(*input);
            let mut outer_cols = Vec::new();
            for g in &group_exprs {
                outer_cols.extend(g.referenced_columns());
            }
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    outer_cols.extend(arg.referenced_columns());
                }
            }
            match narrow_scan(&input, &outer_cols) {
                Some((new_input, mapping)) => LogicalPlan::Aggregate {
                    input: Box::new(new_input),
                    group_exprs: group_exprs
                        .iter()
                        .map(|e| e.substitute_columns(&|i| Expr::Column(mapping[i])))
                        .collect(),
                    aggs: aggs
                        .iter()
                        .map(|a| crate::plan::AggExpr {
                            func: a.func,
                            arg: a
                                .arg
                                .as_ref()
                                .map(|e| e.substitute_columns(&|i| Expr::Column(mapping[i]))),
                            name: a.name.clone(),
                        })
                        .collect(),
                    schema,
                },
                None => {
                    LogicalPlan::Aggregate { input: Box::new(input), group_exprs, aggs, schema }
                }
            }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(prune_plan(*input)), keys }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(prune_plan(*input)), n }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use crate::plan::AggExpr;
    use crate::value::DataType;

    fn scan3() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::of(&[("a", DataType::Int), ("b", DataType::Int), ("c", DataType::Str)]),
        }
    }

    fn scan2(table: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            schema: Schema::of(&[("x", DataType::Int), ("y", DataType::Int)]),
        }
    }

    #[test]
    fn constant_folding_evaluates_literal_subtrees() {
        // WHERE (1 + 1 = 2) AND a > 3   ==>   WHERE a > 3
        let predicate = Expr::lit(1i64)
            .binary(BinaryOp::Add, Expr::lit(1i64))
            .eq(Expr::lit(2i64))
            .and(Expr::col(0).gt(Expr::lit(3i64)));
        let plan = LogicalPlan::Filter { input: Box::new(scan3()), predicate };
        let rewritten = ConstantFolding.rewrite(&plan).expect("folding must fire");
        match rewritten {
            LogicalPlan::Filter { predicate, .. } => {
                assert_eq!(predicate, Expr::col(0).gt(Expr::lit(3i64)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constant_folding_removes_tautological_filter() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan3()),
            predicate: Expr::lit(2i64).gt(Expr::lit(1i64)),
        };
        let rewritten = ConstantFolding.rewrite(&plan).expect("folding must fire");
        assert!(matches!(rewritten, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn constant_folding_simplifies_projection_arithmetic() {
        let plan = LogicalPlan::Project {
            input: Box::new(scan3()),
            exprs: vec![Expr::lit(2i64).binary(BinaryOp::Mul, Expr::lit(3i64)), Expr::col(1)],
            schema: Schema::of(&[("six", DataType::Int), ("b", DataType::Int)]),
        };
        let rewritten = ConstantFolding.rewrite(&plan).expect("folding must fire");
        match rewritten {
            LogicalPlan::Project { exprs, .. } => {
                assert_eq!(exprs[0], Expr::lit(6i64));
                assert_eq!(exprs[1], Expr::col(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constant_folding_is_idempotent_on_clean_plans() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan3()),
            predicate: Expr::col(0).gt(Expr::lit(3i64)),
        };
        assert!(ConstantFolding.rewrite(&plan).is_none());
    }

    #[test]
    fn predicate_pushdown_splits_filter_across_join() {
        // Filter (left.x > 1 AND right.y = 5 AND left.x < right.x) over Join.
        let join = LogicalPlan::Join {
            left: Box::new(scan2("l")),
            right: Box::new(scan2("r")),
            left_key: Expr::col(0),
            right_key: Expr::col(0),
        };
        let predicate = Expr::col(0)
            .gt(Expr::lit(1i64))
            .and(Expr::col(3).eq(Expr::lit(5i64)))
            .and(Expr::col(0).binary(BinaryOp::Lt, Expr::col(2)));
        let plan = LogicalPlan::Filter { input: Box::new(join), predicate };
        let rewritten = PredicatePushdown.rewrite(&plan).expect("pushdown must fire");

        // Residual mixed conjunct stays above the join.
        let LogicalPlan::Filter { input, predicate: residual } = rewritten else {
            panic!("expected residual filter above the join");
        };
        assert_eq!(residual, Expr::col(0).binary(BinaryOp::Lt, Expr::col(2)));
        let LogicalPlan::Join { left, right, .. } = *input else {
            panic!("expected join under the residual filter");
        };
        // Left conjunct kept its column numbering.
        match *left {
            LogicalPlan::Filter { predicate, .. } => {
                assert_eq!(predicate, Expr::col(0).gt(Expr::lit(1i64)));
            }
            other => panic!("left side not filtered: {other:?}"),
        }
        // Right conjunct was rebased from joined column 3 to right column 1.
        match *right {
            LogicalPlan::Filter { predicate, .. } => {
                assert_eq!(predicate, Expr::col(1).eq(Expr::lit(5i64)));
            }
            other => panic!("right side not filtered: {other:?}"),
        }
    }

    #[test]
    fn predicate_pushdown_sinks_group_column_having() {
        // HAVING x = 7 AND COUNT(*) > 2 over GROUP BY x: the x conjunct can
        // run before aggregation, the COUNT conjunct cannot.
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan2("t")),
            group_exprs: vec![Expr::col(0)],
            aggs: vec![AggExpr { func: AggFunc::Count, arg: None, name: "count".into() }],
            schema: Schema::of(&[("x", DataType::Int), ("count", DataType::Int)]),
        };
        let predicate = Expr::col(0).eq(Expr::lit(7i64)).and(Expr::col(1).gt(Expr::lit(2i64)));
        let plan = LogicalPlan::Filter { input: Box::new(agg), predicate };
        let rewritten = PredicatePushdown.rewrite(&plan).expect("pushdown must fire");

        let LogicalPlan::Filter { input, predicate: above } = rewritten else {
            panic!("expected the COUNT conjunct to stay above");
        };
        assert_eq!(above, Expr::col(1).gt(Expr::lit(2i64)));
        let LogicalPlan::Aggregate { input: agg_in, .. } = *input else {
            panic!("expected aggregate");
        };
        match *agg_in {
            LogicalPlan::Filter { predicate, .. } => {
                assert_eq!(predicate, Expr::col(0).eq(Expr::lit(7i64)));
            }
            other => panic!("group-column conjunct was not pushed: {other:?}"),
        }
    }

    #[test]
    fn predicate_pushdown_merges_stacked_filters() {
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan3()),
                predicate: Expr::col(0).gt(Expr::lit(1i64)),
            }),
            predicate: Expr::col(1).gt(Expr::lit(2i64)),
        };
        let rewritten = PredicatePushdown.rewrite(&plan).expect("merge must fire");
        match rewritten {
            LogicalPlan::Filter { input, predicate } => {
                assert!(matches!(*input, LogicalPlan::Scan { .. }));
                assert_eq!(
                    predicate,
                    Expr::col(0).gt(Expr::lit(1i64)).and(Expr::col(1).gt(Expr::lit(2i64)))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn projection_pruning_narrows_scan_under_project() {
        // SELECT b FROM t WHERE a > 1: only columns a and b are needed of the
        // three-column scan.
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan3()),
                predicate: Expr::col(0).gt(Expr::lit(1i64)),
            }),
            exprs: vec![Expr::col(1)],
            schema: Schema::of(&[("b", DataType::Int)]),
        };
        let rewritten = ProjectionPruning.rewrite(&plan).expect("pruning must fire");
        let LogicalPlan::Project { input, exprs, .. } = rewritten else {
            panic!("expected outer project");
        };
        // The outer projection's column was renumbered into the narrow schema.
        assert_eq!(exprs, vec![Expr::col(1)]);
        let LogicalPlan::Filter { input: narrow, predicate } = *input else {
            panic!("expected filter over the narrowed scan");
        };
        assert_eq!(predicate, Expr::col(0).gt(Expr::lit(1i64)));
        let LogicalPlan::Project { exprs: narrow_exprs, schema, input: scan } = *narrow else {
            panic!("expected the narrowing projection");
        };
        assert_eq!(narrow_exprs, vec![Expr::col(0), Expr::col(1)]);
        assert_eq!(schema.names(), vec!["a", "b"]);
        assert!(matches!(*scan, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn projection_pruning_narrows_scan_under_aggregate() {
        // SELECT c, COUNT(*) ... GROUP BY c: only column c is needed.
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan3()),
            group_exprs: vec![Expr::col(2)],
            aggs: vec![AggExpr { func: AggFunc::Count, arg: None, name: "count".into() }],
            schema: Schema::of(&[("c", DataType::Str), ("count", DataType::Int)]),
        };
        let rewritten = ProjectionPruning.rewrite(&plan).expect("pruning must fire");
        let LogicalPlan::Aggregate { input, group_exprs, .. } = rewritten else {
            panic!("expected aggregate");
        };
        assert_eq!(group_exprs, vec![Expr::col(0)], "group column renumbered");
        let LogicalPlan::Project { exprs, .. } = *input else {
            panic!("expected narrowing projection");
        };
        assert_eq!(exprs, vec![Expr::col(2)]);
    }

    #[test]
    fn projection_pruning_leaves_full_width_scans_alone() {
        let plan = LogicalPlan::Project {
            input: Box::new(scan3()),
            exprs: vec![Expr::col(0), Expr::col(1), Expr::col(2)],
            schema: Schema::of(&[("a", DataType::Int), ("b", DataType::Int), ("c", DataType::Str)]),
        };
        assert!(ProjectionPruning.rewrite(&plan).is_none());
    }

    #[test]
    fn optimizer_pipeline_records_applied_rules() {
        let predicate = Expr::lit(1i64).eq(Expr::lit(1i64)).and(Expr::col(3).eq(Expr::lit(5i64)));
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(scan2("l")),
                right: Box::new(scan2("r")),
                left_key: Expr::col(0),
                right_key: Expr::col(0),
            }),
            predicate,
        };
        let out = Optimizer::new().optimize(plan);
        assert!(out.applied.contains(&"constant_folding"));
        assert!(out.applied.contains(&"predicate_pushdown"));
        // The tautological conjunct vanished and the equality moved to the
        // right side; no filter remains above the join.
        assert!(matches!(out.plan, LogicalPlan::Join { .. }));
    }

    #[test]
    fn split_and_conjoin_round_trip() {
        let e = Expr::col(0)
            .gt(Expr::lit(1i64))
            .and(Expr::col(1).eq(Expr::lit(2i64)))
            .and(Expr::col(2).eq(Expr::lit(3i64)));
        let mut parts = Vec::new();
        split_conjuncts(e.clone(), &mut parts);
        assert_eq!(parts.len(), 3);
        assert_eq!(conjoin(parts).unwrap(), e);
        assert_eq!(conjoin(Vec::new()), None);
    }
}
