//! Stage 2 — the logical planner.
//!
//! Translates a [`BoundSelect`] into a [`LogicalPlan`] operator tree.  The
//! construction is purely structural (names were resolved by the binder, no
//! costs are consulted): scans at the leaves, filters directly above them,
//! then joins/aggregation, then sort / limit / final projection.  The tree it
//! emits is the *initial* plan — the optimizer rewrites it before the
//! physical planner or the centralized reference evaluator consume it.

use crate::plan::LogicalPlan;

use super::binder::BoundSelect;

/// Build the initial (unoptimized) logical plan for a bound statement.
///
/// Joins become a single n-ary [`LogicalPlan::MultiJoin`] node over the
/// bound relation list — two-way joins included, so the optimizer and the
/// join-order enumerator see one uniform shape.
pub fn build_logical(bound: &BoundSelect) -> LogicalPlan {
    let scan = |t: &crate::planner::binder::BoundTable| LogicalPlan::Scan {
        table: t.name.clone(),
        schema: t.schema.clone(),
    };
    let mut plan = if bound.is_join() {
        let offsets = bound.offsets();
        LogicalPlan::MultiJoin {
            inputs: bound.relations.iter().map(scan).collect(),
            preds: bound.join_preds.iter().map(|p| p.global(&offsets)).collect(),
        }
    } else {
        scan(bound.primary())
    };

    if let Some(predicate) = &bound.filter {
        plan = LogicalPlan::Filter { input: Box::new(plan), predicate: predicate.clone() };
    }

    match &bound.aggregate {
        Some(agg) => {
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group_exprs: agg.group_exprs.clone(),
                aggs: agg.aggs.clone(),
                schema: agg.schema.clone(),
            };
            if let Some(h) = &agg.having {
                plan = LogicalPlan::Filter { input: Box::new(plan), predicate: h.clone() };
            }
            if !bound.order_by.is_empty() {
                plan = LogicalPlan::Sort { input: Box::new(plan), keys: bound.order_by.clone() };
            }
            if let Some(n) = bound.limit {
                plan = LogicalPlan::Limit { input: Box::new(plan), n };
            }
            // Final projection to the select-list order.
            let exprs = agg.final_project.iter().map(|&i| crate::expr::Expr::col(i)).collect();
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs,
                schema: bound.project_schema.clone(),
            };
        }
        None => {
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs: bound.projections.clone(),
                schema: bound.project_schema.clone(),
            };
            if !bound.order_by.is_empty() {
                plan = LogicalPlan::Sort { input: Box::new(plan), keys: bound.order_by.clone() };
            }
            if let Some(n) = bound.limit {
                plan = LogicalPlan::Limit { input: Box::new(plan), n };
            }
        }
    }

    plan
}
