//! Stage 4 — the physical / distributed planner.
//!
//! Turns a bound statement plus its optimized logical plan into the per-node
//! [`QueryKind`] spec that is disseminated over the DHT.  This is the layer
//! that makes *distributed* decisions:
//!
//! * multi-way joins are lowered into a **chain of distributed join stages**
//!   in the order picked by the [join-order enumerator](super::joinorder)
//!   — each stage's output is rehashed by the next stage's key into that
//!   stage's DHT namespace (PIER's multihop joins composed);
//! * per-stage join-strategy selection (symmetric rehash vs Fetch-Matches
//!   vs Bloom-filter semi-join) is **costed from catalog cardinality hints**
//!   ([`TableStats`](crate::catalog::TableStats)) and filter selectivities;
//! * predicates the optimizer pushed below the join are carried as per-side
//!   filters so every node filters *before* shipping tuples;
//! * join-side projection pushdown runs per stage: each stage ships only
//!   the columns that survive to later stages, the final projection, or a
//!   stage residual filter;
//! * Fetch-Matches is only eligible when the inner relation is partitioned
//!   on the join key (the DHT can then answer probes with a single `get`).

use crate::catalog::Catalog;
use crate::expr::Expr;
use crate::plan::{AggExpr, LogicalPlan};
use crate::query::{BranchScan, JoinAggregate, JoinStage, JoinStrategy, QueryKind};
use std::collections::BTreeSet;

use super::binder::BoundSelect;
use super::joinorder::{choose_order_with, BushyChoice, ObservedStats, OrderPlan, StageChoice};
use super::optimizer::{conjoin, fold_expr, split_conjuncts, split_group_having};
use super::PlanError;

/// Row-count estimate used when the catalog has no statistics for a table.
pub const DEFAULT_ROW_ESTIMATE: f64 = 1024.0;

/// Relative cost of one Fetch-Matches DHT probe versus rehashing one tuple
/// (a probe is a routed request *and* a response).
pub(crate) const FETCH_PROBE_COST: f64 = 4.0;

/// Fallback selectivity of an equality predicate when the catalog has no
/// distinct-key estimate for the table.
pub(crate) const DEFAULT_EQ_SELECTIVITY: f64 = 0.05;

/// A Bloom join only pays off when the prunable side is at least this large.
pub(crate) const BLOOM_MIN_RIGHT: f64 = 512.0;

/// How much bigger the right side must be (relative to the left) before the
/// two-phase Bloom protocol beats plain symmetric rehashing.
pub(crate) const BLOOM_SKEW: f64 = 4.0;

/// The physical planner's output: the distributed spec plus a human-readable
/// note on the join decisions (surfaced by `EXPLAIN`).
#[derive(Clone, Debug)]
pub struct PhysicalPlan {
    /// Per-node work description.
    pub kind: QueryKind,
    /// Why the join order and per-stage strategies were chosen (`None` for
    /// non-join queries; one line per stage for joins).
    pub strategy_note: Option<String>,
}

/// Chooses distributed execution strategies from catalog statistics.
pub struct PhysicalPlanner<'a> {
    catalog: &'a Catalog,
    forced_strategy: Option<JoinStrategy>,
    observed: Option<&'a ObservedStats>,
    allow_bushy: bool,
}

impl<'a> PhysicalPlanner<'a> {
    /// A planner that costs strategies from the catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        PhysicalPlanner { catalog, forced_strategy: None, observed: None, allow_bushy: false }
    }

    /// A planner that always uses `strategy` for joins wherever it is
    /// executable (benchmarks and tests compare strategies this way).
    pub fn with_forced_strategy(catalog: &'a Catalog, strategy: JoinStrategy) -> Self {
        PhysicalPlanner {
            catalog,
            forced_strategy: Some(strategy),
            observed: None,
            allow_bushy: false,
        }
    }

    /// Overlay trace-fed [`ObservedStats`] on the catalog estimates: the
    /// feedback loop's re-plan path costs orders, strategies, and aggregate
    /// placement from what the query *actually* measured.
    pub fn observed(mut self, stats: &'a ObservedStats) -> Self {
        self.observed = Some(stats);
        self
    }

    /// Let the join-order enumerator pick bushy shapes (two independent
    /// subchains meeting at a rehash-merge stage) when they cost less than
    /// every left-deep order.
    pub fn allow_bushy(mut self) -> Self {
        self.allow_bushy = true;
        self
    }

    /// Derive the distributed spec for a bound statement whose optimized
    /// logical plan is `optimized`.
    pub fn plan(
        &self,
        bound: &BoundSelect,
        optimized: &LogicalPlan,
    ) -> Result<PhysicalPlan, PlanError> {
        if bound.is_join() {
            self.plan_join(bound, optimized)
        } else if let Some(agg) = &bound.aggregate {
            // HAVING conjuncts over plain group columns run before
            // aggregation on every node (mirroring the optimizer's rewrite
            // of the logical plan), so non-qualifying tuples are dropped at
            // the scan instead of shipping partials the root would discard.
            let (having_below, having_above) = match &agg.having {
                Some(h) => split_group_having(h, &agg.group_exprs),
                None => (None, None),
            };
            let filter = match (bound.filter.as_ref().map(fold_expr), having_below) {
                (Some(f), Some(h)) => Some(f.and(h)),
                (Some(f), None) => Some(f),
                (None, Some(h)) => Some(h),
                (None, None) => None,
            };
            Ok(PhysicalPlan {
                kind: QueryKind::Aggregate {
                    table: bound.primary().name.clone(),
                    filter: filter.as_ref().map(fold_expr),
                    group_exprs: agg.group_exprs.clone(),
                    aggs: agg.aggs.clone(),
                    having: having_above.as_ref().map(fold_expr),
                    order_by: bound.order_by.clone(),
                    limit: bound.limit,
                    final_project: agg.final_project.clone(),
                    window: agg.window,
                },
                strategy_note: None,
            })
        } else {
            Ok(PhysicalPlan {
                kind: QueryKind::Select {
                    table: bound.primary().name.clone(),
                    filter: bound.filter.as_ref().map(fold_expr),
                    project: bound.projections.iter().map(fold_expr).collect(),
                    order_by: bound.order_by.clone(),
                    limit: bound.limit,
                },
                strategy_note: None,
            })
        }
    }

    /// Lower a bound join into the staged distributed spec: pick the join
    /// order, then thread the needed-column sets backward through the chain
    /// so every stage ships only what later stages (or the final
    /// projection) consume.
    fn plan_join(
        &self,
        bound: &BoundSelect,
        optimized: &LogicalPlan,
    ) -> Result<PhysicalPlan, PlanError> {
        let n = bound.relations.len();
        let offsets = bound.offsets();
        let pieces = extract_multijoin_pieces(optimized, n);
        let order_plan = choose_order_with(
            self.catalog,
            &bound.relations,
            &bound.join_preds,
            &pieces.rel_filters,
            self.forced_strategy,
            self.observed,
            self.allow_bushy,
        );
        if order_plan.bushy.is_some() {
            return self.plan_join_bushy(bound, &pieces, &order_plan);
        }
        let OrderPlan { order, stages: choices, .. } = &order_plan;
        let num_stages = n - 1;

        // Position of each relation in the chosen order, and the relation a
        // global column belongs to.
        let mut pos = vec![0usize; n];
        for (i, &r) in order.iter().enumerate() {
            pos[r] = i;
        }
        let rel_of = |g: usize| crate::plan::relation_of_column(&offsets[..n], g);

        // Assign the residual WHERE conjuncts to the earliest stage where
        // every referenced relation is available.
        let mut stage_posts: Vec<Vec<Expr>> = vec![Vec::new(); num_stages];
        if let Some(residual) = &pieces.residual {
            let mut conjuncts = Vec::new();
            split_conjuncts(residual.clone(), &mut conjuncts);
            for c in conjuncts {
                let stage = c
                    .referenced_columns()
                    .iter()
                    .map(|&g| pos[rel_of(g)])
                    .max()
                    .unwrap_or(1)
                    .saturating_sub(1)
                    .min(num_stages - 1);
                stage_posts[stage].push(c);
            }
        }
        // Non-key equi-predicates run as post-filters at the stage that
        // joins in their later relation.
        for (k, choice) in choices.iter().enumerate() {
            for &pi in &choice.extra_preds {
                let (gl, gr) = bound.join_preds[pi].global(&offsets);
                stage_posts[k].push(Expr::col(gl).eq(Expr::col(gr)));
            }
        }

        // Per-stage key columns in global numbering: the key predicate's
        // endpoint on the joined relation is the right key, the other
        // endpoint (always on an earlier relation) the left key.
        let mut key_left_global = Vec::with_capacity(num_stages);
        let mut key_right_local = Vec::with_capacity(num_stages);
        for choice in choices {
            let p = &bound.join_preds[choice.key_pred];
            if p.left_rel == choice.rel {
                key_right_local.push(p.left_col);
                key_left_global.push(offsets[p.right_rel] + p.right_col);
            } else {
                key_right_local.push(p.right_col);
                key_left_global.push(offsets[p.left_rel] + p.left_col);
            }
        }

        // Backward pass: the global columns needed *after* each stage — by
        // later stages' keys and post-filters and by the final projection
        // (for aggregates: by the grouping expressions and aggregate
        // arguments, which is what narrows every stage's shipments down to
        // exactly what the aggregate consumes).
        let final_cols: BTreeSet<usize> = match &bound.aggregate {
            Some(agg) => agg
                .group_exprs
                .iter()
                .chain(agg.aggs.iter().filter_map(|a| a.arg.as_ref()))
                .flat_map(|e| e.referenced_columns())
                .collect(),
            None => bound.projections.iter().flat_map(|e| e.referenced_columns()).collect(),
        };
        let available = |k: usize| -> BTreeSet<usize> {
            order[..=k + 1]
                .iter()
                .flat_map(|&r| offsets[r]..offsets[r] + bound.relations[r].schema.arity())
                .collect()
        };
        let mut needed = final_cols;
        let mut need_after: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); num_stages];
        for k in (0..num_stages).rev() {
            need_after[k] = needed.intersection(&available(k)).copied().collect();
            for c in &stage_posts[k] {
                needed.extend(c.referenced_columns());
            }
            needed.insert(key_left_global[k]);
        }

        // Forward pass: build the stage specs, tracking the left input as a
        // list of global column ids (`left_map`).
        let drv = order[0];
        let mut left_map: Vec<usize> =
            (offsets[drv]..offsets[drv] + bound.relations[drv].schema.arity()).collect();
        let mut stages = Vec::with_capacity(num_stages);
        let mut last_concat_map: Vec<usize> = Vec::new();
        for k in 0..num_stages {
            let choice = &choices[k];
            let q = choice.rel;
            let q_arity = bound.relations[q].schema.arity();
            // Fetch-Matches keeps full schemas: its right tuples are read
            // whole from DHT storage and its left tuples never ship.
            let is_fetch = choice.strategy == JoinStrategy::FetchMatches;
            let mut want: BTreeSet<usize> = need_after[k].clone();
            for c in &stage_posts[k] {
                want.extend(c.referenced_columns());
            }
            let (left_ship_cols, right_ship_cols): (Vec<usize>, Vec<usize>) = if is_fetch {
                ((0..left_map.len()).collect(), (0..q_arity).collect())
            } else {
                (
                    (0..left_map.len()).filter(|&i| want.contains(&left_map[i])).collect(),
                    (0..q_arity).filter(|&c| want.contains(&(offsets[q] + c))).collect(),
                )
            };
            let concat_map: Vec<usize> = left_ship_cols
                .iter()
                .map(|&i| left_map[i])
                .chain(right_ship_cols.iter().map(|&c| offsets[q] + c))
                .collect();
            let remap = |g: usize| -> Expr {
                Expr::col(
                    concat_map
                        .iter()
                        .position(|&x| x == g)
                        .expect("every needed column is shipped"),
                )
            };
            let post_filter = conjoin(
                stage_posts[k].iter().map(|c| fold_expr(c).substitute_columns(&remap)).collect(),
            );
            let left_key = Expr::col(
                left_map
                    .iter()
                    .position(|&g| g == key_left_global[k])
                    .expect("key column is part of the stage input"),
            );
            let right_key = Expr::col(key_right_local[k]);
            let out_cols: Vec<usize> = if k + 1 == num_stages {
                last_concat_map = concat_map.clone();
                Vec::new()
            } else {
                let next_map: Vec<usize> = need_after[k].iter().copied().collect();
                let outs = next_map
                    .iter()
                    .map(|&g| {
                        concat_map
                            .iter()
                            .position(|&x| x == g)
                            .expect("stage output columns are shipped")
                    })
                    .collect();
                left_map = next_map;
                outs
            };
            stages.push(JoinStage {
                right_table: bound.relations[q].name.clone(),
                left_key,
                right_key,
                right_filter: pieces.rel_filters[q].clone(),
                post_filter,
                left_ship_cols,
                right_ship_cols,
                out_cols,
                strategy: choice.strategy,
                inner_bloom: choice.inner_bloom,
                bloom_bits: choice.bloom_bits,
                left_scan: None,
                out_to: None,
            });
        }

        let final_remap = |g: usize| -> Expr {
            Expr::col(
                last_concat_map
                    .iter()
                    .position(|&x| x == g)
                    .expect("projected columns reach the final stage"),
            )
        };

        // EXPLAIN note: the chosen order plus one rationale line per stage.
        let order_names: Vec<&str> =
            order.iter().map(|&r| bound.relations[r].name.as_str()).collect();
        let mut note = String::new();
        if n > 2 {
            note.push_str(&format!("join order: {}\n", order_names.join(" ⋈ ")));
        }
        for (k, choice) in choices.iter().enumerate() {
            if n > 2 {
                note.push_str(&format!(
                    "stage {k} (⋈ '{}', ~{:.0} ⋈ ~{:.0} → ~{:.0} rows): {}\n",
                    bound.relations[choice.rel].name,
                    choice.left_est,
                    choice.right_est,
                    choice.out_est,
                    choice.note
                ));
            } else {
                note.push_str(&choice.note);
                note.push('\n');
            }
        }

        // Terminal operator: the final projection for plain joins, or the
        // aggregate whose placement (hierarchical partials vs raw-row
        // streaming to the origin) is costed from the estimated group count
        // versus the estimated matched-row count.
        let (project, aggregate) = match &bound.aggregate {
            Some(agg) => {
                let group_exprs: Vec<Expr> = agg
                    .group_exprs
                    .iter()
                    .map(|e| fold_expr(e).substitute_columns(&final_remap))
                    .collect();
                let aggs: Vec<AggExpr> = agg
                    .aggs
                    .iter()
                    .map(|a| AggExpr {
                        func: a.func,
                        arg: a.arg.as_ref().map(|e| fold_expr(e).substitute_columns(&final_remap)),
                        name: a.name.clone(),
                    })
                    .collect();
                // HAVING conjuncts over plain group columns were already
                // pushed below the join by the optimizer (they reach the
                // stages through `rel_filters` / the residual); only the
                // conjuncts that need finalized aggregates stay here.
                let having_above = match &agg.having {
                    Some(h) => split_group_having(h, &agg.group_exprs).1,
                    None => None,
                };
                // Placement cost: hierarchical partials ship at most one
                // state per (group, node) and combine in-network, so they
                // win whenever groups compress the matched rows; a
                // group-per-row aggregate (distinct keys ≥ rows) would ship
                // as many partial states as the raw rows, for no saving.
                let est_matches = choices.last().map(|c| c.out_est).unwrap_or(DEFAULT_ROW_ESTIMATE);
                let est_groups: f64 = agg
                    .group_exprs
                    .iter()
                    .map(|e| match e {
                        Expr::Column(g) => self.distinct_of(bound, &offsets, n, *g),
                        _ => 32.0,
                    })
                    .product::<f64>()
                    .clamp(1.0, est_matches.max(1.0));
                // A windowed aggregate always runs hierarchically: the
                // aggregation root is where per-epoch states are retained
                // and merged into windows; raw-row streaming has no root.
                let hierarchical = agg.window.is_some() || est_groups < est_matches.max(1.0);
                note.push_str(&if hierarchical {
                    format!(
                        "aggregation: hierarchical in-network partials \
                         (~{est_groups:.0} groups compress ~{est_matches:.0} matched rows)"
                    )
                } else {
                    format!(
                        "aggregation: at origin over raw rows \
                         (~{est_groups:.0} groups ≈ ~{est_matches:.0} matched rows, \
                         partials would not compress)"
                    )
                });
                note.push('\n');
                // Aggregate-aware stage keys: if the (single) grouping
                // column *is* the final stage's join key — either endpoint,
                // they are equal on every match — the symmetric rehash has
                // already partitioned each group wholly onto one join site.
                // Sites then finalize their own groups in place and the
                // partial climb up the aggregation tree is skipped.
                let last = stages.last().expect("at least one stage");
                let key_pos = |key: &Expr, ship: &[usize], base: usize| -> Option<usize> {
                    match key {
                        Expr::Column(i) => ship.iter().position(|c| c == i).map(|p| base + p),
                        _ => None,
                    }
                };
                let left_pos = key_pos(&last.left_key, &last.left_ship_cols, 0);
                let right_pos =
                    key_pos(&last.right_key, &last.right_ship_cols, last.left_ship_cols.len());
                let colocated = hierarchical
                    && last.strategy == JoinStrategy::SymmetricHash
                    && matches!(group_exprs.as_slice(),
                        [Expr::Column(g)] if Some(*g) == left_pos || Some(*g) == right_pos);
                if colocated {
                    note.push_str(
                        "aggregation: colocated with the final join stage \
                         (GROUP BY = stage key; groups finalize at their join sites, \
                         no partial climb)\n",
                    );
                }
                // Identity projection over the final concat schema: the
                // raw-row streaming baseline ships these rows whole.
                let project: Vec<Expr> = (0..last_concat_map.len()).map(Expr::col).collect();
                let aggregate = JoinAggregate {
                    group_exprs,
                    aggs,
                    having: having_above.as_ref().map(fold_expr),
                    final_project: agg.final_project.clone(),
                    hierarchical,
                    colocated,
                    window: agg.window,
                };
                (project, Some(aggregate))
            }
            None => {
                let project: Vec<Expr> = bound
                    .projections
                    .iter()
                    .map(|e| fold_expr(e).substitute_columns(&final_remap))
                    .collect();
                (project, None)
            }
        };

        Ok(PhysicalPlan {
            kind: QueryKind::Join {
                left_table: bound.relations[drv].name.clone(),
                left_filter: pieces.rel_filters[drv].clone(),
                stages,
                project,
                aggregate,
                order_by: bound.order_by.clone(),
                limit: bound.limit,
            },
            strategy_note: Some(note),
        })
    }

    /// Distinct-value estimate for a global column: the gossiped
    /// partition-key count when the column is the partitioning column,
    /// otherwise a flat fraction of the (trace-observed, when available)
    /// row estimate.
    fn distinct_of(&self, bound: &BoundSelect, offsets: &[usize], n: usize, g: usize) -> f64 {
        let rel = crate::plan::relation_of_column(&offsets[..n], g);
        let col = g - offsets[rel];
        let name = &bound.relations[rel].name;
        let partition = self.catalog.get(name).map(|d| d.partition_column);
        let keys = self.catalog.stats(name).and_then(|s| s.distinct_keys);
        let rows = self
            .observed
            .and_then(|o| o.table_rows.get(name))
            .copied()
            .or_else(|| self.catalog.stats(name).map(|s| s.rows as f64))
            .unwrap_or(DEFAULT_ROW_ESTIMATE);
        match (partition, keys) {
            (Some(p), Some(k)) if p == col => (k as f64).max(1.0),
            _ => (rows * 0.1).max(1.0),
        }
    }

    /// Lower a bushy order: two independent left-deep subchains, each run
    /// through the same backward/forward column passes as a plain chain
    /// ([`lower_chain`]), meeting at a final rehash-merge stage.  The DAG
    /// edges — a [`BranchScan`] rooting the second subchain and `out_to`
    /// routes on both subchain tails — encode the shape for the engine,
    /// which then evaluates both subchains concurrently within an epoch.
    fn plan_join_bushy(
        &self,
        bound: &BoundSelect,
        pieces: &MultiJoinPieces,
        order_plan: &OrderPlan,
    ) -> Result<PhysicalPlan, PlanError> {
        let n = bound.relations.len();
        let offsets = bound.offsets();
        let bushy: &BushyChoice = order_plan.bushy.as_ref().expect("bushy plan");
        let split = bushy.split;
        let chain_a = &order_plan.order[..split];
        let chain_b = &order_plan.order[split..];
        let choices_a = &order_plan.stages[..split - 1];
        let choices_b = &order_plan.stages[split - 1..];
        let merge_stage = (n - 2) as u8;

        // Residual conjuncts: within one subchain they run at that chain's
        // earliest able stage; conjuncts crossing the chains run at the
        // merge.
        let rel_of = |g: usize| crate::plan::relation_of_column(&offsets[..n], g);
        let mut posts_a: Vec<Vec<Expr>> = vec![Vec::new(); split - 1];
        let mut posts_b: Vec<Vec<Expr>> = vec![Vec::new(); n - split - 1];
        let mut merge_posts: Vec<Expr> = Vec::new();
        if let Some(residual) = &pieces.residual {
            let mut conjuncts = Vec::new();
            split_conjuncts(residual.clone(), &mut conjuncts);
            for c in conjuncts {
                let rels: BTreeSet<usize> =
                    c.referenced_columns().iter().map(|&g| rel_of(g)).collect();
                let chain_stage = |chain: &[usize]| -> usize {
                    rels.iter()
                        .map(|&r| chain.iter().position(|&x| x == r).expect("rel is in chain"))
                        .max()
                        .unwrap_or(1)
                        .saturating_sub(1)
                        .min(chain.len() - 2)
                };
                if rels.iter().all(|r| chain_a.contains(r)) {
                    let k = chain_stage(chain_a);
                    posts_a[k].push(c);
                } else if rels.iter().all(|r| chain_b.contains(r)) {
                    let k = chain_stage(chain_b);
                    posts_b[k].push(c);
                } else {
                    merge_posts.push(c);
                }
            }
        }
        for (k, choice) in choices_a.iter().enumerate() {
            for &pi in &choice.extra_preds {
                let (gl, gr) = bound.join_preds[pi].global(&offsets);
                posts_a[k].push(Expr::col(gl).eq(Expr::col(gr)));
            }
        }
        for (k, choice) in choices_b.iter().enumerate() {
            for &pi in &choice.extra_preds {
                let (gl, gr) = bound.join_preds[pi].global(&offsets);
                posts_b[k].push(Expr::col(gl).eq(Expr::col(gr)));
            }
        }
        for &pi in &bushy.extra_preds {
            let (gl, gr) = bound.join_preds[pi].global(&offsets);
            merge_posts.push(Expr::col(gl).eq(Expr::col(gr)));
        }

        // The merge key's endpoints, one global column per subchain.
        let kp = &bound.join_preds[bushy.key_pred];
        let (kp_l, kp_r) = kp.global(&offsets);
        let (ga, gb) = if chain_a.contains(&kp.left_rel) { (kp_l, kp_r) } else { (kp_r, kp_l) };

        // Columns the merge and the final projection/aggregate consume.
        let final_cols: BTreeSet<usize> = match &bound.aggregate {
            Some(agg) => agg
                .group_exprs
                .iter()
                .chain(agg.aggs.iter().filter_map(|a| a.arg.as_ref()))
                .flat_map(|e| e.referenced_columns())
                .collect(),
            None => bound.projections.iter().flat_map(|e| e.referenced_columns()).collect(),
        };
        let mut tail_need = final_cols.clone();
        for c in &merge_posts {
            tail_need.extend(c.referenced_columns());
        }
        tail_need.insert(ga);
        tail_need.insert(gb);

        let plan_a =
            lower_chain(bound, &pieces.rel_filters, chain_a, choices_a, &posts_a, &tail_need);
        let plan_b =
            lower_chain(bound, &pieces.rel_filters, chain_b, choices_b, &posts_b, &tail_need);
        let mut stages = plan_a.stages;
        stages.last_mut().expect("chain A has a stage").out_to = Some((merge_stage, 0));
        let b_root = stages.len();
        stages.extend(plan_b.stages);
        stages[b_root].left_scan = Some(BranchScan {
            table: bound.relations[chain_b[0]].name.clone(),
            filter: pieces.rel_filters[chain_b[0]].clone(),
        });
        stages.last_mut().expect("chain B has a stage").out_to = Some((merge_stage, 1));

        // The merge stage: chain A's output is its side 0, chain B's its
        // side 1; both keys and ship columns index the chains' output
        // schemas.
        let mut want: BTreeSet<usize> = final_cols;
        for c in &merge_posts {
            want.extend(c.referenced_columns());
        }
        let left_ship_cols: Vec<usize> =
            (0..plan_a.out_map.len()).filter(|&i| want.contains(&plan_a.out_map[i])).collect();
        let right_ship_cols: Vec<usize> =
            (0..plan_b.out_map.len()).filter(|&i| want.contains(&plan_b.out_map[i])).collect();
        let concat_map: Vec<usize> = left_ship_cols
            .iter()
            .map(|&i| plan_a.out_map[i])
            .chain(right_ship_cols.iter().map(|&i| plan_b.out_map[i]))
            .collect();
        let remap = |g: usize| -> Expr {
            Expr::col(
                concat_map.iter().position(|&x| x == g).expect("every needed column is shipped"),
            )
        };
        let post_filter =
            conjoin(merge_posts.iter().map(|c| fold_expr(c).substitute_columns(&remap)).collect());
        let left_key = Expr::col(
            plan_a.out_map.iter().position(|&g| g == ga).expect("merge key is in chain A output"),
        );
        let right_key = Expr::col(
            plan_b.out_map.iter().position(|&g| g == gb).expect("merge key is in chain B output"),
        );
        stages.push(JoinStage {
            right_table: bound.relations[chain_b[0]].name.clone(),
            left_key,
            right_key,
            right_filter: None,
            post_filter,
            left_ship_cols,
            right_ship_cols,
            out_cols: Vec::new(),
            strategy: JoinStrategy::SymmetricHash,
            inner_bloom: false,
            bloom_bits: 0,
            left_scan: None,
            out_to: None,
        });
        let last_concat_map = concat_map;
        let final_remap = |g: usize| -> Expr {
            Expr::col(
                last_concat_map
                    .iter()
                    .position(|&x| x == g)
                    .expect("projected columns reach the merge stage"),
            )
        };

        // EXPLAIN note: the bushy shape, one line per chain stage, and the
        // merge rationale.
        let names = |chain: &[usize]| {
            chain.iter().map(|&r| bound.relations[r].name.as_str()).collect::<Vec<_>>().join(" ⋈ ")
        };
        let mut note = format!("join order: ({}) ⋈ ({}) [bushy]\n", names(chain_a), names(chain_b));
        for (k, choice) in order_plan.stages.iter().enumerate() {
            note.push_str(&format!(
                "stage {k} (⋈ '{}', ~{:.0} ⋈ ~{:.0} → ~{:.0} rows): {}\n",
                bound.relations[choice.rel].name,
                choice.left_est,
                choice.right_est,
                choice.out_est,
                choice.note
            ));
        }
        note.push_str(&format!("stage {merge_stage}: {}\n", bushy.note));

        let (project, aggregate) = match &bound.aggregate {
            Some(agg) => {
                let group_exprs: Vec<Expr> = agg
                    .group_exprs
                    .iter()
                    .map(|e| fold_expr(e).substitute_columns(&final_remap))
                    .collect();
                let aggs: Vec<AggExpr> = agg
                    .aggs
                    .iter()
                    .map(|a| AggExpr {
                        func: a.func,
                        arg: a.arg.as_ref().map(|e| fold_expr(e).substitute_columns(&final_remap)),
                        name: a.name.clone(),
                    })
                    .collect();
                let having_above = match &agg.having {
                    Some(h) => split_group_having(h, &agg.group_exprs).1,
                    None => None,
                };
                let est_matches = bushy.out_est;
                let est_groups: f64 = agg
                    .group_exprs
                    .iter()
                    .map(|e| match e {
                        Expr::Column(g) => self.distinct_of(bound, &offsets, n, *g),
                        _ => 32.0,
                    })
                    .product::<f64>()
                    .clamp(1.0, est_matches.max(1.0));
                let hierarchical = agg.window.is_some() || est_groups < est_matches.max(1.0);
                note.push_str(&if hierarchical {
                    format!(
                        "aggregation: hierarchical in-network partials \
                         (~{est_groups:.0} groups compress ~{est_matches:.0} matched rows)"
                    )
                } else {
                    format!(
                        "aggregation: at origin over raw rows \
                         (~{est_groups:.0} groups ≈ ~{est_matches:.0} matched rows, \
                         partials would not compress)"
                    )
                });
                note.push('\n');
                let last = stages.last().expect("merge stage");
                let key_pos = |key: &Expr, ship: &[usize], base: usize| -> Option<usize> {
                    match key {
                        Expr::Column(i) => ship.iter().position(|c| c == i).map(|p| base + p),
                        _ => None,
                    }
                };
                let left_pos = key_pos(&last.left_key, &last.left_ship_cols, 0);
                let right_pos =
                    key_pos(&last.right_key, &last.right_ship_cols, last.left_ship_cols.len());
                let colocated = hierarchical
                    && matches!(group_exprs.as_slice(),
                        [Expr::Column(g)] if Some(*g) == left_pos || Some(*g) == right_pos);
                if colocated {
                    note.push_str(
                        "aggregation: colocated with the merge stage \
                         (GROUP BY = stage key; groups finalize at their join sites, \
                         no partial climb)\n",
                    );
                }
                let project: Vec<Expr> = (0..last_concat_map.len()).map(Expr::col).collect();
                let aggregate = JoinAggregate {
                    group_exprs,
                    aggs,
                    having: having_above.as_ref().map(fold_expr),
                    final_project: agg.final_project.clone(),
                    hierarchical,
                    colocated,
                    window: agg.window,
                };
                (project, Some(aggregate))
            }
            None => {
                let project: Vec<Expr> = bound
                    .projections
                    .iter()
                    .map(|e| fold_expr(e).substitute_columns(&final_remap))
                    .collect();
                (project, None)
            }
        };

        Ok(PhysicalPlan {
            kind: QueryKind::Join {
                left_table: bound.relations[chain_a[0]].name.clone(),
                left_filter: pieces.rel_filters[chain_a[0]].clone(),
                stages,
                project,
                aggregate,
                order_by: bound.order_by.clone(),
                limit: bound.limit,
            },
            strategy_note: Some(note),
        })
    }
}

/// One lowered bushy subchain: its stage specs (chain-local order, DAG edges
/// not yet stamped) and the global column ids of its output schema — the
/// rows it rehashes to the merge stage.
struct ChainPlan {
    stages: Vec<JoinStage>,
    out_map: Vec<usize>,
}

/// Lower one left-deep subchain of a bushy plan: the same backward
/// needed-column and forward ship-column passes the chain planner runs,
/// except the last stage also emits `out_cols` (its output feeds the merge
/// stage rather than the query projection).  `tail_need` is the global
/// column set consumed after the chain (merge keys, merge post-filters, and
/// the final projection/aggregate).
fn lower_chain(
    bound: &BoundSelect,
    rel_filters: &[Option<Expr>],
    chain: &[usize],
    choices: &[StageChoice],
    posts: &[Vec<Expr>],
    tail_need: &BTreeSet<usize>,
) -> ChainPlan {
    let offsets = bound.offsets();
    let num = chain.len() - 1;
    let mut key_left_global = Vec::with_capacity(num);
    let mut key_right_local = Vec::with_capacity(num);
    for choice in choices {
        let p = &bound.join_preds[choice.key_pred];
        if p.left_rel == choice.rel {
            key_right_local.push(p.left_col);
            key_left_global.push(offsets[p.right_rel] + p.right_col);
        } else {
            key_right_local.push(p.right_col);
            key_left_global.push(offsets[p.left_rel] + p.left_col);
        }
    }
    let span = |r: usize| offsets[r]..offsets[r] + bound.relations[r].schema.arity();
    let chain_cols: BTreeSet<usize> = chain.iter().flat_map(|&r| span(r)).collect();
    let available =
        |k: usize| -> BTreeSet<usize> { chain[..=k + 1].iter().flat_map(|&r| span(r)).collect() };
    let mut needed: BTreeSet<usize> = tail_need.intersection(&chain_cols).copied().collect();
    let mut need_after: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); num];
    for k in (0..num).rev() {
        need_after[k] = needed.intersection(&available(k)).copied().collect();
        for c in &posts[k] {
            needed.extend(c.referenced_columns());
        }
        needed.insert(key_left_global[k]);
    }
    let drv = chain[0];
    let mut left_map: Vec<usize> = span(drv).collect();
    let mut stages = Vec::with_capacity(num);
    for k in 0..num {
        let choice = &choices[k];
        let q = choice.rel;
        let q_arity = bound.relations[q].schema.arity();
        let is_fetch = choice.strategy == JoinStrategy::FetchMatches;
        let mut want: BTreeSet<usize> = need_after[k].clone();
        for c in &posts[k] {
            want.extend(c.referenced_columns());
        }
        let (left_ship_cols, right_ship_cols): (Vec<usize>, Vec<usize>) = if is_fetch {
            ((0..left_map.len()).collect(), (0..q_arity).collect())
        } else {
            (
                (0..left_map.len()).filter(|&i| want.contains(&left_map[i])).collect(),
                (0..q_arity).filter(|&c| want.contains(&(offsets[q] + c))).collect(),
            )
        };
        let concat_map: Vec<usize> = left_ship_cols
            .iter()
            .map(|&i| left_map[i])
            .chain(right_ship_cols.iter().map(|&c| offsets[q] + c))
            .collect();
        let remap = |g: usize| -> Expr {
            Expr::col(
                concat_map.iter().position(|&x| x == g).expect("every needed column is shipped"),
            )
        };
        let post_filter =
            conjoin(posts[k].iter().map(|c| fold_expr(c).substitute_columns(&remap)).collect());
        let left_key = Expr::col(
            left_map
                .iter()
                .position(|&g| g == key_left_global[k])
                .expect("key column is part of the stage input"),
        );
        let right_key = Expr::col(key_right_local[k]);
        let next_map: Vec<usize> = need_after[k].iter().copied().collect();
        let out_cols: Vec<usize> = next_map
            .iter()
            .map(|&g| {
                concat_map.iter().position(|&x| x == g).expect("stage output columns are shipped")
            })
            .collect();
        left_map = next_map;
        stages.push(JoinStage {
            right_table: bound.relations[q].name.clone(),
            left_key,
            right_key,
            right_filter: rel_filters[q].clone(),
            post_filter,
            left_ship_cols,
            right_ship_cols,
            out_cols,
            strategy: choice.strategy,
            inner_bloom: choice.inner_bloom,
            bloom_bits: choice.bloom_bits,
            left_scan: None,
            out_to: None,
        });
    }
    ChainPlan { stages, out_map: left_map }
}

/// Estimated fraction of rows surviving a predicate (System-R style guesses);
/// `eq_sel` maps a column index to the selectivity of an equality predicate
/// on that column (1/distinct_keys for a partition key the catalog knows).
pub(crate) fn selectivity(filter: &Option<Expr>, eq_sel: &dyn Fn(usize) -> f64) -> f64 {
    match filter {
        None => 1.0,
        Some(e) => expr_selectivity(e, eq_sel),
    }
}

fn expr_selectivity(e: &Expr, eq_sel: &dyn Fn(usize) -> f64) -> f64 {
    use crate::expr::{BinaryOp, UnaryOp};
    match e {
        Expr::Binary { op, left, right } => match op {
            BinaryOp::And => expr_selectivity(left, eq_sel) * expr_selectivity(right, eq_sel),
            BinaryOp::Or => {
                (expr_selectivity(left, eq_sel) + expr_selectivity(right, eq_sel)).min(1.0)
            }
            BinaryOp::Eq => match (&**left, &**right) {
                (Expr::Column(c), other) | (other, Expr::Column(c)) if other.is_constant() => {
                    eq_sel(*c)
                }
                _ => DEFAULT_EQ_SELECTIVITY,
            },
            BinaryOp::NotEq => 0.9,
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => 0.3,
            _ => 0.75,
        },
        Expr::Like { .. } => 0.25,
        Expr::Unary { op: UnaryOp::Not, expr } => (1.0 - expr_selectivity(expr, eq_sel)).max(0.05),
        Expr::Unary { op: UnaryOp::IsNull, .. } => 0.1,
        Expr::Unary { op: UnaryOp::IsNotNull, .. } => 0.9,
        _ => 0.75,
    }
}

/// The join-relevant filters of an optimized plan: the predicate sitting
/// directly on each relation's scan (placed there by predicate pushdown)
/// and the residual predicate directly above the n-ary join.
struct MultiJoinPieces {
    /// Per-relation pushed-down filter, over each relation's local schema.
    rel_filters: Vec<Option<Expr>>,
    /// Residual predicate over the concatenated (global) schema.
    residual: Option<Expr>,
}

fn extract_multijoin_pieces(plan: &LogicalPlan, n: usize) -> MultiJoinPieces {
    let mut cur = plan;
    let mut residual = None;
    loop {
        match cur {
            LogicalPlan::Limit { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => cur = input,
            LogicalPlan::Filter { input, predicate } => {
                if matches!(**input, LogicalPlan::MultiJoin { .. }) {
                    residual = Some(predicate.clone());
                }
                cur = input;
            }
            LogicalPlan::MultiJoin { inputs, .. } => {
                let rel_filters = inputs
                    .iter()
                    .map(|side| match side {
                        LogicalPlan::Filter { input, predicate }
                            if matches!(**input, LogicalPlan::Scan { .. }) =>
                        {
                            Some(predicate.clone())
                        }
                        _ => None,
                    })
                    .collect();
                return MultiJoinPieces { rel_filters, residual };
            }
            _ => return MultiJoinPieces { rel_filters: vec![None; n], residual },
        }
    }
}
