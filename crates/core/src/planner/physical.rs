//! Stage 4 — the physical / distributed planner.
//!
//! Turns a bound statement plus its optimized logical plan into the per-node
//! [`QueryKind`] spec that is disseminated over the DHT.  This is the layer
//! that makes *distributed* decisions:
//!
//! * join-strategy selection (symmetric rehash vs Fetch-Matches vs
//!   Bloom-filter semi-join) is **costed from catalog cardinality hints**
//!   ([`TableStats`](crate::catalog::TableStats)) and filter selectivities,
//!   instead of a hard-coded default;
//! * predicates the optimizer pushed below the join are carried as per-side
//!   filters so every node filters *before* shipping tuples;
//! * Fetch-Matches is only eligible when the inner relation is partitioned on
//!   the join key (the DHT can then answer probes with a single `get`).

use crate::catalog::Catalog;
use crate::expr::Expr;
use crate::plan::LogicalPlan;
use crate::query::{JoinStrategy, QueryKind};

use super::binder::BoundSelect;
use super::optimizer::{fold_expr, split_group_having};
use super::PlanError;

/// Row-count estimate used when the catalog has no statistics for a table.
pub const DEFAULT_ROW_ESTIMATE: f64 = 1024.0;

/// Relative cost of one Fetch-Matches DHT probe versus rehashing one tuple
/// (a probe is a routed request *and* a response).
const FETCH_PROBE_COST: f64 = 4.0;

/// Fallback selectivity of an equality predicate when the catalog has no
/// distinct-key estimate for the table.
const DEFAULT_EQ_SELECTIVITY: f64 = 0.05;

/// A Bloom join only pays off when the prunable side is at least this large.
const BLOOM_MIN_RIGHT: f64 = 512.0;

/// How much bigger the right side must be (relative to the left) before the
/// two-phase Bloom protocol beats plain symmetric rehashing.
const BLOOM_SKEW: f64 = 4.0;

/// The physical planner's output: the distributed spec plus a human-readable
/// note on the join-strategy decision (surfaced by `EXPLAIN`).
#[derive(Clone, Debug)]
pub struct PhysicalPlan {
    /// Per-node work description.
    pub kind: QueryKind,
    /// Why the join strategy was chosen (`None` for non-join queries).
    pub strategy_note: Option<String>,
}

/// Chooses distributed execution strategies from catalog statistics.
pub struct PhysicalPlanner<'a> {
    catalog: &'a Catalog,
    forced_strategy: Option<JoinStrategy>,
}

impl<'a> PhysicalPlanner<'a> {
    /// A planner that costs strategies from the catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        PhysicalPlanner { catalog, forced_strategy: None }
    }

    /// A planner that always uses `strategy` for joins (benchmarks and tests
    /// compare strategies this way).
    pub fn with_forced_strategy(catalog: &'a Catalog, strategy: JoinStrategy) -> Self {
        PhysicalPlanner { catalog, forced_strategy: Some(strategy) }
    }

    /// Derive the distributed spec for a bound statement whose optimized
    /// logical plan is `optimized`.
    pub fn plan(
        &self,
        bound: &BoundSelect,
        optimized: &LogicalPlan,
    ) -> Result<PhysicalPlan, PlanError> {
        if bound.join.is_some() {
            self.plan_join(bound, optimized)
        } else if let Some(agg) = &bound.aggregate {
            // HAVING conjuncts over plain group columns run before
            // aggregation on every node (mirroring the optimizer's rewrite
            // of the logical plan), so non-qualifying tuples are dropped at
            // the scan instead of shipping partials the root would discard.
            let (having_below, having_above) = match &agg.having {
                Some(h) => split_group_having(h, &agg.group_exprs),
                None => (None, None),
            };
            let filter = match (bound.filter.as_ref().map(fold_expr), having_below) {
                (Some(f), Some(h)) => Some(f.and(h)),
                (Some(f), None) => Some(f),
                (None, Some(h)) => Some(h),
                (None, None) => None,
            };
            Ok(PhysicalPlan {
                kind: QueryKind::Aggregate {
                    table: bound.from.name.clone(),
                    filter: filter.as_ref().map(fold_expr),
                    group_exprs: agg.group_exprs.clone(),
                    aggs: agg.aggs.clone(),
                    having: having_above.as_ref().map(fold_expr),
                    order_by: bound.order_by.clone(),
                    limit: bound.limit,
                    final_project: agg.final_project.clone(),
                },
                strategy_note: None,
            })
        } else {
            Ok(PhysicalPlan {
                kind: QueryKind::Select {
                    table: bound.from.name.clone(),
                    filter: bound.filter.as_ref().map(fold_expr),
                    project: bound.projections.iter().map(fold_expr).collect(),
                    order_by: bound.order_by.clone(),
                    limit: bound.limit,
                },
                strategy_note: None,
            })
        }
    }

    fn plan_join(
        &self,
        bound: &BoundSelect,
        optimized: &LogicalPlan,
    ) -> Result<PhysicalPlan, PlanError> {
        let join = bound.join.as_ref().expect("plan_join requires a bound join");
        let pieces = extract_join_pieces(optimized);
        let (strategy, note) =
            self.choose_join_strategy(bound, &pieces.left_filter, &pieces.right_filter);

        let left_arity = bound.from.schema.arity();
        let right_arity = join.right.schema.arity();
        let project: Vec<Expr> = bound.projections.iter().map(fold_expr).collect();
        let narrowed =
            narrow_join_sides(strategy, left_arity, right_arity, project, pieces.post_filter);

        Ok(PhysicalPlan {
            kind: QueryKind::Join {
                left_table: bound.from.name.clone(),
                right_table: join.right.name.clone(),
                left_key: join.left_key.clone(),
                right_key: join.right_key.clone(),
                left_filter: pieces.left_filter,
                right_filter: pieces.right_filter,
                post_filter: narrowed.post_filter,
                project: narrowed.project,
                left_ship_cols: narrowed.left_ship_cols,
                right_ship_cols: narrowed.right_ship_cols,
                strategy,
                order_by: bound.order_by.clone(),
                limit: bound.limit,
            },
            strategy_note: Some(note),
        })
    }

    /// Cost-based join-strategy selection from catalog cardinality hints.
    fn choose_join_strategy(
        &self,
        bound: &BoundSelect,
        left_filter: &Option<Expr>,
        right_filter: &Option<Expr>,
    ) -> (JoinStrategy, String) {
        if let Some(s) = self.forced_strategy {
            return (s, format!("{s:?} (forced by caller)"));
        }
        let join = bound.join.as_ref().expect("join strategy needs a join");

        let base = |name: &str| {
            self.catalog.stats(name).map(|s| s.rows as f64).unwrap_or(DEFAULT_ROW_ESTIMATE)
        };
        // An equality predicate on the *partitioning column* keeps
        // ~1/distinct_keys of the rows when the catalog knows the key count;
        // equality on any other column falls back to the flat System-R
        // guess (key-count statistics are tracked per partition key only).
        let eq_sel = |name: &str| {
            let partition_column = self.catalog.get(name).map(|d| d.partition_column);
            let distinct = self.catalog.stats(name).and_then(|s| s.distinct_keys);
            move |col: usize| match (partition_column, distinct) {
                (Some(p), Some(k)) if p == col => (1.0 / k.max(1) as f64).clamp(1e-6, 1.0),
                _ => DEFAULT_EQ_SELECTIVITY,
            }
        };
        let left_rows = base(&bound.from.name);
        let right_rows = base(&join.right.name);
        let left_est = (left_rows * selectivity(left_filter, &eq_sel(&bound.from.name))).max(1.0);
        let right_est =
            (right_rows * selectivity(right_filter, &eq_sel(&join.right.name))).max(1.0);

        // Fetch-Matches probes the inner relation by its DHT resource id, so
        // the inner table must be partitioned on the join key column.
        let fetch_eligible = match (&join.right_key, self.catalog.get(&join.right.name)) {
            (Expr::Column(c), Some(def)) => def.partition_column == *c,
            _ => false,
        };

        if fetch_eligible && left_est * FETCH_PROBE_COST <= right_est {
            return (
                JoinStrategy::FetchMatches,
                format!(
                    "Fetch-Matches: ~{left_est:.0} probing tuples (of ~{left_rows:.0}) vs \
                     ~{right_est:.0} inner tuples; '{}' is partitioned on the join key",
                    join.right.name
                ),
            );
        }
        if right_est >= BLOOM_MIN_RIGHT && right_est >= BLOOM_SKEW * left_est {
            return (
                JoinStrategy::BloomFilter,
                format!(
                    "Bloom semi-join: right side ~{right_est:.0} tuples dwarfs left \
                     ~{left_est:.0}; a key summary prunes the rehash"
                ),
            );
        }
        (
            JoinStrategy::SymmetricHash,
            format!(
                "symmetric rehash: comparable cardinalities (~{left_est:.0} left vs \
                 ~{right_est:.0} right), both sides ship to the key's node"
            ),
        )
    }
}

/// Join sides narrowed to the columns the join site actually consumes, with
/// the site-side expressions renumbered to the narrowed concatenated schema.
struct NarrowedJoin {
    left_ship_cols: Vec<usize>,
    right_ship_cols: Vec<usize>,
    post_filter: Option<Expr>,
    project: Vec<Expr>,
}

/// Join-side projection pushdown: rehash strategies ship only the columns the
/// join site's residual filter and projection reference, cutting
/// [`JoinBatch`](crate::payload::PierPayload) bytes at the source.
/// Fetch-Matches keeps the full schemas — its right tuples are read from DHT
/// storage (which holds whole tuples) and its left tuples never leave the
/// probing node.
fn narrow_join_sides(
    strategy: JoinStrategy,
    left_arity: usize,
    right_arity: usize,
    project: Vec<Expr>,
    post_filter: Option<Expr>,
) -> NarrowedJoin {
    if strategy == JoinStrategy::FetchMatches {
        return NarrowedJoin {
            left_ship_cols: (0..left_arity).collect(),
            right_ship_cols: (0..right_arity).collect(),
            post_filter,
            project,
        };
    }
    let mut used: Vec<usize> = project.iter().flat_map(|e| e.referenced_columns()).collect();
    if let Some(f) = &post_filter {
        used.extend(f.referenced_columns());
    }
    used.sort_unstable();
    used.dedup();
    let left_ship_cols: Vec<usize> = used.iter().copied().filter(|&c| c < left_arity).collect();
    let right_ship_cols: Vec<usize> =
        used.iter().copied().filter(|&c| c >= left_arity).map(|c| c - left_arity).collect();
    let remap = |c: usize| -> Expr {
        let new = if c < left_arity {
            left_ship_cols.iter().position(|&x| x == c).expect("used left column is shipped")
        } else {
            left_ship_cols.len()
                + right_ship_cols
                    .iter()
                    .position(|&x| x == c - left_arity)
                    .expect("used right column is shipped")
        };
        Expr::col(new)
    };
    NarrowedJoin {
        post_filter: post_filter.map(|f| f.substitute_columns(&remap)),
        project: project.into_iter().map(|e| e.substitute_columns(&remap)).collect(),
        left_ship_cols,
        right_ship_cols,
    }
}

/// Estimated fraction of rows surviving a predicate (System-R style guesses);
/// `eq_sel` maps a column index to the selectivity of an equality predicate
/// on that column (1/distinct_keys for a partition key the catalog knows).
fn selectivity(filter: &Option<Expr>, eq_sel: &dyn Fn(usize) -> f64) -> f64 {
    match filter {
        None => 1.0,
        Some(e) => expr_selectivity(e, eq_sel),
    }
}

fn expr_selectivity(e: &Expr, eq_sel: &dyn Fn(usize) -> f64) -> f64 {
    use crate::expr::{BinaryOp, UnaryOp};
    match e {
        Expr::Binary { op, left, right } => match op {
            BinaryOp::And => expr_selectivity(left, eq_sel) * expr_selectivity(right, eq_sel),
            BinaryOp::Or => {
                (expr_selectivity(left, eq_sel) + expr_selectivity(right, eq_sel)).min(1.0)
            }
            BinaryOp::Eq => match (&**left, &**right) {
                (Expr::Column(c), other) | (other, Expr::Column(c)) if other.is_constant() => {
                    eq_sel(*c)
                }
                _ => DEFAULT_EQ_SELECTIVITY,
            },
            BinaryOp::NotEq => 0.9,
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => 0.3,
            _ => 0.75,
        },
        Expr::Like { .. } => 0.25,
        Expr::Unary { op: UnaryOp::Not, expr } => (1.0 - expr_selectivity(expr, eq_sel)).max(0.05),
        Expr::Unary { op: UnaryOp::IsNull, .. } => 0.1,
        Expr::Unary { op: UnaryOp::IsNotNull, .. } => 0.9,
        _ => 0.75,
    }
}

/// The join-relevant filters of an optimized plan: the predicates sitting
/// directly on each side's scan (placed there by predicate pushdown) and the
/// residual predicate directly above the join.
struct JoinPieces {
    left_filter: Option<Expr>,
    right_filter: Option<Expr>,
    post_filter: Option<Expr>,
}

fn extract_join_pieces(plan: &LogicalPlan) -> JoinPieces {
    let mut cur = plan;
    let mut post = None;
    loop {
        match cur {
            LogicalPlan::Limit { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Project { input, .. } => cur = input,
            LogicalPlan::Filter { input, predicate } => {
                if matches!(**input, LogicalPlan::Join { .. }) {
                    post = Some(predicate.clone());
                }
                cur = input;
            }
            LogicalPlan::Join { left, right, .. } => {
                let side_filter = |side: &LogicalPlan| match side {
                    LogicalPlan::Filter { input, predicate }
                        if matches!(**input, LogicalPlan::Scan { .. }) =>
                    {
                        Some(predicate.clone())
                    }
                    _ => None,
                };
                return JoinPieces {
                    left_filter: side_filter(left),
                    right_filter: side_filter(right),
                    post_filter: post,
                };
            }
            LogicalPlan::Scan { .. } | LogicalPlan::Aggregate { .. } => {
                return JoinPieces { left_filter: None, right_filter: None, post_filter: post }
            }
        }
    }
}
