//! Per-node plan cache.
//!
//! High-QPS continuous workloads submit the same SQL text over and over (every
//! monitoring dashboard refresh, every re-armed probe).  Re-running the
//! lex/parse/bind/optimize/cost pipeline for each submission is pure waste, so
//! each [`PierNode`](crate::engine::PierNode) keeps a small [`PlanCache`]
//! keyed by `(SQL text, catalog version)`: any change to a table definition or
//! its statistics bumps the [`Catalog`] version and
//! thereby invalidates every plan produced against the older catalog, with no
//! explicit invalidation protocol.

use super::{PlanError, PlannedQuery, Planner};
use crate::catalog::Catalog;
use crate::sql::{parse_select, SelectStmt};
use std::collections::{HashMap, VecDeque};

/// Default number of cached plans per node.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// A bounded map from `(SQL text, catalog version)` to a finished
/// [`PlannedQuery`].  Insertion-order eviction: stale catalog versions age out
/// naturally as new plans displace them.
#[derive(Debug, Default)]
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<(String, u64), PlannedQuery>,
    order: VecDeque<(String, u64)>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// A cache holding up to [`DEFAULT_PLAN_CACHE_CAPACITY`] plans.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// A cache holding up to `capacity` plans (0 disables caching).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache { capacity, entries: HashMap::new(), order: VecDeque::new(), hits: 0, misses: 0 }
    }

    /// Plan `sql` (which must be a bare `SELECT`) against `catalog`, reusing
    /// the cached plan when the same text was already planned at the current
    /// catalog version.  A hit skips the entire pipeline, lexing included.
    pub fn plan_sql(&mut self, catalog: &Catalog, sql: &str) -> Result<PlannedQuery, PlanError> {
        if let Some(plan) = self.lookup(sql, catalog.version()) {
            return Ok(plan);
        }
        let stmt = parse_select(sql).map_err(|e| PlanError::new(e.to_string()))?;
        self.plan_parsed(catalog, sql, &stmt)
    }

    /// Plan an already-parsed `SELECT`, inserting the result under `sql`.
    /// Callers that parsed the statement themselves (to dispatch on the
    /// statement kind) use this to avoid parsing twice on a miss.
    pub fn plan_parsed(
        &mut self,
        catalog: &Catalog,
        sql: &str,
        stmt: &SelectStmt,
    ) -> Result<PlannedQuery, PlanError> {
        self.misses += 1;
        let version = catalog.version();
        let planned = Planner::new(catalog).plan_select(stmt)?;
        self.insert(sql.to_string(), version, planned.clone());
        Ok(planned)
    }

    /// The cached plan for `(sql, version)`, if present.  Counts a hit when
    /// found; absence is not counted as a miss here — misses are recorded by
    /// [`PlanCache::plan_parsed`] when the planning pipeline actually runs,
    /// so non-SELECT submissions probing the cache don't skew the hit rate.
    pub fn lookup(&mut self, sql: &str, version: u64) -> Option<PlannedQuery> {
        // One key probe without allocating on miss would need raw-entry APIs;
        // a String per lookup is noise next to the planning work it saves.
        let key = (sql.to_string(), version);
        let plan = self.entries.get(&key).cloned();
        if plan.is_some() {
            self.hits += 1;
        }
        plan
    }

    fn insert(&mut self, sql: String, version: u64, plan: PlannedQuery) {
        if self.capacity == 0 {
            return;
        }
        let key = (sql, version);
        if self.entries.insert(key.clone(), plan).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.entries.remove(&oldest);
                }
            }
        }
    }

    /// Drop every cached plan for `sql`, across all catalog versions.  The
    /// feedback re-planner calls this when a query's observed statistics
    /// diverge from the catalog estimates: the cached (catalog-only) plan
    /// would otherwise be served to identical future submissions even though
    /// the engine has since learned a better order.
    pub fn invalidate(&mut self, sql: &str) {
        self.entries.retain(|(s, _), _| s != sql);
        self.order.retain(|(s, _)| s != sql);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Submissions that ran the planning pipeline (cache misses).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{TableDef, TableStats};
    use crate::tuple::Schema;
    use crate::value::DataType;
    use pier_simnet::Duration;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(TableDef::new(
            "t",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
            "a",
            Duration::from_secs(60),
        ));
        cat
    }

    #[test]
    fn repeat_submissions_hit() {
        let cat = catalog();
        let mut cache = PlanCache::new();
        let sql = "SELECT a FROM t WHERE b > 1";
        let p1 = cache.plan_sql(&cat, sql).unwrap();
        let p2 = cache.plan_sql(&cat, sql).unwrap();
        assert_eq!(p1.output_names, p2.output_names);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn catalog_changes_invalidate() {
        let mut cat = catalog();
        let mut cache = PlanCache::new();
        let sql = "SELECT a FROM t";
        cache.plan_sql(&cat, sql).unwrap();
        cat.set_stats("t", TableStats::with_rows(10));
        cache.plan_sql(&cat, sql).unwrap();
        assert_eq!(cache.hits(), 0, "stale version must not be served");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2, "plans for both versions coexist until evicted");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let cat = catalog();
        let mut cache = PlanCache::with_capacity(2);
        cache.plan_sql(&cat, "SELECT a FROM t").unwrap();
        cache.plan_sql(&cat, "SELECT b FROM t").unwrap();
        cache.plan_sql(&cat, "SELECT a, b FROM t").unwrap();
        assert_eq!(cache.len(), 2);
        // The first entry was evicted; re-planning it is a miss.
        assert!(cache.lookup("SELECT a FROM t", cat.version()).is_none());
    }

    #[test]
    fn zero_capacity_disables() {
        let cat = catalog();
        let mut cache = PlanCache::with_capacity(0);
        cache.plan_sql(&cat, "SELECT a FROM t").unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn invalidate_drops_all_versions_of_one_statement() {
        let mut cat = catalog();
        let mut cache = PlanCache::new();
        let sql = "SELECT a FROM t";
        cache.plan_sql(&cat, sql).unwrap();
        cat.set_stats("t", TableStats::with_rows(10));
        cache.plan_sql(&cat, sql).unwrap();
        cache.plan_sql(&cat, "SELECT b FROM t").unwrap();
        assert_eq!(cache.len(), 3);
        cache.invalidate(sql);
        assert_eq!(cache.len(), 1, "both versions of the invalidated text drop");
        assert!(cache.lookup(sql, cat.version()).is_none());
        assert!(cache.lookup("SELECT b FROM t", cat.version()).is_some());
    }

    #[test]
    fn parse_errors_surface() {
        let cat = catalog();
        let mut cache = PlanCache::new();
        assert!(cache.plan_sql(&cat, "SELEC a FROM t").is_err());
        assert!(cache.is_empty());
    }
}
