//! # pier-core — PIER, the Internet-scale relational query processor
//!
//! This crate reproduces the system demonstrated in *"Querying at Internet
//! Scale"* (SIGMOD 2004): **PIER**, a decentralized query processor that uses
//! a Distributed Hash Table both as its communication substrate and as its
//! temporary tuple store.
//!
//! The crate provides, per the paper's description:
//!
//! * a **declarative interface** — a SQL dialect with continuous-query
//!   extensions ([`sql`], [`planner`]);
//! * an **algebraic interface** — "boxes and arrows" dataflow graphs
//!   supporting trees, DAGs, and cyclic (recursive) graphs ([`dataflow`]);
//! * **multihop, in-network operators** — hierarchical aggregation, symmetric
//!   rehash / Fetch-Matches / Bloom-filter joins, recursive expansion, and
//!   query/result dissemination ([`engine`]);
//! * **continuous queries** re-evaluated every epoch over a window of recent
//!   soft state;
//! * an **observability-and-adaptivity plane** — per-query execution traces
//!   aggregated network-wide by `EXPLAIN ANALYZE` ([`mod@trace`]), gossiped
//!   automatic statistics ([`mod@stats`]), and mid-flight re-planning of
//!   continuous queries when the statistics flip the cost ranking;
//! * a **deployment harness** ([`testbed`]) playing the role of the PlanetLab
//!   testbed, plus a centralized [`mod@reference`] evaluator used as ground truth
//!   in tests.
//!
//! ## Quickstart
//!
//! ```
//! use pier_core::prelude::*;
//!
//! // Boot a 12-node PIER overlay (simulated wide-area network).
//! let mut bed = PierTestbed::quick(12, 42);
//!
//! // Agree on a relation and publish a reading from every node.
//! let def = TableDef::new(
//!     "netstats",
//!     Schema::of(&[("host", DataType::Str), ("out_rate", DataType::Float)]),
//!     "host",
//!     Duration::from_secs(300),
//! );
//! bed.create_table_everywhere(&def);
//! for (i, &addr) in bed.nodes().to_vec().iter().enumerate() {
//!     bed.publish_local(addr, "netstats", Tuple::new(vec![
//!         Value::str(format!("host-{i}")),
//!         Value::Float(10.0 * (i as f64 + 1.0)),
//!     ]));
//! }
//! bed.run_for(Duration::from_secs(2));
//!
//! // Ask the network-wide question from any node.
//! let rows = bed
//!     .query_once("SELECT COUNT(*), SUM(out_rate) FROM netstats", Duration::from_secs(10))
//!     .unwrap();
//! assert_eq!(rows[0].get(0), &Value::Int(12));
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod bloom;
pub mod catalog;
pub mod column;
pub mod dataflow;
pub mod encoding;
pub mod engine;
pub mod expr;
pub mod kernel;
pub mod payload;
pub mod plan;
pub mod planner;
pub mod query;
pub mod reference;
pub mod sql;
pub mod stats;
pub mod testbed;
pub mod trace;
pub mod tuple;
pub mod value;

pub use aggregate::{AggFunc, AggState};
pub use bloom::BloomFilter;
pub use catalog::{Catalog, TableDef, TableStats};
pub use column::{Column, ColumnData, ColumnarBatch};
pub use encoding::{ColumnarWire, TupleBlock, WireColumn};
pub use engine::{
    AggregationMode, EngineStats, PierConfig, PierError, PierMsg, PierNode, QueryResults,
    WindowLatePolicy,
};
pub use expr::{BinaryOp, Expr, ScalarFunc, UnaryOp};
pub use kernel::Kernel;
pub use payload::PierPayload;
pub use plan::{AggExpr, LogicalPlan, SortKey};
pub use planner::{Explanation, PlanCache, PlanError, PlannedQuery, Planner};
pub use query::{
    ContinuousSpec, JoinStrategy, QueryId, QueryKind, QuerySpec, ResultRow, WindowSpec,
};
pub use reference::{same_rows, MemoryDb};
pub use stats::{GossipView, NodeStatsEntry, TableSummary};
pub use testbed::{PierTestbed, TestbedConfig};
pub use trace::{render_network_trace, OpTrace};
pub use tuple::{Field, Schema, Tuple};
pub use value::{DataType, Value};

/// Commonly used items, for `use pier_core::prelude::*`.
pub mod prelude {
    pub use crate::catalog::{TableDef, TableStats};
    pub use crate::engine::{PierConfig, PierNode, WindowLatePolicy};
    pub use crate::query::{ContinuousSpec, JoinStrategy, QueryId, QueryKind, WindowSpec};
    pub use crate::testbed::{PierTestbed, TestbedConfig};
    pub use crate::tuple::{Schema, Tuple};
    pub use crate::value::{DataType, Value};
    pub use pier_simnet::{Duration, NodeAddr, SimTime};
}
