//! Scalar expressions.
//!
//! Expressions appear in selections (`WHERE`), projections (`SELECT`), join
//! predicates and `HAVING` clauses.  By the time a query reaches execution its
//! column references have been resolved to tuple positions, so evaluation is a
//! simple recursive walk with no name lookups on the hot path.

use crate::tuple::Tuple;
use crate::value::Value;
use pier_simnet::WireSize;
use std::fmt;

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (by zero yields NULL).
    Div,
    /// Modulo.
    Mod,
    /// Equality (SQL semantics: NULL ≠ anything).
    Eq,
    /// Inequality.
    NotEq,
    /// Less-than.
    Lt,
    /// Less-than-or-equal.
    LtEq,
    /// Greater-than.
    Gt,
    /// Greater-than-or-equal.
    GtEq,
    /// Logical AND (three-valued).
    And,
    /// Logical OR (three-valued).
    Or,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
    /// `IS NULL`.
    IsNull,
    /// `IS NOT NULL`.
    IsNotNull,
}

/// Built-in scalar functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalarFunc {
    /// Lower-case a string.
    Lower,
    /// Upper-case a string.
    Upper,
    /// String length / absolute value of a number.
    Length,
    /// Absolute value.
    Abs,
}

/// A scalar expression with resolved column references.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Reference to a tuple position.
    Column(usize),
    /// A literal constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Scalar function call.
    Func {
        /// Which function.
        func: ScalarFunc,
        /// Argument.
        arg: Box<Expr>,
    },
    /// `expr LIKE 'pattern'` with `%` and `_` wildcards.
    Like {
        /// The string expression.
        expr: Box<Expr>,
        /// The pattern.
        pattern: String,
    },
}

impl Expr {
    /// A column reference.
    pub fn col(idx: usize) -> Expr {
        Expr::Column(idx)
    }

    /// A literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self op other`.
    pub fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(self), right: Box::new(other) }
    }

    /// Equality comparison.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Eq, other)
    }

    /// Greater-than comparison.
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Gt, other)
    }

    /// Logical AND.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Value {
        match self {
            Expr::Column(i) => tuple.get(*i).clone(),
            Expr::Literal(v) => v.clone(),
            Expr::Binary { op, left, right } => {
                let l = left.eval(tuple);
                let r = right.eval(tuple);
                eval_binary(*op, &l, &r)
            }
            Expr::Unary { op, expr } => eval_unary(*op, expr.eval(tuple)),
            Expr::Func { func, arg } => eval_func(*func, arg.eval(tuple)),
            Expr::Like { expr, pattern } => eval_like(expr.eval(tuple), pattern),
        }
    }

    /// Evaluate as a predicate: true only if the result is boolean true.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.eval_cow(tuple).is_truthy()
    }

    /// Evaluate against a tuple, borrowing from it where possible.
    ///
    /// The two leaf shapes that dominate real plans — column references and
    /// literals — return `Cow::Borrowed`, so predicates and hash-key
    /// evaluations over them are clone-free; only computed interior nodes
    /// allocate.  Semantically identical to [`Expr::eval`].
    pub fn eval_cow<'a>(&'a self, tuple: &'a Tuple) -> std::borrow::Cow<'a, Value> {
        use std::borrow::Cow;
        match self {
            Expr::Column(i) => Cow::Borrowed(tuple.get(*i)),
            Expr::Literal(v) => Cow::Borrowed(v),
            Expr::Binary { op, left, right } => {
                let l = left.eval_cow(tuple);
                let r = right.eval_cow(tuple);
                Cow::Owned(eval_binary(*op, &l, &r))
            }
            _ => Cow::Owned(self.eval(tuple)),
        }
    }

    /// The highest column index referenced (used for sanity checks).
    pub fn max_column(&self) -> Option<usize> {
        match self {
            Expr::Column(i) => Some(*i),
            Expr::Literal(_) => None,
            Expr::Binary { left, right, .. } => match (left.max_column(), right.max_column()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            Expr::Unary { expr, .. } | Expr::Func { arg: expr, .. } | Expr::Like { expr, .. } => {
                expr.max_column()
            }
        }
    }

    /// Every column index referenced by this expression (with duplicates).
    pub fn referenced_columns(&self) -> Vec<usize> {
        fn rec(e: &Expr, out: &mut Vec<usize>) {
            match e {
                Expr::Column(i) => out.push(*i),
                Expr::Literal(_) => {}
                Expr::Binary { left, right, .. } => {
                    rec(left, out);
                    rec(right, out);
                }
                Expr::Unary { expr, .. }
                | Expr::Func { arg: expr, .. }
                | Expr::Like { expr, .. } => rec(expr, out),
            }
        }
        let mut out = Vec::new();
        rec(self, &mut out);
        out
    }

    /// Is this expression free of column references (a constant expression)?
    pub fn is_constant(&self) -> bool {
        self.max_column().is_none()
    }

    /// Rewrite every column reference through `map` (used by the optimizer to
    /// push predicates through projections and to renumber columns after
    /// pruning).
    pub fn substitute_columns(&self, map: &dyn Fn(usize) -> Expr) -> Expr {
        match self {
            Expr::Column(i) => map(*i),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.substitute_columns(map)),
                right: Box::new(right.substitute_columns(map)),
            },
            Expr::Unary { op, expr } => {
                Expr::Unary { op: *op, expr: Box::new(expr.substitute_columns(map)) }
            }
            Expr::Func { func, arg } => {
                Expr::Func { func: *func, arg: Box::new(arg.substitute_columns(map)) }
            }
            Expr::Like { expr, pattern } => Expr::Like {
                expr: Box::new(expr.substitute_columns(map)),
                pattern: pattern.clone(),
            },
        }
    }
}

impl fmt::Display for Expr {
    /// Compact rendering used by `EXPLAIN`: columns print as `#n`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "NOT {expr}"),
                UnaryOp::Neg => write!(f, "-{expr}"),
                UnaryOp::IsNull => write!(f, "{expr} IS NULL"),
                UnaryOp::IsNotNull => write!(f, "{expr} IS NOT NULL"),
            },
            Expr::Func { func, arg } => {
                let name = match func {
                    ScalarFunc::Lower => "lower",
                    ScalarFunc::Upper => "upper",
                    ScalarFunc::Length => "length",
                    ScalarFunc::Abs => "abs",
                };
                write!(f, "{name}({arg})")
            }
            Expr::Like { expr, pattern } => write!(f, "{expr} LIKE '{pattern}'"),
        }
    }
}

/// Scalar unary-operator semantics, shared with the vectorized kernels.
pub(crate) fn eval_unary(op: UnaryOp, v: Value) -> Value {
    match op {
        UnaryOp::Not => match v {
            Value::Bool(b) => Value::Bool(!b),
            _ => Value::Null,
        },
        UnaryOp::Neg => match v {
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            _ => Value::Null,
        },
        UnaryOp::IsNull => Value::Bool(v.is_null()),
        UnaryOp::IsNotNull => Value::Bool(!v.is_null()),
    }
}

/// Scalar function semantics, shared with the vectorized kernels.
pub(crate) fn eval_func(func: ScalarFunc, v: Value) -> Value {
    match func {
        ScalarFunc::Lower => match v {
            Value::Str(s) => Value::Str(s.to_ascii_lowercase()),
            _ => Value::Null,
        },
        ScalarFunc::Upper => match v {
            Value::Str(s) => Value::Str(s.to_ascii_uppercase()),
            _ => Value::Null,
        },
        ScalarFunc::Length => match v {
            Value::Str(s) => Value::Int(s.len() as i64),
            _ => Value::Null,
        },
        ScalarFunc::Abs => match v {
            Value::Int(i) => Value::Int(i.abs()),
            Value::Float(f) => Value::Float(f.abs()),
            _ => Value::Null,
        },
    }
}

/// Scalar `LIKE` semantics, shared with the vectorized kernels.
pub(crate) fn eval_like(v: Value, pattern: &str) -> Value {
    match v {
        Value::Str(s) => Value::Bool(like_match(&s, pattern)),
        Value::Null => Value::Null,
        _ => Value::Bool(false),
    }
}

/// Scalar binary-operator semantics — the single source of truth the
/// vectorized kernels in [`kernel`](crate::kernel) fall back to (and are
/// property-tested against), so the two paths cannot drift.
pub(crate) fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> Value {
    use BinaryOp::*;
    match op {
        And => match (l, r) {
            (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
            (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        Or => match (l, r) {
            (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
            (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let Some(ord) = l.sql_cmp(r) else { return Value::Null };
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                NotEq => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Value::Bool(b)
        }
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Value::Null;
            }
            // Integer arithmetic stays integral when both sides are integers.
            if let (Value::Int(a), Value::Int(b)) = (l, r) {
                return match op {
                    Add => Value::Int(a.wrapping_add(*b)),
                    Sub => Value::Int(a.wrapping_sub(*b)),
                    Mul => Value::Int(a.wrapping_mul(*b)),
                    Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Int(a / b)
                        }
                    }
                    Mod => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Int(a % b)
                        }
                    }
                    _ => unreachable!(),
                };
            }
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else { return Value::Null };
            match op {
                Add => Value::Float(a + b),
                Sub => Value::Float(a - b),
                Mul => Value::Float(a * b),
                Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                Mod => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a % b)
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

/// SQL `LIKE` matching with `%` (any run) and `_` (any single char),
/// case-insensitive (which is what the filesharing keyword search wants).
pub(crate) fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                // Try to consume zero or more characters.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => !s.is_empty() && s[0].eq_ignore_ascii_case(&c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

impl WireSize for Expr {
    fn wire_size(&self) -> usize {
        match self {
            Expr::Column(_) => 3,
            Expr::Literal(v) => 1 + v.wire_size(),
            Expr::Binary { left, right, .. } => 2 + left.wire_size() + right.wire_size(),
            Expr::Unary { expr, .. } | Expr::Func { arg: expr, .. } => 2 + expr.wire_size(),
            Expr::Like { expr, pattern } => 1 + expr.wire_size() + 4 + pattern.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn column_and_literal() {
        let t = tup(vec![Value::Int(5), Value::str("x")]);
        assert_eq!(Expr::col(0).eval(&t), Value::Int(5));
        assert_eq!(Expr::col(7).eval(&t), Value::Null);
        assert_eq!(Expr::lit(9i64).eval(&t), Value::Int(9));
    }

    #[test]
    fn arithmetic() {
        let t = tup(vec![Value::Int(10), Value::Float(2.5)]);
        let add = Expr::col(0).binary(BinaryOp::Add, Expr::lit(5i64));
        assert_eq!(add.eval(&t), Value::Int(15));
        let mixed = Expr::col(0).binary(BinaryOp::Mul, Expr::col(1));
        assert_eq!(mixed.eval(&t), Value::Float(25.0));
        let div0 = Expr::col(0).binary(BinaryOp::Div, Expr::lit(0i64));
        assert_eq!(div0.eval(&t), Value::Null);
        let modulo = Expr::col(0).binary(BinaryOp::Mod, Expr::lit(3i64));
        assert_eq!(modulo.eval(&t), Value::Int(1));
        let with_null = Expr::col(0).binary(BinaryOp::Add, Expr::lit(Value::Null));
        assert_eq!(with_null.eval(&t), Value::Null);
    }

    #[test]
    fn comparisons_and_predicates() {
        let t = tup(vec![Value::Int(10), Value::str("abc"), Value::Null]);
        assert!(Expr::col(0).gt(Expr::lit(5i64)).matches(&t));
        assert!(!Expr::col(0).gt(Expr::lit(50i64)).matches(&t));
        assert!(Expr::col(1).eq(Expr::lit("abc")).matches(&t));
        // NULL comparisons are never true.
        assert!(!Expr::col(2).eq(Expr::lit(1i64)).matches(&t));
        assert!(!Expr::col(2).eq(Expr::col(2)).matches(&t));
    }

    #[test]
    fn three_valued_logic() {
        let t = tup(vec![Value::Null, Value::Int(1)]);
        let null_cmp = Expr::col(0).eq(Expr::lit(1i64)); // NULL
        let true_cmp = Expr::col(1).eq(Expr::lit(1i64)); // TRUE
        let false_cmp = Expr::col(1).eq(Expr::lit(2i64)); // FALSE
                                                          // NULL AND FALSE = FALSE ; NULL AND TRUE = NULL ; NULL OR TRUE = TRUE.
        assert_eq!(null_cmp.clone().and(false_cmp.clone()).eval(&t), Value::Bool(false));
        assert_eq!(null_cmp.clone().and(true_cmp.clone()).eval(&t), Value::Null);
        assert_eq!(null_cmp.clone().binary(BinaryOp::Or, true_cmp).eval(&t), Value::Bool(true));
        assert_eq!(null_cmp.binary(BinaryOp::Or, false_cmp).eval(&t), Value::Null);
    }

    #[test]
    fn unary_ops() {
        let t = tup(vec![Value::Int(-4), Value::Null, Value::Bool(true)]);
        assert_eq!(
            Expr::Unary { op: UnaryOp::Neg, expr: Box::new(Expr::col(0)) }.eval(&t),
            Value::Int(4)
        );
        assert_eq!(
            Expr::Unary { op: UnaryOp::Not, expr: Box::new(Expr::col(2)) }.eval(&t),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::Unary { op: UnaryOp::IsNull, expr: Box::new(Expr::col(1)) }.eval(&t),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::Unary { op: UnaryOp::IsNotNull, expr: Box::new(Expr::col(1)) }.eval(&t),
            Value::Bool(false)
        );
    }

    #[test]
    fn scalar_functions() {
        let t = tup(vec![Value::str("MiXeD"), Value::Int(-9), Value::Float(-2.5)]);
        let lower = Expr::Func { func: ScalarFunc::Lower, arg: Box::new(Expr::col(0)) };
        let upper = Expr::Func { func: ScalarFunc::Upper, arg: Box::new(Expr::col(0)) };
        let length = Expr::Func { func: ScalarFunc::Length, arg: Box::new(Expr::col(0)) };
        let abs_i = Expr::Func { func: ScalarFunc::Abs, arg: Box::new(Expr::col(1)) };
        let abs_f = Expr::Func { func: ScalarFunc::Abs, arg: Box::new(Expr::col(2)) };
        assert_eq!(lower.eval(&t), Value::str("mixed"));
        assert_eq!(upper.eval(&t), Value::str("MIXED"));
        assert_eq!(length.eval(&t), Value::Int(5));
        assert_eq!(abs_i.eval(&t), Value::Int(9));
        assert_eq!(abs_f.eval(&t), Value::Float(2.5));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello.mp3", "%.mp3"));
        assert!(like_match("hello.mp3", "hel%"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("HELLO", "hello"));
        assert!(!like_match("hello.ogg", "%.mp3"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%b%"));

        let t = tup(vec![Value::str("snort rule"), Value::Int(3)]);
        let e = Expr::Like { expr: Box::new(Expr::col(0)), pattern: "%rule".into() };
        assert!(e.matches(&t));
        let not_str = Expr::Like { expr: Box::new(Expr::col(1)), pattern: "%".into() };
        assert_eq!(not_str.eval(&t), Value::Bool(false));
    }

    #[test]
    fn max_column() {
        let e = Expr::col(2).and(Expr::col(5).gt(Expr::lit(1i64)));
        assert_eq!(e.max_column(), Some(5));
        assert_eq!(Expr::lit(1i64).max_column(), None);
    }

    #[test]
    fn wire_size_positive() {
        let e = Expr::col(0).eq(Expr::lit("abc"));
        assert!(e.wire_size() > 0);
    }
}
