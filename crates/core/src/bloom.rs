//! Bloom filters for distributed semi-joins.
//!
//! PIER's Bloom-filter join first ships compact summaries of one relation's
//! join keys to the query site, ORs them together, and re-disseminates the
//! combined filter so that nodes only rehash the tuples of the other relation
//! that might find a partner.  The filter here is a plain bit array with `k`
//! double-hashed probes; false positives only cost extra traffic, never
//! correctness.

use crate::value::Value;
use pier_simnet::WireSize;

/// A fixed-size Bloom filter over [`Value`]s.
#[derive(Clone, Debug, PartialEq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    k: u8,
    inserted: u64,
}

fn hash64(data: &str, seed: u64) -> u64 {
    // FNV-1a with a seed mixed in; cheap, deterministic across nodes.
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for b in data.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl BloomFilter {
    /// Create a filter with `num_bits` bits (rounded up to 64) and `k` probes.
    pub fn new(num_bits: usize, k: u8) -> Self {
        let num_bits = num_bits.max(64);
        let words = num_bits.div_ceil(64);
        BloomFilter { bits: vec![0; words], num_bits: words * 64, k: k.max(1), inserted: 0 }
    }

    /// A filter sized for roughly `expected` keys at ~1% false positives.
    pub fn for_capacity(expected: usize) -> Self {
        let bits = (expected.max(16) * 10).next_power_of_two();
        BloomFilter::new(bits, 4)
    }

    fn probes(&self, value: &Value) -> Vec<usize> {
        let key = value.partition_string();
        let h1 = hash64(&key, 0x5151);
        let h2 = hash64(&key, 0xA3A3) | 1;
        (0..self.k)
            .map(|i| (h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.num_bits as u64) as usize)
            .collect()
    }

    /// Insert a value.
    pub fn insert(&mut self, value: &Value) {
        for p in self.probes(value) {
            self.bits[p / 64] |= 1u64 << (p % 64);
        }
        self.inserted += 1;
    }

    /// Might the value have been inserted?  (No false negatives.)
    pub fn may_contain(&self, value: &Value) -> bool {
        self.probes(value).iter().all(|&p| self.bits[p / 64] & (1u64 << (p % 64)) != 0)
    }

    /// OR another filter into this one (they must have identical geometry).
    pub fn union(&mut self, other: &BloomFilter) {
        if other.num_bits != self.num_bits || other.k != self.k {
            // Geometry mismatch: degrade safely by saturating the filter so no
            // matches are lost (only extra traffic).
            self.bits.iter_mut().for_each(|w| *w = u64::MAX);
            return;
        }
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
        self.inserted += other.inserted;
    }

    /// Number of values inserted (across unions).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Fraction of bits set (diagnostic for false-positive estimation).
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.num_bits as f64
    }

    /// Raw words (for shipping over the wire).
    pub fn to_words(&self) -> (Vec<u64>, u8) {
        (self.bits.clone(), self.k)
    }

    /// Rebuild from shipped words.
    pub fn from_words(bits: Vec<u64>, k: u8) -> Self {
        let num_bits = bits.len().max(1) * 64;
        BloomFilter { bits, num_bits, k: k.max(1), inserted: 0 }
    }
}

impl WireSize for BloomFilter {
    fn wire_size(&self) -> usize {
        self.bits.len() * 8 + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1024, 4);
        let values: Vec<Value> = (0..100).map(Value::Int).collect();
        for v in &values {
            f.insert(v);
        }
        for v in &values {
            assert!(f.may_contain(v), "false negative for {v}");
        }
        assert_eq!(f.inserted(), 100);
    }

    #[test]
    fn few_false_positives_when_sized_right() {
        let mut f = BloomFilter::for_capacity(500);
        for i in 0..500 {
            f.insert(&Value::Int(i));
        }
        let fp = (10_000..20_000).filter(|&i| f.may_contain(&Value::Int(i))).count();
        assert!(fp < 500, "false positive count {fp} too high");
        assert!(f.fill_ratio() < 0.6);
    }

    #[test]
    fn union_preserves_membership() {
        let mut a = BloomFilter::new(512, 3);
        let mut b = BloomFilter::new(512, 3);
        a.insert(&Value::str("left"));
        b.insert(&Value::str("right"));
        a.union(&b);
        assert!(a.may_contain(&Value::str("left")));
        assert!(a.may_contain(&Value::str("right")));
        assert_eq!(a.inserted(), 2);
    }

    #[test]
    fn union_with_mismatched_geometry_saturates() {
        let mut a = BloomFilter::new(512, 3);
        let b = BloomFilter::new(1024, 3);
        a.union(&b);
        // Saturated: everything "matches", so no join results can be lost.
        assert!(a.may_contain(&Value::Int(123456)));
    }

    #[test]
    fn round_trip_words() {
        let mut a = BloomFilter::new(256, 4);
        a.insert(&Value::str("x"));
        let (words, k) = a.to_words();
        let b = BloomFilter::from_words(words, k);
        assert!(b.may_contain(&Value::str("x")));
        assert!(!b.may_contain(&Value::str("definitely-not-here")) || b.fill_ratio() > 0.9);
    }

    #[test]
    fn distinct_values_hash_differently() {
        let f = BloomFilter::new(4096, 4);
        let p1 = f.probes(&Value::Int(1));
        let p2 = f.probes(&Value::Int(2));
        assert_ne!(p1, p2);
        assert_eq!(p1.len(), 4);
    }

    #[test]
    fn wire_size_scales_with_bits() {
        assert!(BloomFilter::new(4096, 4).wire_size() > BloomFilter::new(256, 4).wire_size());
    }
}
