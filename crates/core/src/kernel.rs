//! Vectorized expression kernels.
//!
//! An [`Expr`] is compiled **once per plan** into a [`Kernel`] tree; at epoch
//! time each kernel evaluates over a whole [`ColumnarBatch`] and a selection
//! vector, producing one dense output [`Column`] instead of one `Value` per
//! row.  The common shapes of real plans — `column ⟨cmp⟩ literal` filters,
//! `column ⟨arith⟩ column` projections, `AND`/`OR` of boolean masks — run as
//! typed loops over `i64`/`f64`/`&str` slices with no `Value` materialization
//! at all; every other shape falls back to an element-wise loop over the same
//! scalar helpers `Expr::eval` uses (`expr::eval_binary` and friends), so
//! the two paths cannot produce different answers.  The property tests in
//! `tests/columnar_exec.rs` pin that equivalence on randomized batches.

use crate::column::{Bitmap, Column, ColumnData, ColumnarBatch};
use crate::expr::{self, BinaryOp, Expr, ScalarFunc, UnaryOp};
use crate::value::Value;
use std::cmp::Ordering;

/// A compiled, vectorizable expression.  Structurally mirrors [`Expr`] (the
/// compilation is shape-preserving); the vectorization lives in how each node
/// *evaluates*, not in what it stores.
#[derive(Clone, Debug)]
pub enum Kernel {
    /// Read a batch column.
    Column(usize),
    /// Broadcast a constant.
    Literal(Value),
    /// Binary operator over two sub-kernels.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Kernel>,
        /// Right operand.
        right: Box<Kernel>,
    },
    /// Unary operator.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Kernel>,
    },
    /// Scalar function call.
    Func {
        /// Which function.
        func: ScalarFunc,
        /// Argument.
        arg: Box<Kernel>,
    },
    /// `LIKE` pattern match.
    Like {
        /// The string operand.
        expr: Box<Kernel>,
        /// The pattern.
        pattern: String,
    },
}

/// Three-valued logic element: the truth class of one evaluated value.
#[derive(Clone, Copy, PartialEq)]
enum Truth {
    False,
    True,
    /// Non-NULL, non-boolean (participates in AND/OR as "unknown").
    Other,
    Null,
}

impl Kernel {
    /// Compile an expression.  Cheap (one allocation per node); plans hold on
    /// to the result so the per-epoch hot path never re-walks the `Expr`.
    pub fn compile(e: &Expr) -> Kernel {
        match e {
            Expr::Column(i) => Kernel::Column(*i),
            Expr::Literal(v) => Kernel::Literal(v.clone()),
            Expr::Binary { op, left, right } => Kernel::Binary {
                op: *op,
                left: Box::new(Kernel::compile(left)),
                right: Box::new(Kernel::compile(right)),
            },
            Expr::Unary { op, expr } => {
                Kernel::Unary { op: *op, expr: Box::new(Kernel::compile(expr)) }
            }
            Expr::Func { func, arg } => {
                Kernel::Func { func: *func, arg: Box::new(Kernel::compile(arg)) }
            }
            Expr::Like { expr, pattern } => {
                Kernel::Like { expr: Box::new(Kernel::compile(expr)), pattern: pattern.clone() }
            }
        }
    }

    /// Compile a slice of expressions (projections, group keys, agg args).
    pub fn compile_all(exprs: &[Expr]) -> Vec<Kernel> {
        exprs.iter().map(Kernel::compile).collect()
    }

    /// Evaluate over `sel` rows of `batch`, producing a dense column of
    /// `sel.len()` results (result `j` is the value for row `sel[j]`).
    pub fn eval(&self, batch: &ColumnarBatch, sel: &[u32]) -> Column {
        match self {
            Kernel::Column(i) => match batch.column(*i) {
                Some(col) => gather(col, sel),
                None => Column::nulls(sel.len()),
            },
            Kernel::Literal(v) => broadcast(v, sel.len()),
            Kernel::Binary { op, left, right } => {
                // Fast path: `column ⟨op⟩ literal` (either order) reads the
                // batch column in place — no gather, no clones.
                if let (Kernel::Column(i), Kernel::Literal(v)) = (&**left, &**right) {
                    if let Some(col) = batch.column(*i) {
                        if let Some(out) = col_lit_fast(*op, col, sel, v, false) {
                            return out;
                        }
                    }
                }
                if let (Kernel::Literal(v), Kernel::Column(i)) = (&**left, &**right) {
                    if let Some(col) = batch.column(*i) {
                        if let Some(out) = col_lit_fast(*op, col, sel, v, true) {
                            return out;
                        }
                    }
                }
                let l = left.eval(batch, sel);
                let r = right.eval(batch, sel);
                binary_dense(*op, &l, &r)
            }
            Kernel::Unary { op, expr } => unary_dense(*op, &expr.eval(batch, sel)),
            Kernel::Func { func, arg } => func_dense(*func, &arg.eval(batch, sel)),
            Kernel::Like { expr, pattern } => like_dense(&expr.eval(batch, sel), pattern),
        }
    }

    /// Evaluate as a predicate: the subset of `sel` whose result is boolean
    /// true (the vectorized equivalent of `Expr::matches` per row).
    pub fn filter(&self, batch: &ColumnarBatch, sel: &[u32]) -> Vec<u32> {
        // Fused path: a top-level `column ⟨cmp⟩ literal` predicate — the
        // dominant filter shape — selects straight off the batch column,
        // materializing no boolean mask at all.
        if let Kernel::Binary { op, left, right } = self {
            if is_cmp(*op) {
                let fused = match (&**left, &**right) {
                    (Kernel::Column(i), Kernel::Literal(v)) => Some((*i, v, false)),
                    (Kernel::Literal(v), Kernel::Column(i)) => Some((*i, v, true)),
                    _ => None,
                };
                if let Some((i, lit, flipped)) = fused {
                    if let Some(col) = batch.column(i) {
                        if let Some(out) = fused_cmp_filter(*op, col, sel, lit, flipped) {
                            return out;
                        }
                    }
                }
            }
        }
        let mask = self.eval(batch, sel);
        let mut out = Vec::with_capacity(sel.len());
        match &mask.data {
            ColumnData::Bool(bits) if mask.validity.all_are_valid() => {
                // Branchless compaction: unconditionally store, advance the
                // write cursor by the keep bit (no mispredicted branch per
                // row at mid selectivities).
                out.resize(sel.len(), 0);
                let mut k = 0usize;
                for (j, &row) in sel.iter().enumerate() {
                    out[k] = row;
                    k += bits[j] as usize;
                }
                out.truncate(k);
            }
            ColumnData::Bool(bits) => {
                // Same branchless store; a NULL mask entry rejects the row.
                out.resize(sel.len(), 0);
                let mut k = 0usize;
                for (j, &row) in sel.iter().enumerate() {
                    out[k] = row;
                    k += (bits[j] && mask.validity.get(j)) as usize;
                }
                out.truncate(k);
            }
            ColumnData::Mixed(values) => {
                for (j, &row) in sel.iter().enumerate() {
                    if values[j].is_truthy() {
                        out.push(row);
                    }
                }
            }
            // A non-boolean result is never truthy.
            _ => {}
        }
        out
    }
}

/// Materialize `col[sel]` as a dense column.
fn gather(col: &Column, sel: &[u32]) -> Column {
    let n = sel.len();
    let mut validity = Bitmap::all_valid(n);
    if col.validity.all_are_valid() {
        let data = match &col.data {
            ColumnData::Int(v) => ColumnData::Int(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => ColumnData::Float(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str(v) => {
                ColumnData::Str(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnData::Mixed(v) => {
                ColumnData::Mixed(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        return Column { data, validity };
    }
    let data = match &col.data {
        ColumnData::Int(v) => {
            let mut out = Vec::with_capacity(n);
            for (j, &i) in sel.iter().enumerate() {
                if col.validity.get(i as usize) {
                    out.push(v[i as usize]);
                } else {
                    validity.set(j, false);
                    out.push(0);
                }
            }
            ColumnData::Int(out)
        }
        ColumnData::Float(v) => {
            let mut out = Vec::with_capacity(n);
            for (j, &i) in sel.iter().enumerate() {
                if col.validity.get(i as usize) {
                    out.push(v[i as usize]);
                } else {
                    validity.set(j, false);
                    out.push(0.0);
                }
            }
            ColumnData::Float(out)
        }
        ColumnData::Bool(v) => {
            let mut out = Vec::with_capacity(n);
            for (j, &i) in sel.iter().enumerate() {
                if col.validity.get(i as usize) {
                    out.push(v[i as usize]);
                } else {
                    validity.set(j, false);
                    out.push(false);
                }
            }
            ColumnData::Bool(out)
        }
        ColumnData::Str(v) => {
            let mut out = Vec::with_capacity(n);
            for (j, &i) in sel.iter().enumerate() {
                if col.validity.get(i as usize) {
                    out.push(v[i as usize].clone());
                } else {
                    validity.set(j, false);
                    out.push(String::new());
                }
            }
            ColumnData::Str(out)
        }
        ColumnData::Mixed(v) => {
            ColumnData::Mixed(sel.iter().map(|&i| v[i as usize].clone()).collect())
        }
    };
    Column { data, validity }
}

/// A column of `n` copies of a constant.
fn broadcast(v: &Value, n: usize) -> Column {
    match v {
        Value::Null => Column::nulls(n),
        Value::Int(x) => {
            Column { data: ColumnData::Int(vec![*x; n]), validity: Bitmap::all_valid(n) }
        }
        Value::Float(x) => {
            Column { data: ColumnData::Float(vec![*x; n]), validity: Bitmap::all_valid(n) }
        }
        Value::Bool(x) => {
            Column { data: ColumnData::Bool(vec![*x; n]), validity: Bitmap::all_valid(n) }
        }
        Value::Str(s) => {
            Column { data: ColumnData::Str(vec![s.clone(); n]), validity: Bitmap::all_valid(n) }
        }
    }
}

fn cmp_holds(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("cmp_holds is only called for comparison operators"),
    }
}

fn is_cmp(op: BinaryOp) -> bool {
    matches!(
        op,
        BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq
    )
}

/// Typed `column ⟨op⟩ literal` loops.  `flipped` means the literal is the
/// *left* operand.  Returns `None` when no typed loop applies (the caller
/// falls back to the generic dense path).
/// Branchless one-pass `sel[j] kept iff col[sel[j]] ⟨op⟩ lit` for numeric
/// comparisons.  A NULL value (or NaN comparison) rejects the row — the same
/// outcome the mask path reaches via its validity bitmap.
fn fused_cmp_filter(
    op: BinaryOp,
    col: &Column,
    sel: &[u32],
    lit: &Value,
    flipped: bool,
) -> Option<Vec<u32>> {
    let test = |ord: Ordering| cmp_holds(op, if flipped { ord.reverse() } else { ord });
    let dense = col.validity.all_are_valid();
    let mut out = vec![0u32; sel.len()];
    let mut k = 0usize;
    match (&col.data, lit) {
        (ColumnData::Int(v), Value::Int(b)) if dense => {
            for &row in sel {
                out[k] = row;
                k += test(v[row as usize].cmp(b)) as usize;
            }
        }
        (ColumnData::Int(v), Value::Int(b)) => {
            for &row in sel {
                let i = row as usize;
                out[k] = row;
                k += (col.validity.get(i) && test(v[i].cmp(b))) as usize;
            }
        }
        (ColumnData::Int(v), Value::Float(b)) => {
            for &row in sel {
                let i = row as usize;
                out[k] = row;
                let keep = (dense || col.validity.get(i))
                    && (v[i] as f64).partial_cmp(b).map(test).unwrap_or(false);
                k += keep as usize;
            }
        }
        (ColumnData::Float(v), Value::Int(b)) => {
            let b = *b as f64;
            for &row in sel {
                let i = row as usize;
                out[k] = row;
                let keep = (dense || col.validity.get(i))
                    && v[i].partial_cmp(&b).map(test).unwrap_or(false);
                k += keep as usize;
            }
        }
        (ColumnData::Float(v), Value::Float(b)) => {
            for &row in sel {
                let i = row as usize;
                out[k] = row;
                let keep = (dense || col.validity.get(i))
                    && v[i].partial_cmp(b).map(test).unwrap_or(false);
                k += keep as usize;
            }
        }
        _ => return None,
    }
    out.truncate(k);
    Some(out)
}

fn col_lit_fast(
    op: BinaryOp,
    col: &Column,
    sel: &[u32],
    lit: &Value,
    flipped: bool,
) -> Option<Column> {
    let n = sel.len();
    if is_cmp(op) {
        // `lit ⟨op⟩ col` is `col ⟨op'⟩ lit` with the ordering reversed.
        let test = |ord: Ordering| cmp_holds(op, if flipped { ord.reverse() } else { ord });
        let mut bits = Vec::with_capacity(n);
        let mut validity = Bitmap::all_valid(n);
        let dense = col.validity.all_are_valid();
        match (&col.data, lit) {
            (ColumnData::Int(v), Value::Int(b)) if dense => {
                bits.extend(sel.iter().map(|&i| test(v[i as usize].cmp(b))));
            }
            (ColumnData::Int(v), Value::Int(b)) => {
                for (j, &i) in sel.iter().enumerate() {
                    if col.validity.get(i as usize) {
                        bits.push(test(v[i as usize].cmp(b)));
                    } else {
                        validity.set(j, false);
                        bits.push(false);
                    }
                }
            }
            (ColumnData::Int(v), Value::Float(b)) => {
                for (j, &i) in sel.iter().enumerate() {
                    match col
                        .validity
                        .get(i as usize)
                        .then(|| (v[i as usize] as f64).partial_cmp(b))
                        .flatten()
                    {
                        Some(ord) => bits.push(test(ord)),
                        None => {
                            validity.set(j, false);
                            bits.push(false);
                        }
                    }
                }
            }
            // NaN comparisons stay NULL even in a fully valid column, so
            // the dense float loops still route `partial_cmp` misses to the
            // validity bitmap.
            (ColumnData::Float(v), Value::Int(b)) if dense => {
                let b = *b as f64;
                for (j, &i) in sel.iter().enumerate() {
                    match v[i as usize].partial_cmp(&b) {
                        Some(ord) => bits.push(test(ord)),
                        None => {
                            validity.set(j, false);
                            bits.push(false);
                        }
                    }
                }
            }
            (ColumnData::Float(v), Value::Float(b)) if dense => {
                for (j, &i) in sel.iter().enumerate() {
                    match v[i as usize].partial_cmp(b) {
                        Some(ord) => bits.push(test(ord)),
                        None => {
                            validity.set(j, false);
                            bits.push(false);
                        }
                    }
                }
            }
            (ColumnData::Float(v), Value::Int(b)) => {
                let b = *b as f64;
                for (j, &i) in sel.iter().enumerate() {
                    match col
                        .validity
                        .get(i as usize)
                        .then(|| v[i as usize].partial_cmp(&b))
                        .flatten()
                    {
                        Some(ord) => bits.push(test(ord)),
                        None => {
                            validity.set(j, false);
                            bits.push(false);
                        }
                    }
                }
            }
            (ColumnData::Float(v), Value::Float(b)) => {
                for (j, &i) in sel.iter().enumerate() {
                    match col
                        .validity
                        .get(i as usize)
                        .then(|| v[i as usize].partial_cmp(b))
                        .flatten()
                    {
                        Some(ord) => bits.push(test(ord)),
                        None => {
                            validity.set(j, false);
                            bits.push(false);
                        }
                    }
                }
            }
            (ColumnData::Str(v), Value::Str(b)) => {
                for (j, &i) in sel.iter().enumerate() {
                    if col.validity.get(i as usize) {
                        bits.push(test(v[i as usize].as_str().cmp(b.as_str())));
                    } else {
                        validity.set(j, false);
                        bits.push(false);
                    }
                }
            }
            (ColumnData::Bool(v), Value::Bool(b)) => {
                for (j, &i) in sel.iter().enumerate() {
                    if col.validity.get(i as usize) {
                        bits.push(test(v[i as usize].cmp(b)));
                    } else {
                        validity.set(j, false);
                        bits.push(false);
                    }
                }
            }
            // Incomparable or mixed: generic path handles it.
            _ => return None,
        }
        return Some(Column { data: ColumnData::Bool(bits), validity });
    }

    // Integer arithmetic against an integer literal — the projection shape
    // plans produce for computed columns.
    if matches!(op, BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod) {
        if let (ColumnData::Int(v), Value::Int(b)) = (&col.data, lit) {
            let mut out = Vec::with_capacity(n);
            let mut validity = Bitmap::all_valid(n);
            for (j, &i) in sel.iter().enumerate() {
                if !col.validity.get(i as usize) {
                    validity.set(j, false);
                    out.push(0);
                    continue;
                }
                let a = v[i as usize];
                let (x, y) = if flipped { (*b, a) } else { (a, *b) };
                let r = match op {
                    BinaryOp::Add => Some(x.wrapping_add(y)),
                    BinaryOp::Sub => Some(x.wrapping_sub(y)),
                    BinaryOp::Mul => Some(x.wrapping_mul(y)),
                    BinaryOp::Div => (y != 0).then(|| x / y),
                    BinaryOp::Mod => (y != 0).then(|| x % y),
                    _ => unreachable!(),
                };
                match r {
                    Some(r) => out.push(r),
                    None => {
                        validity.set(j, false);
                        out.push(0);
                    }
                }
            }
            return Some(Column { data: ColumnData::Int(out), validity });
        }
    }
    None
}

fn truth_at(col: &Column, j: usize) -> Truth {
    if !col.is_valid(j) {
        return Truth::Null;
    }
    match &col.data {
        ColumnData::Bool(v) => {
            if v[j] {
                Truth::True
            } else {
                Truth::False
            }
        }
        ColumnData::Mixed(v) => match &v[j] {
            Value::Bool(true) => Truth::True,
            Value::Bool(false) => Truth::False,
            Value::Null => Truth::Null,
            _ => Truth::Other,
        },
        _ => Truth::Other,
    }
}

/// Generic element-wise binary evaluation over two dense, aligned columns,
/// with typed loops for the numeric cases.
fn binary_dense(op: BinaryOp, l: &Column, r: &Column) -> Column {
    let n = l.len();
    debug_assert_eq!(n, r.len());

    match op {
        BinaryOp::And | BinaryOp::Or => {
            let mut bits = Vec::with_capacity(n);
            let mut validity = Bitmap::all_valid(n);
            for j in 0..n {
                let (a, b) = (truth_at(l, j), truth_at(r, j));
                let out = match op {
                    BinaryOp::And => {
                        if a == Truth::False || b == Truth::False {
                            Some(false)
                        } else if a == Truth::True && b == Truth::True {
                            Some(true)
                        } else {
                            None
                        }
                    }
                    _ => {
                        if a == Truth::True || b == Truth::True {
                            Some(true)
                        } else if a == Truth::False && b == Truth::False {
                            Some(false)
                        } else {
                            None
                        }
                    }
                };
                match out {
                    Some(bit) => bits.push(bit),
                    None => {
                        validity.set(j, false);
                        bits.push(false);
                    }
                }
            }
            return Column { data: ColumnData::Bool(bits), validity };
        }
        _ => {}
    }

    // Int ⟨op⟩ Int: comparison and wrapping arithmetic without Values.
    if let (ColumnData::Int(a), ColumnData::Int(b)) = (&l.data, &r.data) {
        let both = |j: usize| l.validity.get(j) && r.validity.get(j);
        if is_cmp(op) {
            let mut bits = Vec::with_capacity(n);
            let mut validity = Bitmap::all_valid(n);
            for j in 0..n {
                if both(j) {
                    bits.push(cmp_holds(op, a[j].cmp(&b[j])));
                } else {
                    validity.set(j, false);
                    bits.push(false);
                }
            }
            return Column { data: ColumnData::Bool(bits), validity };
        }
        let mut out = Vec::with_capacity(n);
        let mut validity = Bitmap::all_valid(n);
        for j in 0..n {
            let r = if both(j) {
                match op {
                    BinaryOp::Add => Some(a[j].wrapping_add(b[j])),
                    BinaryOp::Sub => Some(a[j].wrapping_sub(b[j])),
                    BinaryOp::Mul => Some(a[j].wrapping_mul(b[j])),
                    BinaryOp::Div => (b[j] != 0).then(|| a[j] / b[j]),
                    BinaryOp::Mod => (b[j] != 0).then(|| a[j] % b[j]),
                    _ => unreachable!(),
                }
            } else {
                None
            };
            match r {
                Some(v) => out.push(v),
                None => {
                    validity.set(j, false);
                    out.push(0);
                }
            }
        }
        return Column { data: ColumnData::Int(out), validity };
    }

    // Everything else: element-wise through the scalar reference semantics.
    let values: Vec<Value> =
        (0..n).map(|j| expr::eval_binary(op, &l.value_at(j), &r.value_at(j))).collect();
    Column::from_values(values)
}

fn unary_dense(op: UnaryOp, c: &Column) -> Column {
    let n = c.len();
    match (op, &c.data) {
        (UnaryOp::Not, ColumnData::Bool(v)) => Column {
            data: ColumnData::Bool(v.iter().map(|b| !b).collect()),
            validity: c.validity.clone(),
        },
        (UnaryOp::IsNull, _) => {
            let bits: Vec<bool> = (0..n).map(|j| !c.is_valid(j)).collect();
            Column { data: ColumnData::Bool(bits), validity: Bitmap::all_valid(n) }
        }
        (UnaryOp::IsNotNull, _) => {
            let bits: Vec<bool> = (0..n).map(|j| c.is_valid(j)).collect();
            Column { data: ColumnData::Bool(bits), validity: Bitmap::all_valid(n) }
        }
        (UnaryOp::Neg, ColumnData::Int(v)) => {
            let out: Vec<i64> = v.iter().map(|&x| x.wrapping_neg()).collect();
            Column { data: ColumnData::Int(out), validity: c.validity.clone() }
        }
        (UnaryOp::Neg, ColumnData::Float(v)) => {
            let out: Vec<f64> = v.iter().map(|&x| -x).collect();
            Column { data: ColumnData::Float(out), validity: c.validity.clone() }
        }
        _ => Column::from_values((0..n).map(|j| expr::eval_unary(op, c.value_at(j))).collect()),
    }
}

fn func_dense(func: ScalarFunc, c: &Column) -> Column {
    let n = c.len();
    match (func, &c.data) {
        (ScalarFunc::Length, ColumnData::Str(v)) => {
            let out: Vec<i64> = v.iter().map(|s| s.len() as i64).collect();
            Column { data: ColumnData::Int(out), validity: c.validity.clone() }
        }
        (ScalarFunc::Abs, ColumnData::Int(v)) => {
            let out: Vec<i64> = v.iter().map(|&x| x.abs()).collect();
            Column { data: ColumnData::Int(out), validity: c.validity.clone() }
        }
        (ScalarFunc::Abs, ColumnData::Float(v)) => {
            let out: Vec<f64> = v.iter().map(|&x| x.abs()).collect();
            Column { data: ColumnData::Float(out), validity: c.validity.clone() }
        }
        _ => Column::from_values((0..n).map(|j| expr::eval_func(func, c.value_at(j))).collect()),
    }
}

fn like_dense(c: &Column, pattern: &str) -> Column {
    let n = c.len();
    if let ColumnData::Str(v) = &c.data {
        // Match in place — no string clones on the hot path.
        let mut bits = Vec::with_capacity(n);
        let mut validity = Bitmap::all_valid(n);
        for (j, s) in v.iter().enumerate() {
            if c.validity.get(j) {
                bits.push(expr::like_match(s, pattern));
            } else {
                validity.set(j, false);
                bits.push(false);
            }
        }
        return Column { data: ColumnData::Bool(bits), validity };
    }
    Column::from_values((0..n).map(|j| expr::eval_like(c.value_at(j), pattern)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn batch() -> (Vec<Tuple>, ColumnarBatch) {
        let rows: Vec<Tuple> = (0..20)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    if i % 5 == 0 { Value::Null } else { Value::Float(i as f64 / 2.0) },
                    Value::str(format!("host-{}", i % 3)),
                ])
            })
            .collect();
        let b = ColumnarBatch::from_rows(&rows);
        (rows, b)
    }

    fn assert_matches_scalar(e: &Expr, rows: &[Tuple], b: &ColumnarBatch) {
        let k = Kernel::compile(e);
        let sel = b.full_selection();
        let out = k.eval(b, &sel);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(out.value_at(i), e.eval(row), "expr {e} row {i}");
        }
    }

    #[test]
    fn kernels_match_scalar_eval() {
        let (rows, b) = batch();
        let exprs = vec![
            Expr::col(0).gt(Expr::lit(7i64)),
            Expr::lit(7i64).gt(Expr::col(0)),
            Expr::col(1).binary(BinaryOp::Mul, Expr::lit(2.0)),
            Expr::col(0).binary(BinaryOp::Mod, Expr::lit(3i64)),
            Expr::col(0).binary(BinaryOp::Div, Expr::lit(0i64)),
            Expr::col(2).eq(Expr::lit("host-1")),
            Expr::col(0).gt(Expr::lit(2i64)).and(Expr::col(1).gt(Expr::lit(3.0))),
            Expr::Unary { op: UnaryOp::IsNull, expr: Box::new(Expr::col(1)) },
            Expr::Like { expr: Box::new(Expr::col(2)), pattern: "host-%".into() },
            Expr::Func { func: ScalarFunc::Length, arg: Box::new(Expr::col(2)) },
            Expr::col(9).eq(Expr::lit(1i64)), // out-of-range column
        ];
        for e in &exprs {
            assert_matches_scalar(e, &rows, &b);
        }
    }

    #[test]
    fn filter_matches_scalar_matches() {
        let (rows, b) = batch();
        let e = Expr::col(0).binary(BinaryOp::Mod, Expr::lit(2i64)).eq(Expr::lit(0i64));
        let k = Kernel::compile(&e);
        let sel = k.filter(&b, &b.full_selection());
        let expected: Vec<u32> =
            rows.iter().enumerate().filter(|(_, r)| e.matches(r)).map(|(i, _)| i as u32).collect();
        assert_eq!(sel, expected);
        // Filtering an already-narrowed selection composes.
        let narrower = Kernel::compile(&Expr::col(0).gt(Expr::lit(10i64))).filter(&b, &sel);
        assert!(narrower.iter().all(|&i| i % 2 == 0 && i > 10));
    }

    #[test]
    fn empty_selection_and_empty_batch() {
        let (_, b) = batch();
        let k = Kernel::compile(&Expr::col(0).gt(Expr::lit(1i64)));
        assert!(k.filter(&b, &[]).is_empty());
        let empty = ColumnarBatch::from_rows(&[]);
        assert!(k.filter(&empty, &empty.full_selection()).is_empty());
        assert_eq!(k.eval(&empty, &[]).len(), 0);
    }
}
