//! The PIER node: a relational query engine layered on the DHT.
//!
//! Every simulated host runs one [`PierNode`].  It owns a [`DhtNode`] (the
//! communication substrate and temporary tuple store) and the query-execution
//! state for every active query.  The engine implements the paper's
//! "multihop, in-network" operators:
//!
//! * **Query dissemination** — plans are broadcast over the DHT's recursive
//!   dissemination tree; each node instantiates the plan locally.
//! * **Hierarchical aggregation** — each node folds its local tuples into
//!   mergeable partial states and forwards them hop-by-hop toward the node
//!   responsible for the query's aggregation key, combining at every hop
//!   after a short hold-down (the classic in-network aggregation of
//!   PIER/TAG).  The root finalizes each epoch and streams result rows to the
//!   query origin.
//! * **Distributed joins** — symmetric rehash joins (both relations rehashed
//!   on the join key into a query-scoped namespace), Fetch-Matches joins
//!   (DHT `get` probes against the inner relation), and Bloom-filter
//!   semi-joins.
//! * **Recursive queries** — expansion requests chase edges through the
//!   partitioned edge relation, with per-vertex duplicate suppression
//!   (distributed semi-naïve evaluation).
//! * **Continuous queries** — the same plan re-evaluated every epoch over a
//!   sliding window of recently stored tuples (the paper's Figure 1 query).

use crate::bloom::BloomFilter;
use crate::catalog::{Catalog, TableDef};
use crate::column::ColumnarBatch;
use crate::dataflow::join::{probe_joined, JoinBuild};
use crate::dataflow::ops::{sort_tuples, FilterOp, GroupAggregator, GroupKey, ProjectOp, TopK};
use crate::encoding::TupleBlock;
use crate::kernel::Kernel;
use crate::payload::PierPayload;
use crate::planner::{PlanCache, Planner};
use crate::query::{ContinuousSpec, JoinStrategy, QueryId, QueryKind, QuerySpec, ResultRow};
use crate::sql::{parse, parse_select, SelectStmt, Statement};
use crate::stats::{apply_totals, GossipView, TableSummary};
use crate::trace::OpTrace;
use crate::tuple::Tuple;
use crate::value::Value;
use pier_dht::{timers as dht_timers, DhtConfig, DhtMsg, DhtNode, ResourceKey, Upcall};
use pier_simnet::{Context, Duration, Node, NodeAddr, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

/// The wire message type PIER nodes exchange (DHT messages carrying
/// [`PierPayload`]s).
pub type PierMsg = DhtMsg<PierPayload>;

/// Key of a deferred join-rehash buffer: (query, stage, epoch, side).
/// Scan-side (side 1 and stage-0 side 0) and intermediate (side 0, stage
/// ≥ 1) rehashes all defer under the same time-based flush, so concurrent
/// queries' rehash traffic can share `RouteBatch` frames.
type RehashBufKey = (QueryId, u8, u64, u8);

/// Accounting stream of a staged point-to-point payload: which counters pay
/// for its wire frame.  `Query` traffic bills the per-query message counters
/// (and the producer-side trace), `Engine` bills only the node-level
/// counters (e.g. partial relays for queries this node never installed), and
/// `Gossip` is observability traffic kept out of the query counters
/// entirely.  A frame that coalesces ≥ 2 distinct streams is a shared
/// frame: exactly one stream pays for it and the rest ride free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum DirectStream {
    Query(QueryId),
    Engine,
    Gossip,
}

/// How many stopped queries' execution traces a node retains for late
/// `EXPLAIN ANALYZE` trace requests.
pub const MAX_FINISHED_TRACES: usize = 256;

type Ctx<'a> = Context<'a, PierMsg>;

/// Errors surfaced by the engine's client API.
#[derive(Clone, Debug, PartialEq)]
pub struct PierError {
    /// Description.
    pub message: String,
}

impl PierError {
    fn new(message: impl Into<String>) -> Self {
        PierError { message: message.into() }
    }
}

impl fmt::Display for PierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PIER error: {}", self.message)
    }
}

impl std::error::Error for PierError {}

/// How partial aggregates travel to the point of finalization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregationMode {
    /// In-network: partials climb the DHT routing path toward the node
    /// responsible for the query's aggregation key, combining at every hop.
    Hierarchical,
    /// Baseline: every node ships its partial state directly to the query
    /// origin, which performs the entire merge (no in-network combining).
    Direct,
}

/// What the aggregation root of a windowed continuous query does with
/// partials that arrive for an epoch whose window(s) it has already closed
/// and reported (see [`crate::query::WindowSpec`]).
///
/// Windows close when the root's *watermark* — the highest epoch it has
/// finalized — passes the window's last epoch.  A partial delayed past the
/// root's collect-and-extend grace period is *late*; this policy decides
/// whether its data is lost or folded in retroactively.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowLatePolicy {
    /// Discard late partials (counted in
    /// [`EngineStats::window_late_dropped`]).  Closed windows are immutable
    /// and their state is freed at close — the cheap, at-most-once default.
    Drop,
    /// Merge late partials into the retained window state and re-emit the
    /// corrected window: the origin receives a retraction for the window's
    /// previous rows, then the updated rows.  Closed-window state is kept
    /// for a bounded number of slides, so very late data (beyond the
    /// retention horizon) is still dropped.
    Patch,
}

/// Engine configuration.
///
/// # Example: the batching and statistics knobs
///
/// ```
/// use pier_core::engine::PierConfig;
/// use pier_simnet::Duration;
///
/// let mut config = PierConfig::fast_test();
/// // Batched wire paths are on by default; benchmarks flip this off to
/// // measure against the one-message-per-tuple baseline.
/// assert!(config.batching);
/// config.batch_max = 128;          // cap tuples per batch (PIER_BATCH_MAX)
/// config.auto_stats = true;        // gossip table statistics automatically
/// config.stats_interval = Duration::from_secs(2);
/// assert!(config.adaptive);        // re-plan live queries when stats move
/// ```
#[derive(Clone, Debug)]
pub struct PierConfig {
    /// DHT / overlay parameters.
    pub dht: DhtConfig,
    /// Hold-down delay before a node forwards combined partial aggregates.
    pub holddown: Duration,
    /// How long the aggregation root waits after an epoch starts before
    /// finalizing (must exceed typical tree depth × hold-down + latency).
    pub collect_delay: Duration,
    /// How long the origin collects per-node Bloom filters before
    /// broadcasting the combined filter.
    pub bloom_collect_delay: Duration,
    /// Bits in each Bloom filter (the default geometry, used when the
    /// planner did not suggest a statistics-sized one).
    pub bloom_bits: usize,
    /// Lower clamp for planner-suggested per-stage Bloom geometry
    /// ([`JoinStage::bloom_bits`](crate::query::JoinStage)).
    pub bloom_bits_min: usize,
    /// Upper clamp for planner-suggested per-stage Bloom geometry.
    pub bloom_bits_max: usize,
    /// Inner-stage Bloom semi-joins: when the planner marks a symmetric-hash
    /// stage past the first as filterable, its join sites summarize the
    /// intermediate keys that reached them, the origin combines and
    /// broadcasts the filter, and right-relation scan sites prune their
    /// rehash through it — the stage-0 Bloom protocol generalized to a
    /// per-(query, stage, epoch) handshake.  `false` rehashes inner right
    /// sides eagerly and unfiltered, as before.
    pub inner_bloom: bool,
    /// Hold-down deadline at inner right-relation scan sites: if the
    /// combined filter has not arrived this long after the epoch started,
    /// ship the right side unfiltered.  A lost summary therefore degrades to
    /// extra traffic, never to missing results the filter would have kept.
    pub bloom_fallback_delay: Duration,
    /// Cross-query piggybacking: point-to-point payloads (results, partials,
    /// pending statistics gossip) and deferred intermediate rehashes from
    /// *different* queries that share a destination or next hop within one
    /// flush window ride a single wire frame (`DirectBatch` /
    /// `RouteBatch`).  Single-query traffic is unaffected — frames merge
    /// only across ≥ 2 concurrent streams.
    pub piggyback: bool,
    /// Aggregation routing mode.
    pub aggregation: AggregationMode,
    /// Coalesce hot wire paths into batch messages (`TupleBatch`,
    /// `JoinBatch`, `ResultBatch`, and DHT-level `RouteBatch`es).  `false`
    /// reproduces the original one-message-per-tuple behaviour; benchmarks
    /// flip this to measure the saving.
    pub batching: bool,
    /// Maximum tuples per batch message (the `PIER_BATCH_MAX` knob).  Larger
    /// batches amortize per-message overhead further but make each loss
    /// under churn costlier; buffers flush early once a batch reaches this
    /// size.  The `pier-bench` binaries read the `PIER_BATCH_MAX` environment
    /// variable into this field so deployments can tune it without
    /// recompiling.
    pub batch_max: usize,
    /// Time-based flush: with a value `n > 0`, result buffers and
    /// intermediate join-rehash buffers may span up to `n` engine ticks
    /// (upcall-processing drains) before flushing, letting chatty operators
    /// — the stages of a multi-way join above all — coalesce output across
    /// ticks instead of flushing every tick.  A hold-down-length timer
    /// bounds the added latency when the node goes quiet.  `0` (the
    /// default) preserves the classic flush-every-tick behaviour.
    pub batch_flush_ticks: u32,
    /// Automatic statistics: every [`PierConfig::stats_interval`] each node
    /// summarizes the live soft state it stores per table and gossips the
    /// summaries to ring neighbours until every catalog converges on
    /// network-wide cardinalities (no manual
    /// [`set_table_stats`](PierNode::set_table_stats) required).  Off by
    /// default so measurement-sensitive benchmarks see no extra traffic.
    pub auto_stats: bool,
    /// How often a node re-summarizes and pushes its statistics view.
    pub stats_interval: Duration,
    /// How many successor-list neighbours each gossip round pushes to (the
    /// predecessor is always included, so information spreads both ways
    /// around the ring).
    pub stats_fanout: usize,
    /// Gossip entry expiry: a node's statistics entry is evicted from the
    /// local view after this many gossip intervals without a fresher
    /// sequence number, so a permanently departed node stops inflating the
    /// network-wide cardinality totals.  Restarted nodes re-enter
    /// immediately (their sequence numbers are time-seeded).  `0` disables
    /// expiry.
    pub stats_ttl_intervals: u32,
    /// Mid-flight re-planning: when a catalog change (typically gossiped
    /// statistics) flips the cost ranking of a live continuous SQL query's
    /// join strategy, the origin re-plans and re-disseminates the spec; every
    /// node swaps to it at its next epoch boundary, recording the switch in
    /// the query's execution trace.
    pub adaptive: bool,
    /// Trace-fed costing: after a continuous multi-way join has run a few
    /// epochs, its origin collects the network-wide execution trace
    /// (per-stage input and match counters), folds it into per-query
    /// [`ObservedStats`](crate::planner::ObservedStats) that override the
    /// catalog estimates, and re-plans.  When the corrected costs change the
    /// plan — a different join order, strategy mix, or a bushy shape — the
    /// staged-spec swap path (`adaptive`) switches every node at its next
    /// epoch boundary.  Off by default: plans then come from catalog
    /// statistics only, exactly as before.
    pub feedback: bool,
    /// Batch-aware soft-state renewal: publishers log what
    /// [`publish_batch`](PierNode::publish_batch) stored, and
    /// [`renew_published`](PierNode::renew_published) re-publishes only the
    /// tuples past half their table's TTL instead of the whole batch —
    /// per-item renewal inside a stored batch.  Off by default (publishers
    /// re-publish everything every TTL, as before).
    pub renewal: bool,
    /// Vectorized execution: run local scans, filters, projections, and
    /// grouped aggregation over [`crate::column::ColumnarBatch`]es with
    /// compiled [`crate::kernel::Kernel`] pipelines instead of per-row
    /// [`crate::expr::Expr::eval`].  Results are identical either way (the
    /// row path is kept as the behavioural reference); benchmarks flip this
    /// to measure the speedup.
    pub vectorized: bool,
    /// Compact columnar wire encoding for the batch payloads (`TupleBatch`,
    /// `JoinBatch`, `ResultBatch`): per-column dictionary / run-length
    /// compression where it wins over plain row-major, chosen per column per
    /// block.  `false` reproduces the plain encoding's byte accounting
    /// exactly.
    pub columnar_wire: bool,
    /// What the aggregation root does with partials that arrive after the
    /// windows covering their epoch have closed (windowed continuous
    /// aggregates only; see [`WindowLatePolicy`]).  Interacts with
    /// `collect_delay` and `holddown`: the shorter those grace periods are
    /// relative to network latency, the more data arrives late and the more
    /// this policy matters.
    pub window_late_policy: WindowLatePolicy,
}

impl Default for PierConfig {
    fn default() -> Self {
        // Base tables are queried with local scans; storing DHT-level replicas
        // would make replicated tuples show up twice in scans, so the engine
        // runs the DHT without item replication and relies on soft-state
        // renewal (publishers re-publish every TTL) for durability, as PIER does.
        let dht = DhtConfig { replication_factor: 0, ..DhtConfig::default() };
        PierConfig {
            dht,
            holddown: Duration::from_millis(250),
            collect_delay: Duration::from_millis(4_000),
            bloom_collect_delay: Duration::from_millis(1_500),
            bloom_bits: 4096,
            bloom_bits_min: 1024,
            bloom_bits_max: 65_536,
            inner_bloom: true,
            bloom_fallback_delay: Duration::from_millis(8_000),
            piggyback: true,
            aggregation: AggregationMode::Hierarchical,
            batching: true,
            batch_max: 512,
            batch_flush_ticks: 0,
            auto_stats: false,
            stats_interval: Duration::from_millis(5_000),
            stats_fanout: 3,
            stats_ttl_intervals: 8,
            adaptive: true,
            feedback: false,
            renewal: false,
            vectorized: true,
            columnar_wire: true,
            window_late_policy: WindowLatePolicy::Drop,
        }
    }
}

impl PierConfig {
    /// Fast timers for small test networks.
    pub fn fast_test() -> Self {
        let mut dht = DhtConfig::fast_test();
        dht.replication_factor = 0;
        PierConfig {
            dht,
            holddown: Duration::from_millis(100),
            collect_delay: Duration::from_millis(3_000),
            bloom_collect_delay: Duration::from_millis(800),
            bloom_bits: 2048,
            bloom_bits_min: 512,
            bloom_bits_max: 16_384,
            inner_bloom: true,
            bloom_fallback_delay: Duration::from_millis(3_000),
            piggyback: true,
            aggregation: AggregationMode::Hierarchical,
            batching: true,
            batch_max: 512,
            batch_flush_ticks: 0,
            auto_stats: false,
            stats_interval: Duration::from_millis(2_000),
            stats_fanout: 3,
            stats_ttl_intervals: 8,
            adaptive: true,
            feedback: false,
            renewal: false,
            vectorized: true,
            columnar_wire: true,
            window_late_policy: WindowLatePolicy::Drop,
        }
    }

    /// Parameters matching the PlanetLab-scale experiments.
    pub fn planetlab() -> Self {
        let mut dht = DhtConfig::planetlab();
        dht.replication_factor = 0;
        PierConfig {
            dht,
            holddown: Duration::from_millis(300),
            collect_delay: Duration::from_millis(5_000),
            bloom_collect_delay: Duration::from_millis(2_000),
            bloom_bits: 8192,
            bloom_bits_min: 2048,
            bloom_bits_max: 131_072,
            inner_bloom: true,
            bloom_fallback_delay: Duration::from_millis(10_000),
            piggyback: true,
            aggregation: AggregationMode::Hierarchical,
            batching: true,
            batch_max: 512,
            batch_flush_ticks: 0,
            auto_stats: false,
            stats_interval: Duration::from_millis(5_000),
            stats_fanout: 3,
            stats_ttl_intervals: 8,
            adaptive: true,
            feedback: false,
            renewal: false,
            vectorized: true,
            columnar_wire: true,
            window_late_policy: WindowLatePolicy::Drop,
        }
    }
}

/// Per-node counters describing the engine's own activity (read by benches).
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Tuples published into the DHT from this node.
    pub tuples_published: u64,
    /// Tuples read by local scans.
    pub tuples_scanned: u64,
    /// Result rows sent toward query origins.
    pub results_sent: u64,
    /// Partial-aggregate messages sent.
    pub partials_sent: u64,
    /// Partial-aggregate messages merged locally (in-network combining).
    pub partials_merged: u64,
    /// Tuples rehashed to join sites.
    pub join_tuples_sent: u64,
    /// Join output rows produced at this node.
    pub join_matches: u64,
    /// Recursive expansion messages sent.
    pub expands_sent: u64,
    /// Epoch evaluations performed.
    pub epochs_run: u64,
    /// DHT wire messages this engine initiated on the query wire paths
    /// (publishes, rehashed join tuples, partials, results, Bloom summaries,
    /// expansions) — the denominator of the batching win.
    pub messages_sent: u64,
    /// Application-payload bytes handed to the DHT on those paths (counted
    /// per payload, whether its first hop was remote or this node itself).
    pub bytes_shipped: u64,
    /// Batch payloads (each coalescing ≥ 2 tuples) among them.
    pub batches_sent: u64,
    /// SQL submissions answered from the per-node plan cache.
    pub plan_cache_hits: u64,
    /// SQL submissions that ran the full planning pipeline.
    pub plan_cache_misses: u64,
    /// Statistics-gossip messages sent.  Tracked separately from
    /// `messages_sent` / `bytes_shipped` so the observability plane does not
    /// pollute the query-path counters it is meant to measure.
    pub stats_gossip_sent: u64,
    /// Times this node swapped a live query to a re-planned spec at an epoch
    /// boundary (mid-flight re-planning).
    pub replans: u64,
    /// Right-relation tuples tested against a combined Bloom filter before
    /// rehash (stage 0 and inner stages alike).
    pub bloom_tested: u64,
    /// Of those, tuples the filter passed (and were therefore rehashed).
    pub bloom_passed: u64,
    /// Inner-stage epochs whose combined filter missed the hold-down deadline
    /// and shipped the right side unfiltered.
    pub bloom_fallbacks: u64,
    /// Point-to-point payloads that rode an existing frame to the same
    /// destination (or next hop) instead of paying for their own message.
    pub piggybacked_payloads: u64,
    /// Wire frames that carried payloads from ≥ 2 distinct streams
    /// (different queries, or a query plus engine/gossip traffic).
    pub shared_frames: u64,
    /// Times this node staged a trace-corrected plan for a live query
    /// (trace-fed costing, a subset of `replans`).
    pub feedback_replans: u64,
    /// Statistics-gossip payloads held for a deferred flush window
    /// (`batch_flush_ticks > 0`) so they could ride the next batch flush's
    /// frames instead of shipping in their own tick.
    pub gossip_deferred: u64,
    /// Tuples re-published by per-item soft-state renewal (past half TTL).
    pub renewals_published: u64,
    /// Tuples a renewal sweep left in place because they were still fresh —
    /// the traffic a whole-batch re-publish would have paid for.
    pub renewal_tuples_skipped: u64,
    /// Epoch-count windows this node closed and reported as an aggregation
    /// root (windowed continuous aggregates).
    pub windows_closed: u64,
    /// Late partial-aggregate payloads discarded because the windows
    /// covering their epoch had already closed
    /// ([`WindowLatePolicy::Drop`], or `Patch` past its retention horizon).
    pub window_late_dropped: u64,
    /// Already-closed windows re-opened, corrected, and re-emitted because
    /// a late partial arrived under [`WindowLatePolicy::Patch`].
    pub window_late_patched: u64,
    /// Alert tuples published into a query's `pier:alert:<id>` namespace
    /// (windowed aggregates with a `HAVING` trigger).
    pub alerts_emitted: u64,
}

impl EngineStats {
    /// Field-wise sum (benchmarks aggregate per-node stats network-wide).
    pub fn merge(&mut self, other: &EngineStats) {
        self.tuples_published += other.tuples_published;
        self.tuples_scanned += other.tuples_scanned;
        self.results_sent += other.results_sent;
        self.partials_sent += other.partials_sent;
        self.partials_merged += other.partials_merged;
        self.join_tuples_sent += other.join_tuples_sent;
        self.join_matches += other.join_matches;
        self.expands_sent += other.expands_sent;
        self.epochs_run += other.epochs_run;
        self.messages_sent += other.messages_sent;
        self.bytes_shipped += other.bytes_shipped;
        self.batches_sent += other.batches_sent;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.stats_gossip_sent += other.stats_gossip_sent;
        self.replans += other.replans;
        self.bloom_tested += other.bloom_tested;
        self.bloom_passed += other.bloom_passed;
        self.bloom_fallbacks += other.bloom_fallbacks;
        self.piggybacked_payloads += other.piggybacked_payloads;
        self.shared_frames += other.shared_frames;
        self.feedback_replans += other.feedback_replans;
        self.gossip_deferred += other.gossip_deferred;
        self.renewals_published += other.renewals_published;
        self.renewal_tuples_skipped += other.renewal_tuples_skipped;
        self.windows_closed += other.windows_closed;
        self.window_late_dropped += other.window_late_dropped;
        self.window_late_patched += other.window_late_patched;
        self.alerts_emitted += other.alerts_emitted;
    }
}

/// What an engine timer is for.
#[derive(Clone, Debug)]
enum TimerPurpose {
    /// Start the next epoch of a continuous query.
    Epoch(QueryId),
    /// Forward combined partials for (query, epoch).
    Holddown(QueryId, u64),
    /// Finalize (query, epoch) at the aggregation root.
    RootFinalize(QueryId, u64),
    /// Combine and broadcast Bloom filters for (query, stage, epoch).
    BloomPhase2(QueryId, u8, u64),
    /// Quiescence check on an inner-stage Bloom summary under construction:
    /// ship it to the origin once intermediate arrivals go quiet.
    InnerBloomSummary(QueryId, u8, u64),
    /// Hold-down deadline for an inner stage's combined filter: if it has
    /// not arrived, rehash the right relation unfiltered.
    BloomFallback(QueryId, u8, u64),
    /// Summarize local soft state and push the statistics view to neighbours.
    StatsGossip,
    /// Deadline flush of deferred result / rehash buffers (only armed when
    /// `PierConfig::batch_flush_ticks` lets buffers span ticks).
    BatchFlush,
}

/// Execution state of one query at one node.
struct RunningQuery {
    spec: QuerySpec,
    epoch: u64,
    epoch_started_at: SimTime,
    /// Partials waiting for the hold-down timer, per epoch.
    pending: HashMap<u64, GroupAggregator>,
    pending_contrib: HashMap<u64, u64>,
    holddown_armed: HashSet<u64>,
    /// Root-side accumulation, per epoch.
    root_acc: HashMap<u64, GroupAggregator>,
    root_contrib: HashMap<u64, u64>,
    finalize_armed: HashSet<u64>,
    /// Epochs this node has already finalized as the aggregation root; late
    /// partials for them are discarded rather than double-reported.
    finalized: HashSet<u64>,
    /// Windowed aggregates, root side: per-window merged group states (each
    /// finalized epoch's accumulator folded into every window covering it).
    window_acc: HashMap<u64, GroupAggregator>,
    /// Max per-epoch contributor count folded into each window ("responding
    /// nodes" over the window).
    window_contrib: HashMap<u64, u64>,
    /// Highest epoch this root has finalized — the window-close watermark.
    window_watermark: Option<u64>,
    /// Windows already closed and reported.  Under
    /// [`WindowLatePolicy::Patch`] late data re-opens them transiently (the
    /// corrected window is re-emitted); under `Drop` it is discarded.
    windows_closed: HashSet<u64>,
    /// Last time a partial arrived at the root, per epoch (quiescence check).
    root_last_update: HashMap<u64, SimTime>,
    /// How many times finalization has been postponed, per epoch.
    root_extensions: HashMap<u64, u32>,
    /// Join site hash tables: (stage, epoch, key) -> tuples.
    join_left: HashMap<(u8, u64, Value), Vec<Tuple>>,
    join_right: HashMap<(u8, u64, Value), Vec<Tuple>>,
    /// Vectorized join state per (stage, epoch): columnar build sides with a
    /// typed key-vector hash index, replacing `join_left` / `join_right`
    /// when `PierConfig::vectorized` is on.
    vec_join: HashMap<(u8, u64), JoinBuild>,
    /// Origin-side Bloom collection per (stage, epoch).
    blooms: HashMap<(u8, u64), BloomFilter>,
    bloom_armed: HashSet<(u8, u64)>,
    /// Origin-side: the last combined filter broadcast per inner (stage,
    /// epoch), so a supplementary summary that adds nothing new (already
    /// covered bits) does not trigger a redundant re-broadcast.
    bloom_sent: HashMap<(u8, u64), (Vec<u64>, u8)>,
    /// Combined filter received (Bloom join phase 2), per (stage, epoch).
    combined_bloom: HashMap<(u8, u64), BloomFilter>,
    /// Join-site summaries of intermediate keys for inner-stage Bloom
    /// semi-joins, per (stage, epoch).
    inner_summaries: HashMap<(u8, u64), InnerSummary>,
    /// Inner (stage, epoch) pairs whose right relation this node has already
    /// rehashed — filtered through a combined filter or via the hold-down
    /// fallback, whichever fired first.
    bloom_phase2_done: HashSet<(u8, u64)>,
    /// Scan-site rows pruned by an inner-stage combined filter, retained so
    /// a refreshed filter (late intermediate keys reopen the handshake) can
    /// re-test and ship them.  Dropped with the query's soft state.
    held_rows: HashMap<(u8, u64), Vec<Tuple>>,
    /// Epochs for which this node already counted itself as an aggregation
    /// contributor (aggregates over joins produce partials incrementally as
    /// matches arrive, so the first batch of an epoch counts the node).
    agg_contributed: HashSet<u64>,
    /// Recursive queries: vertices already expanded at this node.
    visited: HashSet<String>,
    /// Producer-side per-operator counters (`EXPLAIN ANALYZE`).
    trace: OpTrace,
    /// A re-planned spec waiting to be applied at this node's next epoch
    /// evaluation.  Deferring the swap to an epoch boundary keeps every
    /// node's per-epoch evaluation on a single strategy, so a flip never
    /// mixes strategies *within* one node-epoch.
    pending_spec: Option<QuerySpec>,
    /// Kernels compiled once from the live spec and reused every epoch
    /// (vectorized path).  Cleared when a re-planned spec is applied.
    kernels: Option<Rc<CompiledKernels>>,
    /// Origin-side trace-fed costing state: a network-wide trace collection
    /// is outstanding for this query.
    feedback_requested: bool,
    /// Origin-side: the trace-fed correction has run (whether or not it
    /// changed the plan); no further collections are issued.
    feedback_settled: bool,
    /// Origin-side: the observed statistics the query was last (re)planned
    /// with, overlaid on the catalog by any later catalog-driven re-plan so
    /// a statistics gossip round cannot silently undo the trace correction.
    observed: Option<crate::planner::ObservedStats>,
}

/// The vectorized pipeline for one query: every `Expr` the per-epoch hot
/// loops evaluate, compiled to a [`Kernel`] exactly once per (node, spec).
/// Re-planning invalidates the cache — the next epoch recompiles from the
/// swapped spec.
#[derive(Debug, Default)]
struct CompiledKernels {
    /// The scan predicate: `Select`/`Aggregate` `WHERE`, or a join's
    /// pushed-down left-side filter.
    filter: Option<Kernel>,
    /// `Select` projection kernels.
    project: Vec<Kernel>,
    /// Per join stage: `[left key, right key]` plus the pushed-down
    /// right-side filter.
    stages: Vec<StageKernels>,
}

#[derive(Debug)]
struct StageKernels {
    keys: [Kernel; 2],
    right_filter: Option<Kernel>,
    /// The stage's residual (non-equi) predicate, applied to joined rows.
    post: Option<Kernel>,
}

/// One node's in-progress Bloom summary of the intermediate keys that
/// reached it for an inner join stage (phase 1 of the inner-stage semi-join
/// handshake).
struct InnerSummary {
    filter: BloomFilter,
    /// Last time an intermediate key was folded in (quiescence check).
    last_update: SimTime,
    /// How many times shipping has been postponed for late arrivals.
    extensions: u32,
    /// Sent to the origin; later arrivals no longer make the filter.
    shipped: bool,
}

impl CompiledKernels {
    fn from_spec(spec: &QuerySpec) -> Self {
        match &spec.kind {
            QueryKind::Select { filter, project, .. } => CompiledKernels {
                filter: filter.as_ref().map(Kernel::compile),
                project: Kernel::compile_all(project),
                stages: Vec::new(),
            },
            QueryKind::Aggregate { filter, .. } => CompiledKernels {
                filter: filter.as_ref().map(Kernel::compile),
                ..CompiledKernels::default()
            },
            QueryKind::Join { left_filter, stages, .. } => CompiledKernels {
                filter: left_filter.as_ref().map(Kernel::compile),
                project: Vec::new(),
                stages: stages
                    .iter()
                    .map(|s| StageKernels {
                        keys: [Kernel::compile(&s.left_key), Kernel::compile(&s.right_key)],
                        right_filter: s.right_filter.as_ref().map(Kernel::compile),
                        post: s.post_filter.as_ref().map(Kernel::compile),
                    })
                    .collect(),
            },
            QueryKind::Recursive { .. } => CompiledKernels::default(),
        }
    }

    /// The join-key kernel of one stage side (0 = left, 1 = right).
    fn stage_key(&self, stage: usize, side: u8) -> Option<&Kernel> {
        self.stages.get(stage).map(|s| &s.keys[side as usize])
    }
}

impl RunningQuery {
    fn new(spec: QuerySpec, now: SimTime) -> Self {
        RunningQuery {
            spec,
            epoch: 0,
            epoch_started_at: now,
            pending: HashMap::new(),
            pending_contrib: HashMap::new(),
            holddown_armed: HashSet::new(),
            root_acc: HashMap::new(),
            root_contrib: HashMap::new(),
            finalize_armed: HashSet::new(),
            finalized: HashSet::new(),
            window_acc: HashMap::new(),
            window_contrib: HashMap::new(),
            window_watermark: None,
            windows_closed: HashSet::new(),
            root_last_update: HashMap::new(),
            root_extensions: HashMap::new(),
            join_left: HashMap::new(),
            join_right: HashMap::new(),
            vec_join: HashMap::new(),
            blooms: HashMap::new(),
            bloom_armed: HashSet::new(),
            bloom_sent: HashMap::new(),
            combined_bloom: HashMap::new(),
            inner_summaries: HashMap::new(),
            bloom_phase2_done: HashSet::new(),
            held_rows: HashMap::new(),
            agg_contributed: HashSet::new(),
            visited: HashSet::new(),
            trace: OpTrace::default(),
            pending_spec: None,
            kernels: None,
            feedback_requested: false,
            feedback_settled: false,
            observed: None,
        }
    }
}

/// Results collected at the query origin.
#[derive(Clone, Debug)]
pub struct QueryResults {
    /// The query these results belong to.
    pub spec: QuerySpec,
    rows: BTreeMap<u64, Vec<Tuple>>,
    contributors: BTreeMap<u64, u64>,
}

impl QueryResults {
    fn new(spec: QuerySpec) -> Self {
        QueryResults { spec, rows: BTreeMap::new(), contributors: BTreeMap::new() }
    }

    /// Epochs for which at least one row or an epoch summary arrived.
    pub fn epochs(&self) -> Vec<u64> {
        let mut e: Vec<u64> = self.rows.keys().chain(self.contributors.keys()).copied().collect();
        e.sort_unstable();
        e.dedup();
        e
    }

    /// Raw rows received for an epoch, in arrival order.
    pub fn raw_rows(&self, epoch: u64) -> &[Tuple] {
        self.rows.get(&epoch).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Rows for an epoch with the query's ORDER BY / LIMIT applied (for
    /// streaming SELECT/JOIN queries the origin performs the final top-k;
    /// for aggregates over joins the origin finishes the aggregation).
    pub fn rows(&self, epoch: u64) -> Vec<Tuple> {
        let mut rows = self.raw_rows(epoch).to_vec();
        if let QueryKind::Join { aggregate: Some(agg), order_by, limit, .. } = &self.spec.kind {
            if !agg.hierarchical {
                // Raw-row streaming baseline: the matched rows arrived
                // unaggregated; the origin runs the whole GROUP BY here.
                let mut acc = GroupAggregator::new(agg.group_exprs.clone(), agg.aggs.clone());
                for r in &rows {
                    acc.update(r);
                }
                rows = acc.finalize();
            }
            // Hierarchical mode ships finalized aggregate-output rows from
            // the root (pre-projection, hidden aggregates included), so both
            // modes converge here: HAVING (already applied at the root in
            // hierarchical mode, idempotent on its output), re-sort in
            // network-arrival-independent order, limit, then the final
            // projection to the client's column order.
            if let Some(h) = &agg.having {
                rows.retain(|r| h.matches(r));
            }
            if !order_by.is_empty() {
                sort_tuples(&mut rows, order_by);
            }
            if let Some(n) = limit {
                rows.truncate(*n);
            }
            let project = ProjectOp::new(
                agg.final_project.iter().map(|&i| crate::expr::Expr::col(i)).collect(),
            );
            return rows.iter().map(|r| project.apply_one(r)).collect();
        }
        let (order_by, limit) = match &self.spec.kind {
            QueryKind::Select { order_by, limit, .. } | QueryKind::Join { order_by, limit, .. } => {
                (order_by.clone(), *limit)
            }
            // The aggregation root orders/limits before shipping, but rows
            // arrive at the origin in arbitrary network order, so the
            // ordering is re-applied here.  Rows travel *pre-projection*
            // (group columns ++ all aggregates, hidden ones included), which
            // lets the root's sort keys apply directly — ORDER BY an
            // aggregate that is not in the select list still works — and the
            // final projection to the client's column order happens last.
            QueryKind::Aggregate { order_by, limit, final_project, .. } => {
                if !order_by.is_empty() {
                    sort_tuples(&mut rows, order_by);
                }
                if let Some(n) = limit {
                    rows.truncate(*n);
                }
                let project = ProjectOp::new(
                    final_project.iter().map(|&i| crate::expr::Expr::col(i)).collect(),
                );
                return rows.iter().map(|r| project.apply_one(r)).collect();
            }
            _ => (Vec::new(), None),
        };
        if !order_by.is_empty() {
            sort_tuples(&mut rows, &order_by);
        }
        if let Some(n) = limit {
            rows.truncate(n);
        }
        rows
    }

    /// Rows across every epoch (useful for one-shot queries), each epoch with
    /// the query's ordering/projection applied.
    pub fn all_rows(&self) -> Vec<Tuple> {
        self.epochs().into_iter().flat_map(|e| self.rows(e)).collect()
    }

    /// The most recent epoch with data, and its rows.
    pub fn latest(&self) -> Option<(u64, Vec<Tuple>)> {
        self.epochs().last().map(|&e| (e, self.rows(e)))
    }

    /// Number of nodes whose data contributed to an epoch ("responding
    /// nodes"); only reported for aggregation queries.
    pub fn contributors(&self, epoch: u64) -> u64 {
        self.contributors.get(&epoch).copied().unwrap_or(0)
    }
}

/// Identity of one scan delta: table, scan time, window start, and the local
/// store's mutation count (contents can only change through a mutation, so
/// equal keys guarantee equal scan results).
type ScanBatchKey = (String, SimTime, SimTime, u64);

/// A PIER node: DHT + catalog + query engine, hosted on one simulated host.
pub struct PierNode {
    addr: NodeAddr,
    config: PierConfig,
    /// The DHT substrate.
    pub dht: DhtNode<PierPayload>,
    catalog: Catalog,
    queries: HashMap<QueryId, RunningQuery>,
    results: HashMap<QueryId, QueryResults>,
    /// Pending Fetch-Matches probes: DHT get request id -> (query, stage,
    /// epoch, left/intermediate tuple).
    pending_fetch: HashMap<u64, (QueryId, u8, u64, Tuple)>,
    /// Operator input (rehashed join tuples, recursive expansions) that
    /// arrived before this node received the query plan.  PIER stores such
    /// tuples as soft state in the DHT; we buffer them and replay them when
    /// the plan arrives.
    early_arrivals: HashMap<QueryId, Vec<PierPayload>>,
    timer_purposes: HashMap<u64, TimerPurpose>,
    /// Result rows produced during the current engine tick, coalesced per
    /// (query, epoch) and flushed as one `ResultBatch` per destination when
    /// the tick's upcall processing drains (the origin address is derived
    /// from the query id).  First-come order, so flushing preserves the
    /// per-epoch row order the unbatched path would produce.
    pending_results: Vec<((QueryId, u64), Vec<Tuple>)>,
    /// Join-rehash tuples deferred by the time-based flush
    /// (`batch_flush_ticks > 0`), per (query, stage, epoch, side); flushed
    /// with the same cadence as `pending_results`.
    pending_rehash: Vec<(RehashBufKey, Vec<(Value, Tuple)>)>,
    /// Point-to-point payloads (results, partials, statistics gossip) staged
    /// during the current engine tick.  Flushed at every upcall drain —
    /// never deferred across ticks — so staging adds no latency; entries to
    /// the same destination from ≥ 2 distinct streams share one
    /// `DirectBatch` frame (cross-query piggybacking).  Empty whenever
    /// `PierConfig::piggyback` is off.
    pending_direct: Vec<(NodeAddr, DirectStream, PierPayload)>,
    /// Statistics-gossip payloads held for the deferred flush window
    /// (`batch_flush_ticks > 0`): unlike `pending_direct` they may span
    /// ticks, so a gossip round lands in the same flush as the query frames
    /// it can ride.  Empty when the time-based flush is off.
    pending_gossip: Vec<(NodeAddr, PierPayload)>,
    /// Upcall-processing drains since the deferred buffers last flushed.
    ticks_since_flush: u32,
    /// A `BatchFlush` deadline timer is in flight.
    flush_timer_armed: bool,
    plan_cache: PlanCache,
    /// Origin-side trace collection (`EXPLAIN ANALYZE`): number of nodes
    /// that reported plus the merged network-wide trace, per query.
    trace_acc: HashMap<QueryId, (u64, OpTrace)>,
    /// Traces of queries that were stopped, kept so a later `TraceRequest`
    /// can still be answered.  Bounded FIFO ([`MAX_FINISHED_TRACES`]) so a
    /// long-lived node running many short queries does not grow without
    /// bound.
    finished_traces: HashMap<QueryId, OpTrace>,
    finished_trace_order: std::collections::VecDeque<QueryId>,
    /// SQL text and the catalog version it was last planned at, for
    /// continuous queries this node originated (mid-flight re-planning).
    origin_sql: HashMap<QueryId, (String, u64)>,
    /// This node's view of the gossiped per-node statistics.
    gossip: GossipView,
    gossip_seq: u64,
    /// Memo of recent scan-delta columnar conversions, keyed on
    /// `(table, now, since, store mutation count)`: concurrent queries
    /// scanning the same table window in the same quiescent store state
    /// share one row-to-column pivot instead of each paying for it.
    scan_batches: Vec<(ScanBatchKey, std::rc::Rc<ColumnarBatch>)>,
    /// Per-table log of what this node's `publish_batch` calls stored, with
    /// each tuple's last publish time (only kept when `PierConfig::renewal`
    /// is on): the input of per-item soft-state renewal.
    publish_log: HashMap<String, Vec<(Tuple, SimTime)>>,
    next_token: u64,
    next_query_seq: u32,
    publish_seq: u64,
    stats: EngineStats,
}

impl PierNode {
    /// Create a PIER node.  `bootstrap` is any existing node of the overlay
    /// (or `None` for the first node).
    pub fn new(addr: NodeAddr, config: PierConfig, bootstrap: Option<NodeAddr>) -> Self {
        let dht = DhtNode::new(addr, config.dht.clone(), bootstrap);
        PierNode {
            addr,
            config,
            dht,
            catalog: Catalog::new(),
            queries: HashMap::new(),
            results: HashMap::new(),
            pending_fetch: HashMap::new(),
            early_arrivals: HashMap::new(),
            timer_purposes: HashMap::new(),
            pending_results: Vec::new(),
            pending_rehash: Vec::new(),
            pending_direct: Vec::new(),
            pending_gossip: Vec::new(),
            ticks_since_flush: 0,
            flush_timer_armed: false,
            plan_cache: PlanCache::new(),
            trace_acc: HashMap::new(),
            finished_traces: HashMap::new(),
            finished_trace_order: std::collections::VecDeque::new(),
            origin_sql: HashMap::new(),
            gossip: GossipView::new(),
            gossip_seq: 0,
            scan_batches: Vec::new(),
            publish_log: HashMap::new(),
            next_token: 1_000,
            next_query_seq: 1,
            publish_seq: 0,
            stats: EngineStats::default(),
        }
    }

    /// This node's network address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// The local catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Engine activity counters.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats;
        stats.plan_cache_hits = self.plan_cache.hits();
        stats.plan_cache_misses = self.plan_cache.misses();
        stats
    }

    /// Record `payload`'s bytes (and batch-ness) in the shipping counters.
    /// Wire-message counts are added separately because a routed batch
    /// submission reports how many messages it actually put on the wire.
    fn note_payload(&mut self, payload: &PierPayload) {
        use pier_simnet::WireSize;
        self.stats.bytes_shipped += payload.wire_size() as u64;
        if matches!(
            payload,
            PierPayload::TupleBatch(_)
                | PierPayload::JoinBatch { .. }
                | PierPayload::ResultBatch { .. }
        ) {
            self.stats.batches_sent += 1;
        }
    }

    /// Record one payload that costs exactly one wire message (direct sends,
    /// unbatched routed sends).
    fn note_send(&mut self, payload: &PierPayload) {
        self.stats.messages_sent += 1;
        self.note_payload(payload);
    }

    /// Like [`note_payload`](Self::note_payload), but also mirrors the bytes
    /// and batch count into the query's execution trace, so `EXPLAIN ANALYZE`
    /// totals reconcile with the engine-wide counters.
    fn note_query_payload(&mut self, id: QueryId, payload: &PierPayload) {
        use pier_simnet::WireSize;
        let bytes = payload.wire_size() as u64;
        let batch = matches!(
            payload,
            PierPayload::TupleBatch(_)
                | PierPayload::JoinBatch { .. }
                | PierPayload::ResultBatch { .. }
        );
        self.stats.bytes_shipped += bytes;
        if batch {
            self.stats.batches_sent += 1;
        }
        if let Some(q) = self.queries.get_mut(&id) {
            q.trace.bytes_shipped += bytes;
            if batch {
                q.trace.batches_sent += 1;
            }
        }
    }

    /// Like [`note_send`](Self::note_send), but query-scoped.
    fn note_query_send(&mut self, id: QueryId, payload: &PierPayload) {
        self.note_query_payload(id, payload);
        self.add_query_msgs(id, 1);
    }

    /// Count wire messages against both the engine-wide counters and the
    /// query's trace.
    fn add_query_msgs(&mut self, id: QueryId, n: u64) {
        self.stats.messages_sent += n;
        if let Some(q) = self.queries.get_mut(&id) {
            q.trace.messages_sent += n;
        }
    }

    /// This node's producer-side execution trace for a query, live or
    /// finished (used by tests and the trace-collection protocol).
    pub fn query_trace(&self, id: QueryId) -> Option<&OpTrace> {
        self.queries.get(&id).map(|q| &q.trace).or_else(|| self.finished_traces.get(&id))
    }

    /// Origin-side `EXPLAIN ANALYZE` collection state: how many nodes have
    /// reported so far and the merged network-wide trace.
    pub fn collected_trace(&self, id: QueryId) -> Option<(u64, &OpTrace)> {
        self.trace_acc.get(&id).map(|(n, t)| (*n, t))
    }

    /// Broadcast a trace request for a query this node originated.  Every
    /// node (this one included) answers with its per-operator trace; answers
    /// are merged into [`collected_trace`](Self::collected_trace).  Any
    /// previously collected state for the query is reset first, so repeated
    /// requests do not double-count.
    pub fn request_traces(&mut self, ctx: &mut Ctx<'_>, id: QueryId) {
        self.trace_acc.insert(id, (0, OpTrace::default()));
        self.dht.broadcast(ctx, PierPayload::TraceRequest { query: id });
        self.process_upcalls(ctx);
    }

    /// Number of queries currently installed at this node.
    pub fn active_queries(&self) -> usize {
        self.queries.len()
    }

    /// Register a table definition in the local catalog.  Every node that
    /// publishes into or queries a table must agree on its definition; the
    /// test/benchmark harness installs definitions on all nodes.
    pub fn create_table(&mut self, def: TableDef) {
        self.catalog.register(def);
    }

    /// Record cardinality hints for a table in the local catalog; the
    /// physical planner costs distributed join strategies from them.
    pub fn set_table_stats(&mut self, table: &str, stats: crate::catalog::TableStats) {
        self.catalog.set_stats(table, stats);
    }

    /// Results collected at this node for a query it originated.
    pub fn results(&self, id: QueryId) -> Option<&QueryResults> {
        self.results.get(&id)
    }

    /// Ids of the queries this node originated.
    pub fn originated_queries(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self.results.keys().copied().collect();
        ids.sort();
        ids
    }

    // ------------------------------------------------------------------
    // Publishing
    // ------------------------------------------------------------------

    /// Publish a tuple into the DHT under its table's partitioning key.
    pub fn publish(
        &mut self,
        ctx: &mut Ctx<'_>,
        table: &str,
        tuple: Tuple,
    ) -> Result<(), PierError> {
        let def = self
            .catalog
            .get(table)
            .ok_or_else(|| PierError::new(format!("unknown table '{table}'")))?
            .clone();
        self.publish_seq += 1;
        let instance = ((self.addr.0 as u64) << 32) | (self.publish_seq & 0xFFFF_FFFF);
        let key = ResourceKey::new(def.name.clone(), def.resource_of(&tuple), instance);
        let payload = PierPayload::Tuple(tuple);
        self.note_payload(&payload);
        let sent = self.dht.put(ctx, key, payload, Some(def.ttl));
        self.stats.messages_sent += sent as u64;
        self.stats.tuples_published += 1;
        self.process_upcalls(ctx);
        Ok(())
    }

    /// Publish many tuples of one table with coalesced wire traffic: tuples
    /// sharing a partitioning value travel (and are stored) as a single
    /// `TupleBatch`, and batches whose first routing hop coincides share one
    /// wire message.  With `batching` disabled this degenerates to per-tuple
    /// puts, which benchmarks use as the baseline.
    pub fn publish_batch(
        &mut self,
        ctx: &mut Ctx<'_>,
        table: &str,
        tuples: Vec<Tuple>,
    ) -> Result<(), PierError> {
        if !self.config.batching {
            for tuple in tuples {
                self.publish(ctx, table, tuple)?;
            }
            return Ok(());
        }
        let def = self
            .catalog
            .get(table)
            .ok_or_else(|| PierError::new(format!("unknown table '{table}'")))?
            .clone();
        let groups = group_by_key(tuples.into_iter().map(|t| (def.resource_of(&t), t)));
        let mut items = Vec::new();
        for (resource, group) in groups {
            for chunk in group.chunks(self.config.batch_max.max(1)) {
                self.publish_seq += 1;
                let instance = ((self.addr.0 as u64) << 32) | (self.publish_seq & 0xFFFF_FFFF);
                let key = ResourceKey::new(def.name.clone(), resource.clone(), instance);
                let payload = if chunk.len() == 1 {
                    PierPayload::Tuple(chunk[0].clone())
                } else {
                    PierPayload::TupleBatch(TupleBlock::new(
                        chunk.to_vec(),
                        self.config.columnar_wire,
                    ))
                };
                self.stats.tuples_published += chunk.len() as u64;
                self.note_payload(&payload);
                if self.config.renewal {
                    let log = self.publish_log.entry(def.name.clone()).or_default();
                    let now = ctx.now();
                    log.extend(chunk.iter().map(|t| (t.clone(), now)));
                }
                items.push((key, payload, Some(def.ttl)));
            }
        }
        let sent = self.dht.put_batch(ctx, items);
        self.stats.messages_sent += sent as u64;
        self.process_upcalls(ctx);
        Ok(())
    }

    /// Soft-state renewal for a table this node publishes into: re-publish
    /// only the logged tuples whose remaining lifetime has fallen below half
    /// the table's TTL, and skip (but keep) the fresh ones.  The blanket
    /// alternative — re-publishing the whole working set every period — pays
    /// full wire cost for tuples nowhere near expiry; per-item ages make the
    /// renewal traffic proportional to what is actually going stale.
    /// Requires [`PierConfig::renewal`]; without it the publish log is empty
    /// and this is a no-op.
    pub fn renew_published(&mut self, ctx: &mut Ctx<'_>, table: &str) -> Result<(), PierError> {
        let def = self
            .catalog
            .get(table)
            .ok_or_else(|| PierError::new(format!("unknown table '{table}'")))?
            .clone();
        let Some(log) = self.publish_log.get_mut(table) else { return Ok(()) };
        let now = ctx.now();
        let half_ttl = def.ttl.as_micros() / 2;
        let mut stale = Vec::new();
        let mut fresh = Vec::new();
        for (tuple, published_at) in log.drain(..) {
            if now.as_micros().saturating_sub(published_at.as_micros()) >= half_ttl {
                stale.push(tuple);
            } else {
                fresh.push((tuple, published_at));
            }
        }
        *log = fresh;
        self.stats.renewal_tuples_skipped += log.len() as u64;
        if stale.is_empty() {
            return Ok(());
        }
        self.stats.renewals_published += stale.len() as u64;
        // Re-publishing re-logs the stale half at `now`, resetting its age.
        self.publish_batch(ctx, table, stale)
    }

    /// Store a tuple locally (no routing).  Monitoring data *about this node*
    /// is published this way: scans still see it, and it expires like any
    /// other soft state, but no network traffic is spent placing it.
    pub fn publish_local(
        &mut self,
        now: SimTime,
        table: &str,
        tuple: Tuple,
    ) -> Result<(), PierError> {
        let def = self
            .catalog
            .get(table)
            .ok_or_else(|| PierError::new(format!("unknown table '{table}'")))?
            .clone();
        self.publish_seq += 1;
        let instance = ((self.addr.0 as u64) << 32) | (self.publish_seq & 0xFFFF_FFFF);
        let key = ResourceKey::new(def.name.clone(), def.resource_of(&tuple), instance);
        self.dht.local_put(now, key, PierPayload::Tuple(tuple), Some(def.ttl));
        self.stats.tuples_published += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Query submission (client API)
    // ------------------------------------------------------------------

    /// Parse, plan, and submit a SQL `SELECT`.  `CREATE TABLE` statements are
    /// applied to the local catalog only and return an error mentioning it.
    pub fn submit_sql(&mut self, ctx: &mut Ctx<'_>, sql: &str) -> Result<QueryId, PierError> {
        // Plan-cache fast path: a hit skips lexing, parsing, binding and
        // optimization entirely.  Only successfully planned SELECTs are ever
        // inserted, so a hit is known to be a SELECT without parsing.
        if let Some(planned) = self.plan_cache.lookup(sql, self.catalog.version()) {
            return self.submit_planned(ctx, sql, planned);
        }
        let stmt = parse(sql).map_err(|e| PierError::new(e.to_string()))?;
        match stmt {
            Statement::Select(sel) => self.submit_select(ctx, sql, &sel),
            Statement::Explain { .. } => Err(PierError::new(
                "EXPLAIN is evaluated locally, not disseminated; use explain_sql \
                 (or PierTestbed::explain_analyze for EXPLAIN ANALYZE)",
            )),
            Statement::CreateTable(_) | Statement::Insert(_) => Err(PierError::new(
                "only SELECT can be submitted as a distributed query; use create_table/publish",
            )),
        }
    }

    /// Plan and submit an already-parsed `SELECT`.  `sql` keys the plan cache
    /// and, for continuous queries, is kept so the origin can re-plan the
    /// query mid-flight when the catalog (typically its gossiped statistics)
    /// changes.  `EXPLAIN ANALYZE` drives this with the inner statement.
    pub fn submit_select(
        &mut self,
        ctx: &mut Ctx<'_>,
        sql: &str,
        stmt: &SelectStmt,
    ) -> Result<QueryId, PierError> {
        let planned = self
            .plan_cache
            .plan_parsed(&self.catalog, sql, stmt)
            .map_err(|e| PierError::new(e.to_string()))?;
        self.submit_planned(ctx, sql, planned)
    }

    fn submit_planned(
        &mut self,
        ctx: &mut Ctx<'_>,
        sql: &str,
        planned: crate::planner::PlannedQuery,
    ) -> Result<QueryId, PierError> {
        let continuous = planned.continuous;
        let id = self.submit(ctx, planned.kind, planned.output_names, continuous)?;
        if continuous.is_some() {
            // Remember the text so epoch boundaries can re-plan it against a
            // changed catalog (mid-flight re-planning).
            self.origin_sql.insert(id, (sql.to_string(), self.catalog.version()));
        }
        Ok(id)
    }

    /// Run the planning pipeline over `EXPLAIN <select>` (or a bare `SELECT`)
    /// against this node's catalog and render each stage's output.  Purely
    /// local: nothing is disseminated.  For `EXPLAIN ANALYZE` this renders
    /// the static stages only — executing the query and collecting the
    /// network-wide trace is the testbed's job
    /// (`PierTestbed::explain_analyze`).
    pub fn explain_sql(&self, sql: &str) -> Result<String, PierError> {
        let stmt = parse(sql).map_err(|e| PierError::new(e.to_string()))?;
        let select = match stmt {
            Statement::Explain { select, .. } => *select,
            Statement::Select(sel) => sel,
            Statement::CreateTable(_) | Statement::Insert(_) => {
                return Err(PierError::new("EXPLAIN supports only SELECT statements"))
            }
        };
        Planner::new(&self.catalog)
            .explain_select(&select)
            .map(|e| e.render())
            .map_err(|e| PierError::new(e.to_string()))
    }

    /// Submit a query built through the algebraic interface.
    pub fn submit(
        &mut self,
        ctx: &mut Ctx<'_>,
        kind: QueryKind,
        output_names: Vec<String>,
        continuous: Option<ContinuousSpec>,
    ) -> Result<QueryId, PierError> {
        let id = QueryId::new(self.addr, self.next_query_seq);
        self.next_query_seq += 1;
        let spec = QuerySpec { id, kind, output_names, continuous };
        self.results.insert(id, QueryResults::new(spec.clone()));
        // Disseminate to every node (including ourselves, which installs it).
        self.dht.broadcast(ctx, PierPayload::Query(spec));
        self.process_upcalls(ctx);
        Ok(id)
    }

    /// Stop a continuous query everywhere.
    pub fn stop_query(&mut self, ctx: &mut Ctx<'_>, id: QueryId) {
        self.dht.broadcast(ctx, PierPayload::StopQuery(id));
        self.process_upcalls(ctx);
    }

    // ------------------------------------------------------------------
    // Timer plumbing
    // ------------------------------------------------------------------

    fn arm_timer(&mut self, ctx: &mut Ctx<'_>, delay: Duration, purpose: TimerPurpose) {
        let token = self.next_token;
        self.next_token += 1;
        self.timer_purposes.insert(token, purpose);
        ctx.set_timer(delay, token);
    }

    // ------------------------------------------------------------------
    // Upcall processing
    // ------------------------------------------------------------------

    fn process_upcalls(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let mut upcalls = self.dht.take_upcalls();
            if upcalls.is_empty() {
                // The tick has quiesced: ship whatever results it produced
                // (or defer, when the time-based flush allows spanning
                // ticks), then drain anything the flush itself enqueued.
                self.flush_results(ctx);
                upcalls = self.dht.take_upcalls();
                if upcalls.is_empty() {
                    break;
                }
            }
            for up in upcalls {
                match up {
                    Upcall::Broadcast { payload } => self.on_broadcast(ctx, payload),
                    Upcall::Delivered { payload, .. } => self.on_delivered(ctx, payload),
                    Upcall::Direct { payload, .. } => self.on_direct(ctx, payload),
                    Upcall::GetResult { req_id, items, .. } => {
                        self.on_get_result(ctx, req_id, items)
                    }
                    Upcall::NewItem { .. } | Upcall::Joined | Upcall::LookupResult { .. } => {}
                }
            }
        }
    }

    fn on_broadcast(&mut self, ctx: &mut Ctx<'_>, payload: PierPayload) {
        match payload {
            PierPayload::Query(spec) => self.install_query(ctx, spec),
            PierPayload::StopQuery(id) => {
                // Ship this query's buffered result rows while the trace can
                // still account for them, then keep the trace so a later
                // `EXPLAIN ANALYZE` trace request can still be answered.
                // This must *force* the flush: with `batch_flush_ticks > 0`
                // the tick-drain flush may defer, and a deferred buffer
                // shipped after the query is removed would count
                // bytes/messages the (frozen) trace can no longer mirror —
                // breaking reconciliation.  Per-query, so co-resident
                // queries' deferral windows stay intact.
                self.flush_query(ctx, id);
                if let Some(q) = self.queries.remove(&id) {
                    if self.finished_traces.insert(id, q.trace).is_none() {
                        self.finished_trace_order.push_back(id);
                        while self.finished_trace_order.len() > MAX_FINISHED_TRACES {
                            if let Some(oldest) = self.finished_trace_order.pop_front() {
                                self.finished_traces.remove(&oldest);
                            }
                        }
                    }
                }
                self.origin_sql.remove(&id);
            }
            PierPayload::TraceRequest { query } => self.answer_trace_request(ctx, query),
            PierPayload::Bloom { query, stage, epoch, bits, k, combined: true } => {
                let filter = BloomFilter::from_words(bits, k);
                if stage == 0 {
                    if let Some(q) = self.queries.get_mut(&query) {
                        q.combined_bloom.insert((0, epoch), filter);
                    }
                    self.run_bloom_phase2(ctx, query, epoch);
                } else {
                    self.run_inner_phase2(ctx, query, stage, epoch, Some(&filter));
                }
            }
            _ => {}
        }
    }

    fn on_delivered(&mut self, ctx: &mut Ctx<'_>, payload: PierPayload) {
        // Operator input can race ahead of query dissemination (a rehashed
        // tuple may reach the join site before the site hears about the
        // query).  Buffer it; install_query replays it.
        let query_of = match &payload {
            PierPayload::JoinTuple { query, .. }
            | PierPayload::JoinBatch { query, .. }
            | PierPayload::Expand { query, .. } => Some(*query),
            _ => None,
        };
        if let Some(id) = query_of {
            if !self.queries.contains_key(&id) {
                let buf = self.early_arrivals.entry(id).or_default();
                if buf.len() < 100_000 {
                    buf.push(payload);
                }
                return;
            }
        }
        match payload {
            PierPayload::JoinTuple { query, stage, epoch, side, key, tuple } => {
                self.on_join_tuples(ctx, query, stage, epoch, side, key, vec![tuple])
            }
            PierPayload::JoinBatch { query, stage, epoch, side, key, tuples } => {
                self.on_join_tuples(ctx, query, stage, epoch, side, key, tuples.into_rows())
            }
            PierPayload::Expand { query, vertex, depth } => {
                self.on_expand(ctx, query, vertex, depth)
            }
            _ => {}
        }
    }

    fn on_direct(&mut self, ctx: &mut Ctx<'_>, payload: PierPayload) {
        match payload {
            PierPayload::Partial { query, epoch, groups, contributors } => {
                self.absorb_partials(ctx, query, epoch, groups, contributors, true);
            }
            PierPayload::Result(row) => {
                if let Some(res) = self.results.get_mut(&row.query) {
                    res.rows.entry(row.epoch).or_default().push(row.tuple);
                }
            }
            PierPayload::ResultBatch { query, epoch, rows } => {
                if let Some(res) = self.results.get_mut(&query) {
                    res.rows.entry(epoch).or_default().extend(rows.into_rows());
                }
            }
            PierPayload::EpochDone { query, epoch, contributors } => {
                if let Some(res) = self.results.get_mut(&query) {
                    // One root per query normally (take the max over its
                    // possibly-postponed reports); colocated aggregation has
                    // one root per join site, each reporting disjoint
                    // contributors, so they sum.
                    let colocated = res
                        .spec
                        .kind
                        .join_aggregate()
                        .is_some_and(|a| a.hierarchical && a.colocated);
                    let e = res.contributors.entry(epoch).or_insert(0);
                    if colocated {
                        *e += contributors;
                    } else {
                        *e = (*e).max(contributors);
                    }
                    res.rows.entry(epoch).or_default();
                }
            }
            PierPayload::WindowRetract { query, window } => {
                // A late-data patch is coming: forget the window's previous
                // rows; the corrected rows and a fresh EpochDone follow.
                if let Some(res) = self.results.get_mut(&query) {
                    res.rows.insert(window, Vec::new());
                    res.contributors.remove(&window);
                }
            }
            PierPayload::Bloom { query, stage, epoch, bits, k, combined: false } => {
                self.on_bloom_summary(ctx, query, stage, epoch, bits, k);
            }
            PierPayload::TraceReport { query, trace, .. } => {
                let (reporters, acc) = self.trace_acc.entry(query).or_default();
                *reporters += 1;
                acc.merge(&trace);
            }
            PierPayload::StatsGossip { entries } => {
                let changed = self.gossip.absorb(entries, ctx.now().as_micros());
                if changed {
                    let totals = self.gossip.totals();
                    apply_totals(&mut self.catalog, &totals);
                }
            }
            _ => {}
        }
    }

    /// Answer an `EXPLAIN ANALYZE` trace request: merge locally at the
    /// origin, report directly otherwise.  Observability traffic is *not*
    /// counted in the query-path counters it measures.
    fn answer_trace_request(&mut self, ctx: &mut Ctx<'_>, id: QueryId) {
        let Some(trace) = self.query_trace(id).cloned() else { return };
        if id.origin() == self.addr {
            let (reporters, acc) = self.trace_acc.entry(id).or_default();
            *reporters += 1;
            acc.merge(&trace);
        } else {
            let payload = PierPayload::TraceReport { query: id, node: self.addr, trace };
            self.dht.send_direct(ctx, id.origin(), payload);
        }
    }

    // ------------------------------------------------------------------
    // Query installation & epochs
    // ------------------------------------------------------------------

    fn install_query(&mut self, ctx: &mut Ctx<'_>, spec: QuerySpec) {
        let id = spec.id;
        if let Some(q) = self.queries.get_mut(&id) {
            // Re-dissemination of a known query.  If the origin re-planned it
            // (mid-flight adaptivity), stage the new spec; it takes effect at
            // this node's next epoch evaluation so no single node-epoch mixes
            // strategies.  A matching spec clears any staged one — the origin
            // may have reverted a re-plan before this node ever applied it.
            if q.spec.kind != spec.kind {
                q.pending_spec = Some(spec);
            } else {
                q.pending_spec = None;
            }
            return;
        }
        let continuous = spec.continuous;
        let is_recursive_origin =
            matches!(spec.kind, QueryKind::Recursive { .. }) && spec.origin() == self.addr;
        self.queries.insert(id, RunningQuery::new(spec, ctx.now()));

        // Replay operator input that arrived before the plan did.
        if let Some(buffered) = self.early_arrivals.remove(&id) {
            for payload in buffered {
                self.on_delivered(ctx, payload);
            }
        }

        // Recursive queries are seeded from the origin only.
        if is_recursive_origin {
            self.seed_recursive(ctx, id);
        }

        self.run_epoch(ctx, id);
        if let Some(c) = continuous {
            let delay = epoch_align_delay(ctx.now(), &c);
            self.arm_timer(ctx, delay, TimerPurpose::Epoch(id));
        }
    }

    /// Execute the local portion of one epoch of a query, first applying any
    /// re-planned spec staged for this epoch boundary.
    fn run_epoch(&mut self, ctx: &mut Ctx<'_>, id: QueryId) {
        let now = ctx.now();
        let (spec, epoch, replanned) = {
            let Some(q) = self.queries.get_mut(&id) else { return };
            let epoch = match &q.spec.continuous {
                Some(c) => continuous_epoch(now, c),
                None => 0,
            };
            let mut replanned = false;
            if let Some(new_spec) = q.pending_spec.take() {
                if new_spec.kind != q.spec.kind {
                    q.trace.replans += 1;
                    q.trace.switches.push(format!(
                        "epoch {epoch}: {} -> {}",
                        strategy_label(&q.spec.kind),
                        strategy_label(&new_spec.kind)
                    ));
                    q.spec = new_spec;
                    q.kernels = None;
                    replanned = true;
                }
            }
            q.trace.epochs_run += 1;
            (q.spec.clone(), epoch, replanned)
        };
        if replanned {
            self.stats.replans += 1;
            // The origin's result bookkeeping mirrors the live spec.
            if let Some(res) = self.results.get_mut(&id) {
                res.spec = spec.clone();
            }
        }
        self.stats.epochs_run += 1;

        let since = scan_since(&spec, now);

        match &spec.kind {
            QueryKind::Select { table, filter, project, .. } => {
                let rows = self.scan_traced(id, table, now, since);
                if self.config.vectorized {
                    // Batch → filter kernel → selection vector → projection
                    // kernels, then one output tuple per surviving row.
                    let Some(kern) = self.query_kernels(id) else { return };
                    let batch = self.batch_for_scan(table, now, since, &rows);
                    let sel = match &kern.filter {
                        Some(k) => k.filter(&batch, &batch.full_selection()),
                        None => batch.full_selection(),
                    };
                    let cols: Vec<crate::column::Column> =
                        kern.project.iter().map(|k| k.eval(&batch, &sel)).collect();
                    for j in 0..sel.len() {
                        let out = Tuple::new(cols.iter().map(|c| c.value_at(j)).collect());
                        self.send_result(ctx, &spec, epoch, out);
                    }
                } else {
                    let filter_op = filter.clone().map(FilterOp::new);
                    let project_op = ProjectOp::new(project.clone());
                    for row in rows {
                        if filter_op.as_ref().map(|f| f.accepts(&row)).unwrap_or(true) {
                            let out = project_op.apply_one(&row);
                            self.send_result(ctx, &spec, epoch, out);
                        }
                    }
                }
            }
            QueryKind::Aggregate { table, filter, group_exprs, aggs, .. } => {
                let rows = self.scan_traced(id, table, now, since);
                let mut agg = GroupAggregator::new(group_exprs.clone(), aggs.clone());
                if self.config.vectorized {
                    let Some(kern) = self.query_kernels(id) else { return };
                    let batch = self.batch_for_scan(table, now, since, &rows);
                    let sel = match &kern.filter {
                        Some(k) => k.filter(&batch, &batch.full_selection()),
                        None => batch.full_selection(),
                    };
                    agg.update_batch(&batch, &sel);
                } else {
                    let filter_op = filter.clone().map(FilterOp::new);
                    for row in rows {
                        if filter_op.as_ref().map(|f| f.accepts(&row)).unwrap_or(true) {
                            agg.update(&row);
                        }
                    }
                }
                let partials = agg.take_partials();
                self.absorb_partials(ctx, id, epoch, partials, 1, false);
            }
            QueryKind::Join { left_table, left_filter, stages, .. } => {
                // Right sides first: every symmetric-hash stage's right
                // relation is scanned and rehashed into that stage's
                // namespace.  Fetch-Matches stages are probed on demand and
                // the (stage-0-only) Bloom stage's right side waits for the
                // combined filter.
                let stages = stages.clone();
                let left_table = left_table.clone();
                let left_filter = left_filter.clone();
                let kern = self.query_kernels(id);
                for (k, stage) in stages.iter().enumerate() {
                    if stage.strategy == JoinStrategy::SymmetricHash {
                        if crate::query::join_side_fed(&stages, k as u8, 1) {
                            // A merge stage: its side 1 is another stage's
                            // streamed output, not a base relation — nothing
                            // to scan here.
                            continue;
                        }
                        if k > 0 && stage.inner_bloom && self.config.inner_bloom {
                            // Inner-stage Bloom semi-join: the right relation
                            // waits for the stage's combined filter (or the
                            // hold-down fallback) instead of rehashing now.
                            let delay = self.config.bloom_fallback_delay;
                            self.arm_timer(
                                ctx,
                                delay,
                                TimerPurpose::BloomFallback(id, k as u8, epoch),
                            );
                            continue;
                        }
                        let rows = self.scan_filtered_traced(
                            id,
                            &stage.right_table,
                            now,
                            since,
                            &stage.right_filter,
                            kern.as_deref().and_then(|c| {
                                c.stages.get(k).and_then(|s| s.right_filter.as_ref())
                            }),
                        );
                        self.rehash_stage(
                            ctx,
                            &spec,
                            k as u8,
                            epoch,
                            1,
                            &stage.right_key,
                            Some(&stage.right_ship_cols),
                            rows,
                        );
                    }
                }
                // Bushy subchain roots: a stage whose left side is its own
                // base-table scan (rather than the previous stage's output)
                // starts a concurrent subchain — scan and feed it exactly
                // like the stage-0 driving side.  The stage-0 Bloom protocol
                // needs two base-table sides and its phase-2 machinery is
                // keyed to stage 0, so the planner never roots a subchain on
                // it; anything unexpected degrades to a symmetric rehash.
                for (k, stage) in stages.iter().enumerate() {
                    let Some(scan) = &stage.left_scan else { continue };
                    let rows =
                        self.scan_filtered_traced(id, &scan.table, now, since, &scan.filter, None);
                    match stage.strategy {
                        JoinStrategy::FetchMatches => {
                            let left_key = stage.left_key.clone();
                            let right_table = stage.right_table.clone();
                            self.probe_stage(
                                ctx,
                                id,
                                k as u8,
                                epoch,
                                &left_key,
                                &right_table,
                                rows,
                            );
                        }
                        _ => {
                            self.rehash_stage(
                                ctx,
                                &spec,
                                k as u8,
                                epoch,
                                0,
                                &stage.left_key,
                                Some(&stage.left_ship_cols),
                                rows,
                            );
                        }
                    }
                }
                // Driving side: the stage-0 left input is a base-table scan.
                let rows = self.scan_filtered_traced(
                    id,
                    &left_table,
                    now,
                    since,
                    &left_filter,
                    kern.as_deref().and_then(|c| c.filter.as_ref()),
                );
                let stage0 = &stages[0];
                match stage0.strategy {
                    JoinStrategy::SymmetricHash => {
                        self.rehash_stage(
                            ctx,
                            &spec,
                            0,
                            epoch,
                            0,
                            &stage0.left_key,
                            Some(&stage0.left_ship_cols),
                            rows,
                        );
                    }
                    JoinStrategy::FetchMatches => {
                        let left_key = stage0.left_key.clone();
                        let right_table = stage0.right_table.clone();
                        self.probe_stage(ctx, id, 0, epoch, &left_key, &right_table, rows);
                    }
                    JoinStrategy::BloomFilter => {
                        // Phase 1: summarize and rehash the left relation;
                        // the right relation waits for the combined filter.
                        let mut bloom =
                            BloomFilter::new(self.clamped_bloom_bits(stage0.bloom_bits), 4);
                        for row in &rows {
                            let key = stage0.left_key.eval(row);
                            if !key.is_null() {
                                bloom.insert(&key);
                            }
                        }
                        self.rehash_stage(
                            ctx,
                            &spec,
                            0,
                            epoch,
                            0,
                            &stage0.left_key,
                            Some(&stage0.left_ship_cols),
                            rows,
                        );
                        let (bits, k) = bloom.to_words();
                        let payload = PierPayload::Bloom {
                            query: id,
                            stage: 0,
                            epoch,
                            bits,
                            k,
                            combined: false,
                        };
                        self.note_query_send(id, &payload);
                        self.dht.send_direct(ctx, spec.origin(), payload);
                    }
                }
                // Hierarchical aggregate over the join: the origin seeds an
                // empty partial for the epoch so the aggregation root always
                // finalizes it — a global aggregate over a matchless epoch
                // still reports its one "empty" row (COUNT = 0), and the
                // epoch's contributor summary reaches the origin.  Nodes
                // with actual matches contribute through the final stage.
                if spec.origin() == self.addr {
                    if let Some(agg) = spec.kind.join_aggregate() {
                        if agg.hierarchical {
                            let contributors = self
                                .queries
                                .get_mut(&id)
                                .map(|q| u64::from(q.agg_contributed.insert(epoch)))
                                .unwrap_or(0);
                            self.absorb_partials(ctx, id, epoch, Vec::new(), contributors, false);
                        }
                    }
                }
            }
            QueryKind::Recursive { .. } => {
                // Recursive queries are driven by Expand messages, not scans.
            }
        }
        self.process_upcalls(ctx);
    }

    /// The columnar form of a scan delta, shared across every query that
    /// scans the same `(table, now, since)` window while the local store is
    /// unchanged — with many concurrent monitoring queries over one table
    /// (PIER's target workload), the row-to-column pivot happens once and
    /// the per-query cost is just the kernels.
    fn batch_for_scan(
        &mut self,
        table: &str,
        now: SimTime,
        since: SimTime,
        rows: &[Tuple],
    ) -> std::rc::Rc<ColumnarBatch> {
        const MAX_SCAN_BATCHES: usize = 8;
        let muts = self.dht.store_mutations();
        if let Some((_, batch)) = self
            .scan_batches
            .iter()
            .find(|(k, _)| k.0 == table && k.1 == now && k.2 == since && k.3 == muts)
        {
            return batch.clone();
        }
        let batch = std::rc::Rc::new(ColumnarBatch::from_rows(rows));
        if self.scan_batches.len() >= MAX_SCAN_BATCHES {
            self.scan_batches.remove(0);
        }
        self.scan_batches.push(((table.to_string(), now, since, muts), batch.clone()));
        batch
    }

    fn scan(&mut self, table: &str, now: SimTime, since: SimTime) -> Vec<Tuple> {
        let items = self.dht.lscan_since(table, now, since);
        // A stored item carries one tuple or a same-key batch; scans read
        // through the difference.
        let rows: Vec<Tuple> =
            items.into_iter().flat_map(|(_, payload)| payload.tuples().to_vec()).collect();
        self.stats.tuples_scanned += rows.len() as u64;
        rows
    }

    /// Scan on behalf of a query, mirroring the scanned-tuple count into its
    /// execution trace.
    fn scan_traced(
        &mut self,
        id: QueryId,
        table: &str,
        now: SimTime,
        since: SimTime,
    ) -> Vec<Tuple> {
        let rows = self.scan(table, now, since);
        if let Some(q) = self.queries.get_mut(&id) {
            q.trace.tuples_scanned += rows.len() as u64;
        }
        rows
    }

    /// Scan a table and apply a pushed-down predicate before any tuple is
    /// shipped (the optimizer places per-side join filters here).  The trace
    /// counts the tuples *scanned*, before the filter drops any.  With a
    /// compiled `kernel` for the predicate and vectorization on, the filter
    /// runs as a selection-vector kernel over a columnar batch.
    fn scan_filtered_traced(
        &mut self,
        id: QueryId,
        table: &str,
        now: SimTime,
        since: SimTime,
        filter: &Option<crate::expr::Expr>,
        kernel: Option<&Kernel>,
    ) -> Vec<Tuple> {
        let rows = self.scan_traced(id, table, now, since);
        if rows.is_empty() || filter.is_none() {
            return rows;
        }
        if self.config.vectorized {
            if let Some(k) = kernel {
                let batch = self.batch_for_scan(table, now, since, &rows);
                let sel = k.filter(&batch, &batch.full_selection());
                let mut keep = vec![false; rows.len()];
                for &j in &sel {
                    keep[j as usize] = true;
                }
                return rows
                    .into_iter()
                    .zip(keep)
                    .filter_map(|(r, keep)| keep.then_some(r))
                    .collect();
            }
        }
        let op = FilterOp::new(filter.clone().expect("checked above"));
        rows.into_iter().filter(|r| op.accepts(r)).collect()
    }

    /// The query's compiled kernel pipeline, building it on first use.
    fn query_kernels(&mut self, id: QueryId) -> Option<Rc<CompiledKernels>> {
        let q = self.queries.get_mut(&id)?;
        if q.kernels.is_none() {
            q.kernels = Some(Rc::new(CompiledKernels::from_spec(&q.spec)));
        }
        q.kernels.clone()
    }

    fn send_result(&mut self, ctx: &mut Ctx<'_>, spec: &QuerySpec, epoch: u64, tuple: Tuple) {
        self.stats.results_sent += 1;
        if let Some(q) = self.queries.get_mut(&spec.id) {
            q.trace.results_sent += 1;
            *q.trace.epoch_rows.entry(epoch).or_insert(0) += 1;
        }
        if !self.config.batching {
            let row = ResultRow { query: spec.id, epoch, tuple };
            let payload = PierPayload::Result(row);
            self.note_query_send(spec.id, &payload);
            self.dht.send_direct(ctx, spec.origin(), payload);
            return;
        }
        // Buffer; flush_results ships one message per (origin, query, epoch)
        // when the current engine tick drains (or earlier at batch_max).
        let key = (spec.id, epoch);
        let flush_now = {
            let rows = match self.pending_results.iter_mut().find(|(k, _)| *k == key) {
                Some((_, rows)) => rows,
                None => {
                    self.pending_results.push((key, Vec::new()));
                    &mut self.pending_results.last_mut().expect("just pushed").1
                }
            };
            rows.push(tuple);
            rows.len() >= self.config.batch_max.max(1)
        };
        if flush_now {
            self.force_flush(ctx);
        }
    }

    /// Tick-drain flush: ship the deferred buffers now, unless the
    /// time-based flush (`batch_flush_ticks > 0`) lets them span more
    /// ticks — in which case a hold-down-length deadline timer is armed so
    /// buffered rows cannot starve on a quiescent node.
    fn flush_results(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending_results.is_empty() && self.pending_rehash.is_empty() {
            self.flush_direct(ctx);
            return;
        }
        if self.config.batch_flush_ticks > 0 {
            self.ticks_since_flush += 1;
            if self.ticks_since_flush < self.config.batch_flush_ticks {
                if !self.flush_timer_armed {
                    self.flush_timer_armed = true;
                    let delay = self.config.holddown;
                    self.arm_timer(ctx, delay, TimerPurpose::BatchFlush);
                }
                // Results and rehashes may span ticks, but staged direct
                // sends (partials, gossip) always ship in their own tick.
                self.flush_direct(ctx);
                return;
            }
        }
        self.force_flush(ctx);
    }

    /// Ship every buffered result row (one message per (query, epoch): a
    /// plain `Result` for a single row, a `ResultBatch` otherwise) and every
    /// deferred intermediate rehash buffer.
    fn force_flush(&mut self, ctx: &mut Ctx<'_>) {
        self.ticks_since_flush = 0;
        // Gossip held over the deferral window ships with this flush, merging
        // into the same destination frames as the query traffic below.
        for (peer, payload) in std::mem::take(&mut self.pending_gossip) {
            self.pending_direct.push((peer, DirectStream::Gossip, payload));
        }
        let results = std::mem::take(&mut self.pending_results);
        let rehashes = std::mem::take(&mut self.pending_rehash);
        self.ship_deferred(ctx, results, rehashes);
    }

    /// Ship only `id`'s deferred buffers, leaving other queries' deferral
    /// windows intact (a StopQuery must flush the dying query's buffers
    /// while its trace can still account for them, but co-resident queries
    /// keep coalescing).
    fn flush_query(&mut self, ctx: &mut Ctx<'_>, id: QueryId) {
        let (results, rest): (Vec<_>, Vec<_>) =
            std::mem::take(&mut self.pending_results).into_iter().partition(|((q, _), _)| *q == id);
        self.pending_results = rest;
        let (rehashes, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending_rehash)
            .into_iter()
            .partition(|((q, _, _, _), _)| *q == id);
        self.pending_rehash = rest;
        self.ship_deferred(ctx, results, rehashes);
    }

    fn ship_deferred(
        &mut self,
        ctx: &mut Ctx<'_>,
        results: Vec<((QueryId, u64), Vec<Tuple>)>,
        rehashes: Vec<(RehashBufKey, Vec<(Value, Tuple)>)>,
    ) {
        for ((query, epoch), mut rows) in results {
            let origin = query.origin();
            let payload = if rows.len() == 1 {
                PierPayload::Result(ResultRow {
                    query,
                    epoch,
                    tuple: rows.pop().expect("len checked"),
                })
            } else {
                PierPayload::ResultBatch {
                    query,
                    epoch,
                    rows: TupleBlock::new(rows, self.config.columnar_wire),
                }
            };
            if self.config.piggyback {
                self.note_query_payload(query, &payload);
                self.pending_direct.push((origin, DirectStream::Query(query), payload));
            } else {
                self.note_query_send(query, &payload);
                self.dht.send_direct(ctx, origin, payload);
            }
        }
        // Results ship before rehashes, as the unbatched paths would.
        self.flush_direct(ctx);
        let multi_query =
            rehashes.iter().map(|((q, _, _, _), _)| *q).collect::<HashSet<_>>().len() >= 2;
        if self.config.piggyback && multi_query {
            self.ship_rehash_merged(ctx, rehashes);
        } else {
            for ((query, stage, epoch, side), pairs) in rehashes {
                let namespace = join_namespace(query, stage);
                self.send_rehash(ctx, query, stage, epoch, side, namespace, pairs);
            }
        }
    }

    /// Drain the staged point-to-point payloads.  Per destination (in
    /// staging order): a run from a single accounting stream replays the
    /// exact unstaged sends; payloads from ≥ 2 distinct streams merge into
    /// one `DirectBatch` frame, charged to the first query stream aboard
    /// (or the engine stream if no query rides) — every other payload is
    /// counted as piggybacked.
    fn flush_direct(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending_direct.is_empty() {
            return;
        }
        let staged = std::mem::take(&mut self.pending_direct);
        let groups = group_by_key(
            staged.into_iter().map(|(dest, stream, payload)| (dest, (stream, payload))),
        );
        for (dest, entries) in groups {
            let distinct = {
                let mut streams: Vec<DirectStream> = entries.iter().map(|(s, _)| *s).collect();
                streams.sort_unstable();
                streams.dedup();
                streams.len()
            };
            if distinct < 2 {
                for (stream, payload) in entries {
                    match stream {
                        DirectStream::Query(q) => self.add_query_msgs(q, 1),
                        DirectStream::Engine => self.stats.messages_sent += 1,
                        DirectStream::Gossip => {}
                    }
                    self.dht.send_direct(ctx, dest, payload);
                }
                continue;
            }
            self.stats.shared_frames += 1;
            let charged = entries
                .iter()
                .position(|(s, _)| matches!(s, DirectStream::Query(_)))
                .or_else(|| entries.iter().position(|(s, _)| matches!(s, DirectStream::Engine)));
            match charged.map(|i| entries[i].0) {
                Some(DirectStream::Query(q)) => self.add_query_msgs(q, 1),
                Some(DirectStream::Engine) => self.stats.messages_sent += 1,
                _ => {}
            }
            for (i, (stream, _)) in entries.iter().enumerate() {
                if Some(i) == charged {
                    continue;
                }
                self.stats.piggybacked_payloads += 1;
                if let DirectStream::Query(q) = stream {
                    if let Some(rq) = self.queries.get_mut(q) {
                        rq.trace.piggybacked_payloads += 1;
                    }
                }
            }
            let payloads: Vec<PierPayload> = entries.into_iter().map(|(_, p)| p).collect();
            self.dht.send_direct_batch(ctx, dest, payloads);
        }
    }

    /// Ship deferred intermediate rehashes from several queries through one
    /// `send_to_key_batch` call, so tuples bound for the same next hop share
    /// a `RouteBatch` frame across query boundaries.  Mirrors the DHT's
    /// next-hop grouping ([`DhtNode::route_next_hop`]) to attribute each
    /// predicted frame: the first payload's query pays for it, co-riding
    /// payloads from other queries count as piggybacked.
    fn ship_rehash_merged(
        &mut self,
        ctx: &mut Ctx<'_>,
        rehashes: Vec<(RehashBufKey, Vec<(Value, Tuple)>)>,
    ) {
        let mut items: Vec<(ResourceKey, PierPayload)> = Vec::new();
        let mut owners: Vec<(QueryId, u8, u8)> = Vec::new();
        for ((query, stage, epoch, side), pairs) in rehashes {
            let namespace = join_namespace(query, stage);
            let mut shipped = 0u64;
            for (key, group) in group_by_key(pairs) {
                let resource = ResourceKey::singleton(&namespace, key.partition_string());
                for chunk in group.chunks(self.config.batch_max.max(1)) {
                    self.stats.join_tuples_sent += chunk.len() as u64;
                    shipped += chunk.len() as u64;
                    let payload = if chunk.len() == 1 {
                        PierPayload::JoinTuple {
                            query,
                            stage,
                            epoch,
                            side,
                            key: key.clone(),
                            tuple: chunk[0].clone(),
                        }
                    } else {
                        PierPayload::JoinBatch {
                            query,
                            stage,
                            epoch,
                            side,
                            key: key.clone(),
                            tuples: TupleBlock::new(chunk.to_vec(), self.config.columnar_wire),
                        }
                    };
                    self.note_query_payload(query, &payload);
                    items.push((resource.clone(), payload));
                    owners.push((query, stage, side));
                }
            }
            if let Some(q) = self.queries.get_mut(&query) {
                q.trace.tuples_shipped += shipped;
                *q.trace.stage_shipped.entry(stage).or_insert(0) += shipped;
            }
        }
        // Predict the DHT's per-next-hop frame grouping (first-occurrence
        // order, local deliveries free) to attribute messages per query.
        let mut hop_index: HashMap<NodeAddr, usize> = HashMap::new();
        let mut hop_groups: Vec<Vec<usize>> = Vec::new();
        for (i, (resource, _)) in items.iter().enumerate() {
            let Some(peer) = self.dht.route_next_hop(&resource.routing_id()) else {
                continue;
            };
            match hop_index.get(&peer.addr) {
                Some(&g) => hop_groups[g].push(i),
                None => {
                    hop_index.insert(peer.addr, hop_groups.len());
                    hop_groups.push(vec![i]);
                }
            }
        }
        let mut predicted = 0usize;
        for group in &hop_groups {
            predicted += 1;
            let (head_query, head_stage, head_side) = owners[group[0]];
            self.add_query_msgs(head_query, 1);
            if head_side == 1 {
                // The frame is attributed to the head payload's query, so
                // its per-stage rehash-message counter pays for it too.
                if let Some(q) = self.queries.get_mut(&head_query) {
                    *q.trace.stage_rehash_msgs.entry(head_stage).or_insert(0) += 1;
                }
            }
            let mut shared = false;
            for &i in &group[1..] {
                if owners[i].0 != head_query {
                    shared = true;
                    self.stats.piggybacked_payloads += 1;
                    if let Some(q) = self.queries.get_mut(&owners[i].0) {
                        q.trace.piggybacked_payloads += 1;
                    }
                }
            }
            if shared {
                self.stats.shared_frames += 1;
            }
        }
        let sent = self.dht.send_to_key_batch(ctx, items);
        debug_assert_eq!(sent, predicted, "next-hop prediction drifted from route_many");
    }

    // ------------------------------------------------------------------
    // Aggregation (hierarchical, in-network)
    // ------------------------------------------------------------------

    fn agg_root_id(query: QueryId) -> pier_dht::Id {
        ResourceKey::singleton("pier:agg", format!("{query}")).routing_id()
    }

    /// Fold partial states into this node's role for the query: root
    /// accumulator if we are the aggregation root, otherwise the pending
    /// buffer that the hold-down timer will forward.
    fn absorb_partials(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: QueryId,
        epoch: u64,
        groups: Vec<(GroupKey, Vec<AggStateVec>)>,
        contributors: u64,
        from_network: bool,
    ) {
        if !self.queries.contains_key(&id) {
            // This node never received the query plan (e.g. it joined after
            // dissemination).  It cannot combine — it lacks the aggregate
            // specs — but it can still relay the partials toward the root so
            // the data is not lost.
            if from_network {
                if let Some(next) = self.dht.route_next_hop(&Self::agg_root_id(id)) {
                    self.stats.partials_sent += 1;
                    let payload = PierPayload::Partial { query: id, epoch, groups, contributors };
                    if self.config.piggyback {
                        self.note_payload(&payload);
                        self.pending_direct.push((next.addr, DirectStream::Engine, payload));
                    } else {
                        self.note_send(&payload);
                        self.dht.send_direct(ctx, next.addr, payload);
                    }
                }
            }
            return;
        }
        if from_network {
            self.stats.partials_merged += 1;
            if let Some(q) = self.queries.get_mut(&id) {
                q.trace.partials_merged += 1;
            }
        }
        let is_root = match self.config.aggregation {
            AggregationMode::Direct => {
                let origin = self.queries[&id].spec.origin();
                origin == self.addr
            }
            AggregationMode::Hierarchical => {
                self.dht.route_next_hop(&Self::agg_root_id(id)).is_none()
            }
        } || self.queries[&id]
            .spec
            .kind
            .join_aggregate()
            .is_some_and(|a| a.hierarchical && a.colocated);
        // Colocated join aggregation: the grouping column *is* the final
        // stage's join key, so the DHT already partitioned each group wholly
        // onto one join site.  Every site acts as the aggregation root for
        // its own groups — finalizing in place and skipping the partial
        // climb entirely (aggregate-aware stage keys).

        let Some((group_exprs, aggs)) =
            self.queries[&id].spec.kind.partial_agg_parts().map(|(g, a)| (g.to_vec(), a.to_vec()))
        else {
            return;
        };

        let mode = self.config.aggregation;
        let mut arm_finalize = false;
        let mut arm_holddown = false;
        let mut forward_now = false;
        let mut reemit: Vec<u64> = Vec::new();
        {
            let q = self.queries.get_mut(&id).expect("query checked above");
            if is_root && q.finalized.contains(&epoch) {
                // The epoch was already finalized and reported.  For plain
                // continuous queries late partials are dropped (best-effort
                // soft state, as in PIER); for windowed queries lateness is
                // judged per covering window and the configured policy
                // decides what happens to already-closed ones.
                let Some(wspec) = q.spec.kind.window_spec() else { return };
                let policy = self.config.window_late_policy;
                let mut dropped = false;
                for w in wspec.windows_of(epoch) {
                    if q.windows_closed.contains(&w) {
                        match (policy, q.window_acc.get_mut(&w)) {
                            (WindowLatePolicy::Patch, Some(acc)) => {
                                for (key, states) in &groups {
                                    acc.merge_group(key.clone(), states);
                                }
                                // The late subtree never made it into the
                                // epoch's contributor total, so add it here.
                                *q.window_contrib.entry(w).or_insert(0) += contributors;
                                reemit.push(w);
                            }
                            // Drop policy, or Patch past its retention
                            // horizon: the window's state is gone.
                            _ => dropped = true,
                        }
                    } else {
                        // The window is still open — the data is not late
                        // for *it*.  Fold it in; the window reports it when
                        // the watermark closes it.
                        let acc = q.window_acc.entry(w).or_insert_with(|| {
                            GroupAggregator::new(group_exprs.clone(), aggs.clone())
                        });
                        for (key, states) in &groups {
                            acc.merge_group(key.clone(), states);
                        }
                        *q.window_contrib.entry(w).or_insert(0) += contributors;
                    }
                }
                if dropped {
                    self.stats.window_late_dropped += 1;
                    q.trace.window_late_dropped += 1;
                }
                for _ in &reemit {
                    self.stats.window_late_patched += 1;
                    q.trace.window_late_patched += 1;
                }
                for w in reemit {
                    self.emit_window(ctx, id, w, true);
                }
                return;
            }
            if is_root {
                let acc = q
                    .root_acc
                    .entry(epoch)
                    .or_insert_with(|| GroupAggregator::new(group_exprs, aggs));
                for (key, states) in groups {
                    acc.merge_group(key, &states);
                }
                *q.root_contrib.entry(epoch).or_insert(0) += contributors;
                q.root_last_update.insert(epoch, ctx.now());
                arm_finalize = q.finalize_armed.insert(epoch);
            } else {
                let buf = q
                    .pending
                    .entry(epoch)
                    .or_insert_with(|| GroupAggregator::new(group_exprs, aggs));
                for (key, states) in groups {
                    buf.merge_group(key, &states);
                }
                *q.pending_contrib.entry(epoch).or_insert(0) += contributors;
                match mode {
                    // In direct mode there is no hold-down: forward immediately.
                    AggregationMode::Direct => forward_now = true,
                    AggregationMode::Hierarchical => {
                        arm_holddown = q.holddown_armed.insert(epoch);
                    }
                }
            }
        }
        if arm_finalize {
            let delay = self.config.collect_delay;
            self.arm_timer(ctx, delay, TimerPurpose::RootFinalize(id, epoch));
        }
        if arm_holddown {
            let delay = self.config.holddown;
            self.arm_timer(ctx, delay, TimerPurpose::Holddown(id, epoch));
        }
        if forward_now {
            self.forward_partials(ctx, id, epoch);
        }
    }

    /// Ship the buffered partials for (query, epoch) one hop closer to the root.
    fn forward_partials(&mut self, ctx: &mut Ctx<'_>, id: QueryId, epoch: u64) {
        let Some(q) = self.queries.get_mut(&id) else { return };
        q.holddown_armed.remove(&epoch);
        let Some(mut buf) = q.pending.remove(&epoch) else { return };
        let contributors = q.pending_contrib.remove(&epoch).unwrap_or(0);
        let groups = buf.take_partials();
        if groups.is_empty() && contributors == 0 {
            return;
        }
        let origin = q.spec.origin();
        let target = match self.config.aggregation {
            AggregationMode::Direct => Some(origin),
            AggregationMode::Hierarchical => {
                self.dht.route_next_hop(&Self::agg_root_id(id)).map(|p| p.addr)
            }
        };
        match target {
            Some(next) if next != self.addr => {
                self.stats.partials_sent += 1;
                if let Some(q) = self.queries.get_mut(&id) {
                    q.trace.partials_sent += 1;
                }
                let payload = PierPayload::Partial { query: id, epoch, groups, contributors };
                if self.config.piggyback {
                    self.note_query_payload(id, &payload);
                    self.pending_direct.push((next, DirectStream::Query(id), payload));
                } else {
                    self.note_query_send(id, &payload);
                    self.dht.send_direct(ctx, next, payload);
                }
            }
            _ => {
                // We became the root in the meantime: absorb locally.
                self.absorb_partials(ctx, id, epoch, groups, contributors, false);
            }
        }
    }

    /// Finalize an epoch at the aggregation root and ship the result rows.
    fn finalize_epoch(&mut self, ctx: &mut Ctx<'_>, id: QueryId, epoch: u64) {
        // Quiescence check: if partials are still trickling in, postpone the
        // finalization a few times so slow subtrees are not cut off.
        let postpone = {
            let Some(q) = self.queries.get_mut(&id) else { return };
            let recently = q
                .root_last_update
                .get(&epoch)
                .map(|&t| ctx.now().saturating_since(t) < self.config.holddown.saturating_mul(3))
                .unwrap_or(false);
            let extensions = q.root_extensions.entry(epoch).or_insert(0);
            if recently && *extensions < 4 {
                *extensions += 1;
                true
            } else {
                false
            }
        };
        if postpone {
            let delay = self.config.holddown.saturating_mul(3);
            self.arm_timer(ctx, delay, TimerPurpose::RootFinalize(id, epoch));
            return;
        }
        let Some(q) = self.queries.get_mut(&id) else { return };
        q.finalize_armed.remove(&epoch);
        q.finalized.insert(epoch);
        let Some(acc) = q.root_acc.remove(&epoch) else { return };
        let contributors = q.root_contrib.remove(&epoch).unwrap_or(0);
        let spec = q.spec.clone();

        if let Some(wspec) = spec.kind.window_spec() {
            // Windowed aggregate: the epoch's merged state is not reported
            // on its own — it is folded into every window covering it, and
            // whole windows are reported when the watermark closes them.
            self.fold_epoch_into_windows(ctx, id, epoch, acc, contributors, wspec);
            return;
        }

        // Both aggregation shapes finalize here: the classic single-table
        // aggregate, and the hierarchical aggregate terminating a join.
        let (having, order_by, limit) = match &spec.kind {
            QueryKind::Aggregate { having, order_by, limit, .. } => (having, order_by, limit),
            QueryKind::Join { aggregate: Some(agg), order_by, limit, .. } => {
                (&agg.having, order_by, limit)
            }
            _ => return,
        };

        let mut rows = acc.finalize();
        if let Some(h) = having {
            rows.retain(|r| h.matches(r));
        }
        if !order_by.is_empty() || limit.is_some() {
            let mut topk = TopK::new(order_by.clone(), limit.unwrap_or(usize::MAX));
            for r in rows {
                topk.push(r);
            }
            rows = topk.finish();
        }
        // Rows ship pre-projection (hidden aggregates included) so the
        // origin can re-sort on any ORDER BY key; it projects afterwards.
        for row in rows {
            self.send_result(ctx, &spec, epoch, row);
        }
        let done = PierPayload::EpochDone { query: id, epoch, contributors };
        self.note_query_send(id, &done);
        self.dht.send_direct(ctx, spec.origin(), done);
        self.process_upcalls(ctx);
    }

    /// Fold one finalized epoch's root accumulator into every window
    /// covering it, advance the watermark, and close (report) every window
    /// the watermark has passed.
    fn fold_epoch_into_windows(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: QueryId,
        epoch: u64,
        acc: GroupAggregator,
        contributors: u64,
        wspec: crate::query::WindowSpec,
    ) {
        let to_close = {
            let Some(q) = self.queries.get_mut(&id) else { return };
            for w in wspec.windows_of(epoch) {
                if q.windows_closed.contains(&w) {
                    // A straggler epoch whose windows all reported already;
                    // the late-partial path owns that case.
                    continue;
                }
                match q.window_acc.get_mut(&w) {
                    Some(wa) => wa.merge(&acc),
                    None => {
                        q.window_acc.insert(w, acc.clone());
                    }
                }
                // "Responding nodes" for a window: the best (largest)
                // epoch-level turnout among the epochs it covers.
                let c = q.window_contrib.entry(w).or_insert(0);
                *c = (*c).max(contributors);
            }
            let watermark = q.window_watermark.map_or(epoch, |m| m.max(epoch));
            q.window_watermark = Some(watermark);
            let mut close: Vec<u64> = q
                .window_acc
                .keys()
                .copied()
                .filter(|&w| wspec.closing_epoch(w) <= watermark && !q.windows_closed.contains(&w))
                .collect();
            close.sort_unstable();
            close
        };
        for w in to_close {
            self.emit_window(ctx, id, w, false);
        }
    }

    /// Close one window at the aggregation root: finalize its merged state,
    /// apply HAVING / ORDER BY / LIMIT, ship the rows (tagged with the
    /// window id in the `epoch` slot of every result payload) plus an
    /// `EpochDone`, and publish alert tuples if the query has a `HAVING`
    /// trigger.  `reemit` marks a late-data correction under
    /// [`WindowLatePolicy::Patch`]: a [`PierPayload::WindowRetract`]
    /// precedes the corrected rows so the origin replaces, not appends.
    fn emit_window(&mut self, ctx: &mut Ctx<'_>, id: QueryId, window: u64, reemit: bool) {
        let retain = self.config.window_late_policy == WindowLatePolicy::Patch;
        let (spec, mut rows, contributors) = {
            let Some(q) = self.queries.get_mut(&id) else { return };
            let Some(acc) = q.window_acc.get(&window) else { return };
            let rows = acc.finalize();
            let contributors = q.window_contrib.get(&window).copied().unwrap_or(0);
            q.windows_closed.insert(window);
            if retain {
                // Keep a bounded horizon of closed-window state so late
                // partials can patch recent windows; anything older is
                // freed (and further late data for it degrades to Drop).
                let cutoff = window.saturating_sub(WINDOW_PATCH_RETAIN);
                let stale: Vec<u64> = q
                    .window_acc
                    .keys()
                    .copied()
                    .filter(|w| *w < cutoff && q.windows_closed.contains(w))
                    .collect();
                for w in stale {
                    q.window_acc.remove(&w);
                    q.window_contrib.remove(&w);
                }
            } else {
                q.window_acc.remove(&window);
                q.window_contrib.remove(&window);
            }
            if !reemit {
                q.trace.windows_closed += 1;
            }
            (q.spec.clone(), rows, contributors)
        };
        if !reemit {
            self.stats.windows_closed += 1;
        }

        let (having, order_by, limit) = match &spec.kind {
            QueryKind::Aggregate { having, order_by, limit, .. } => (having, order_by, limit),
            QueryKind::Join { aggregate: Some(agg), order_by, limit, .. } => {
                (&agg.having, order_by, limit)
            }
            _ => return,
        };
        if let Some(h) = having {
            rows.retain(|r| h.matches(r));
        }
        // Trigger form: every row surviving HAVING is an alert for this
        // window, captured before ORDER BY / LIMIT trim the report.
        let alert_rows = if having.is_some() { rows.clone() } else { Vec::new() };
        if !order_by.is_empty() || limit.is_some() {
            let mut topk = TopK::new(order_by.clone(), limit.unwrap_or(usize::MAX));
            for r in rows {
                topk.push(r);
            }
            rows = topk.finish();
        }

        if reemit {
            let retract = PierPayload::WindowRetract { query: id, window };
            self.note_query_send(id, &retract);
            self.dht.send_direct(ctx, spec.origin(), retract);
        }
        for row in rows {
            self.send_result(ctx, &spec, window, row);
        }
        let done = PierPayload::EpochDone { query: id, epoch: window, contributors };
        self.note_query_send(id, &done);
        self.dht.send_direct(ctx, spec.origin(), done);
        if !alert_rows.is_empty() {
            self.publish_alerts(ctx, &spec, window, alert_rows);
        }
        self.process_upcalls(ctx);
    }

    /// Publish one closed window's qualifying rows as alert tuples into the
    /// query's [`alert namespace`](PierNode::alert_namespace).  Keys are
    /// deterministic per (window, group), so a patched re-emission
    /// overwrites the stale alert instead of duplicating it.
    fn publish_alerts(
        &mut self,
        ctx: &mut Ctx<'_>,
        spec: &QuerySpec,
        window: u64,
        rows: Vec<Tuple>,
    ) {
        let (group_len, final_project) = match &spec.kind {
            QueryKind::Aggregate { group_exprs, final_project, .. } => {
                (group_exprs.len(), final_project.clone())
            }
            QueryKind::Join { aggregate: Some(agg), .. } => {
                (agg.group_exprs.len(), agg.final_project.clone())
            }
            _ => return,
        };
        let namespace = Self::alert_namespace(spec.id);
        // Alerts live several windows, then expire like any soft state.
        let ttl = spec
            .continuous
            .map(|c| {
                let wspec =
                    spec.kind.window_spec().unwrap_or(crate::query::WindowSpec::tumbling(1));
                let span = c.period.as_micros().saturating_mul(4 * wspec.size as u64);
                Duration::from_micros(span.max(Duration::from_secs(60).as_micros()))
            })
            .unwrap_or(Duration::from_secs(60));
        let project =
            ProjectOp::new(final_project.iter().map(|&i| crate::expr::Expr::col(i)).collect());
        for row in rows {
            let group_tag: String = row.values()[..group_len.min(row.values().len())]
                .iter()
                .map(|v| v.partition_string())
                .collect::<Vec<_>>()
                .join("\u{1f}");
            let resource = format!("{window}:{group_tag}");
            let projected = project.apply_one(&row);
            let mut values = Vec::with_capacity(projected.values().len() + 1);
            values.push(Value::Int(window as i64));
            values.extend(projected.values().iter().cloned());
            let key = ResourceKey::new(namespace.clone(), resource.clone(), stable_hash(&resource));
            let payload = PierPayload::Tuple(Tuple::new(values));
            self.note_payload(&payload);
            let sent = self.dht.put(ctx, key, payload, Some(ttl));
            self.stats.messages_sent += sent as u64;
            self.stats.alerts_emitted += 1;
            if let Some(q) = self.queries.get_mut(&spec.id) {
                q.trace.alerts_emitted += 1;
            }
        }
    }

    /// The DHT namespace a windowed query's `HAVING` trigger publishes
    /// alert tuples into.  Any node can subscribe by submitting an
    /// algebraic continuous [`QueryKind::Select`] over it; each alert row
    /// is `(window, …the query's select list…)`.
    pub fn alert_namespace(query: QueryId) -> String {
        format!("pier:alert:{query}")
    }

    // ------------------------------------------------------------------
    // Joins
    // ------------------------------------------------------------------

    /// Rehash one side of a join stage into the stage's DHT namespace.  The
    /// join key is evaluated over the full input tuple, then only
    /// `ship_cols` ship (join-side projection pushdown).  With the
    /// time-based flush on (`batch_flush_ticks > 0`), batched rehashes of
    /// every side buffer across engine ticks, so concurrent queries'
    /// rehash traffic meets in one flush window.
    #[allow(clippy::too_many_arguments)]
    fn rehash_stage(
        &mut self,
        ctx: &mut Ctx<'_>,
        spec: &QuerySpec,
        stage: u8,
        epoch: u64,
        side: u8,
        key_expr: &crate::expr::Expr,
        ship_cols: Option<&[usize]>,
        rows: Vec<Tuple>,
    ) {
        let namespace = join_namespace(spec.id, stage);
        let narrow = |row: &Tuple| match ship_cols {
            Some(cols) => row.project(cols),
            None => row.clone(),
        };
        // Vectorized: one kernel evaluation over the whole input batch
        // computes every row's join key (the stage's key kernel is compiled
        // once per spec and cached on the query).
        let keys: Vec<Value> = if self.config.vectorized && rows.len() > 1 {
            let kern = self.query_kernels(spec.id);
            match kern.as_deref().and_then(|c| c.stage_key(stage as usize, side)) {
                Some(k) => {
                    let batch = ColumnarBatch::from_rows(&rows);
                    let col = k.eval(&batch, &batch.full_selection());
                    (0..rows.len()).map(|j| col.value_at(j)).collect()
                }
                None => rows.iter().map(|r| key_expr.eval(r)).collect(),
            }
        } else {
            rows.iter().map(|r| key_expr.eval(r)).collect()
        };
        if !self.config.batching {
            for (row, key) in rows.iter().zip(keys) {
                if key.is_null() {
                    continue;
                }
                self.stats.join_tuples_sent += 1;
                let payload = PierPayload::JoinTuple {
                    query: spec.id,
                    stage,
                    epoch,
                    side,
                    key: key.clone(),
                    tuple: narrow(row),
                };
                self.note_query_payload(spec.id, &payload);
                if let Some(q) = self.queries.get_mut(&spec.id) {
                    q.trace.tuples_shipped += 1;
                    *q.trace.stage_shipped.entry(stage).or_insert(0) += 1;
                }
                let sent = self.dht.send_to_key(
                    ctx,
                    ResourceKey::singleton(namespace.clone(), key.partition_string()),
                    payload,
                );
                self.add_query_msgs(spec.id, sent as u64);
                if side == 1 {
                    if let Some(q) = self.queries.get_mut(&spec.id) {
                        *q.trace.stage_rehash_msgs.entry(stage).or_insert(0) += sent as u64;
                    }
                }
            }
            return;
        }
        let pairs: Vec<(Value, Tuple)> = rows
            .iter()
            .zip(keys)
            .filter_map(|(row, key)| {
                if key.is_null() {
                    return None;
                }
                Some((key, narrow(row)))
            })
            .collect();
        if self.config.batch_flush_ticks > 0 {
            // Buffer across ticks; the shared flush cadence (or the
            // hold-down deadline timer) ships it.
            let bufkey = (spec.id, stage, epoch, side);
            let buf = match self.pending_rehash.iter_mut().find(|(k, _)| *k == bufkey) {
                Some((_, buf)) => buf,
                None => {
                    self.pending_rehash.push((bufkey, Vec::new()));
                    &mut self.pending_rehash.last_mut().expect("just pushed").1
                }
            };
            buf.extend(pairs);
            if buf.len() >= self.config.batch_max.max(1) {
                self.force_flush(ctx);
            }
            return;
        }
        self.send_rehash(ctx, spec.id, stage, epoch, side, namespace, pairs);
    }

    /// Ship pre-keyed rehash tuples: coalesce per join-key value — every
    /// tuple with the same key value travels to the same site, so one
    /// `JoinBatch` per (destination, query, stage, epoch) replaces one
    /// message per tuple.
    #[allow(clippy::too_many_arguments)]
    fn send_rehash(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: QueryId,
        stage: u8,
        epoch: u64,
        side: u8,
        namespace: String,
        pairs: Vec<(Value, Tuple)>,
    ) {
        let groups = group_by_key(pairs);
        let mut items = Vec::new();
        let mut shipped = 0u64;
        for (key, group) in groups {
            let resource = ResourceKey::singleton(namespace.clone(), key.partition_string());
            for chunk in group.chunks(self.config.batch_max.max(1)) {
                self.stats.join_tuples_sent += chunk.len() as u64;
                shipped += chunk.len() as u64;
                let payload = if chunk.len() == 1 {
                    PierPayload::JoinTuple {
                        query: id,
                        stage,
                        epoch,
                        side,
                        key: key.clone(),
                        tuple: chunk[0].clone(),
                    }
                } else {
                    PierPayload::JoinBatch {
                        query: id,
                        stage,
                        epoch,
                        side,
                        key: key.clone(),
                        tuples: TupleBlock::new(chunk.to_vec(), self.config.columnar_wire),
                    }
                };
                self.note_query_payload(id, &payload);
                items.push((resource.clone(), payload));
            }
        }
        if let Some(q) = self.queries.get_mut(&id) {
            q.trace.tuples_shipped += shipped;
            *q.trace.stage_shipped.entry(stage).or_insert(0) += shipped;
        }
        let sent = self.dht.send_to_key_batch(ctx, items);
        self.add_query_msgs(id, sent as u64);
        if side == 1 {
            // Right-relation rehash wire messages per stage: the numerator of
            // the inner-stage Bloom win (`EXPLAIN ANALYZE` renders the rate).
            if let Some(q) = self.queries.get_mut(&id) {
                *q.trace.stage_rehash_msgs.entry(stage).or_insert(0) += sent as u64;
            }
        }
    }

    /// Issue one Fetch-Matches DHT probe per input tuple against a stage's
    /// (join-key-partitioned) right table.  The tuples never leave this
    /// node; probe answers continue in [`on_get_result`](Self::on_get_result).
    #[allow(clippy::too_many_arguments)]
    fn probe_stage(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: QueryId,
        stage: u8,
        epoch: u64,
        left_key: &crate::expr::Expr,
        right_table: &str,
        rows: Vec<Tuple>,
    ) {
        let mut probes = 0u64;
        for row in rows {
            let key = left_key.eval(&row);
            if key.is_null() {
                continue;
            }
            let req = self
                .dht
                .get(ctx, ResourceKey::singleton(right_table.to_string(), key.partition_string()));
            self.pending_fetch.insert(req, (id, stage, epoch, row));
            probes += 1;
        }
        if let Some(q) = self.queries.get_mut(&id) {
            q.trace.probes_sent += probes;
            *q.trace.stage_probes.entry(stage).or_insert(0) += probes;
            // Each probe carries one probing-side row into this stage.
            *q.trace.stage_left_in.entry(stage).or_insert(0) += probes;
        }
        // A probe is a routed request plus its response: two wire messages
        // the engine initiates.  Counting them keeps Fetch-Matches honest in
        // the message counters the cost model optimizes (a probe's
        // FETCH_PROBE_COST is priced against exactly this traffic).
        if probes > 0 {
            self.add_query_msgs(id, probes * 2);
        }
    }

    /// Continue with a stage's matched (post-filtered) concat rows: the
    /// final stage projects and streams results to the origin; inner stages
    /// narrow to their `out_cols` and hand the intermediates to the next
    /// stage — rehashed by that stage's key into its namespace, or probed
    /// directly when the next stage runs Fetch-Matches.
    fn emit_stage_rows(
        &mut self,
        ctx: &mut Ctx<'_>,
        spec: &QuerySpec,
        stage: u8,
        epoch: u64,
        rows: Vec<Tuple>,
    ) {
        let QueryKind::Join { stages, project, aggregate, .. } = &spec.kind else { return };
        self.stats.join_matches += rows.len() as u64;
        if let Some(q) = self.queries.get_mut(&spec.id) {
            q.trace.join_matches += rows.len() as u64;
            *q.trace.stage_matches.entry(stage).or_insert(0) += rows.len() as u64;
        }
        let terminal =
            stages[stage as usize].out_to.is_none() && stage as usize + 1 == stages.len();
        if terminal {
            // An aggregate terminating the chain: fold this node's matched
            // rows into a per-(query, epoch) partial state and hand it to
            // the hierarchical aggregation plane — partials climb toward the
            // aggregation root, combining at every hop, instead of raw rows
            // streaming to the origin.  The raw-row baseline
            // (`hierarchical: false`) falls through to the streaming path
            // below; the origin aggregates there.
            if let Some(agg) = aggregate {
                if agg.hierarchical {
                    if rows.is_empty() {
                        return;
                    }
                    let mut acc = GroupAggregator::new(agg.group_exprs.clone(), agg.aggs.clone());
                    if self.config.vectorized {
                        let batch = ColumnarBatch::from_rows(&rows);
                        acc.update_batch(&batch, &batch.full_selection());
                    } else {
                        for row in &rows {
                            acc.update(row);
                        }
                    }
                    let partials = acc.take_partials();
                    // A node counts itself as a contributor once per epoch,
                    // however many final-stage batches it produces.
                    let contributors = self
                        .queries
                        .get_mut(&spec.id)
                        .map(|q| u64::from(q.agg_contributed.insert(epoch)))
                        .unwrap_or(0);
                    self.absorb_partials(ctx, spec.id, epoch, partials, contributors, false);
                    return;
                }
            }
            let project_op = ProjectOp::new(project.clone());
            for row in rows {
                let out = project_op.apply_one(&row);
                self.send_result(ctx, spec, epoch, out);
            }
            return;
        }
        // DAG routing: a stage's output goes where its `out_to` edge points
        // (a bushy subchain tail feeds the merge stage's declared side); the
        // chain default is the next stage's probing side.
        let st = &stages[stage as usize];
        let (tk, tside) = st.out_to.unwrap_or((stage + 1, 0));
        let next = &stages[tk as usize];
        let outs: Vec<Tuple> = rows.iter().map(|r| r.project(&st.out_cols)).collect();
        if tside == 1 {
            // Feeding a merge stage's build side: rehash by the target's
            // right key so both subchains' outputs meet at the same sites.
            let right_key = next.right_key.clone();
            let ship = next.right_ship_cols.clone();
            self.rehash_stage(ctx, spec, tk, epoch, 1, &right_key, Some(&ship), outs);
            return;
        }
        match next.strategy {
            JoinStrategy::FetchMatches => {
                let left_key = next.left_key.clone();
                let right_table = next.right_table.clone();
                self.probe_stage(ctx, spec.id, tk, epoch, &left_key, &right_table, outs);
            }
            _ => {
                let left_key = next.left_key.clone();
                let ship = next.left_ship_cols.clone();
                self.rehash_stage(ctx, spec, tk, epoch, 0, &left_key, Some(&ship), outs);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_join_tuples(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: QueryId,
        stage: u8,
        epoch: u64,
        side: u8,
        key: Value,
        tuples: Vec<Tuple>,
    ) {
        let Some(q) = self.queries.get(&id) else { return };
        let spec = q.spec.clone();
        let Some(st) = spec.kind.join_stages().and_then(|s| s.get(stage as usize)) else {
            return;
        };
        // Tuples produced under a superseded spec (mid-flight re-planning
        // briefly mixes layouts across nodes) may not match this stage's
        // column layout; drop them rather than join garbage.  The same
        // guard applies below to tuples *stored* before this node swapped
        // specs — the hash tables are never purged on a swap.
        let expect = if side == 0 { st.left_ship_cols.len() } else { st.right_ship_cols.len() };
        let other_expect =
            if side == 0 { st.right_ship_cols.len() } else { st.left_ship_cols.len() };
        let tuples: Vec<Tuple> = tuples.into_iter().filter(|t| t.arity() == expect).collect();
        if tuples.is_empty() {
            return;
        }
        // Receiver-side input cardinalities feed the trace-fed cost model:
        // counting here (post arity filter) observes exactly the rows the
        // join consumed, wherever in the DAG they came from.
        if let Some(q) = self.queries.get_mut(&id) {
            let per_side =
                if side == 0 { &mut q.trace.stage_left_in } else { &mut q.trace.stage_right_in };
            *per_side.entry(stage).or_insert(0) += tuples.len() as u64;
        }

        // Inner-stage Bloom phase 1: every intermediate key that reaches
        // this join site makes the stage's summary (the batch shares one
        // key, so this is one filter insertion per delivery).
        if side == 0 && stage > 0 && st.inner_bloom && self.config.inner_bloom {
            let suggested = st.bloom_bits;
            self.note_inner_key(ctx, id, stage, epoch, suggested, &key);
        }

        let outputs: Vec<Tuple> = if self.config.vectorized {
            // Vectorized build/probe: the batch pivots into the stage's
            // columnar build side once, and the probe runs as a single-pass
            // kernel over the other side's stored chunks — no per-row
            // `Value` clones, no per-tuple hash lookups.  Output order
            // matches the scalar path exactly (incoming-major over stored
            // rows in arrival order).
            let kern = self.query_kernels(id);
            let post = kern
                .as_deref()
                .and_then(|c| c.stages.get(stage as usize))
                .and_then(|s| s.post.as_ref());
            let Some(q) = self.queries.get_mut(&id) else { return };
            let build = q.vec_join.entry((stage, epoch)).or_default();
            let incoming = build.insert(side as usize, &key, &tuples);
            probe_joined(
                &incoming,
                side,
                build.matches(1 - side as usize, &key),
                other_expect,
                post,
            )
        } else {
            // Scalar reference path: store the whole batch, then probe the
            // other side once per arrival (matches already stored locally
            // pair with every incoming tuple, exactly as a sequence of
            // single-tuple deliveries would).
            let Some(q) = self.queries.get_mut(&id) else { return };
            let matches: Vec<Tuple> = if side == 0 {
                q.join_left
                    .entry((stage, epoch, key.clone()))
                    .or_default()
                    .extend(tuples.iter().cloned());
                q.join_right.get(&(stage, epoch, key)).cloned().unwrap_or_default()
            } else {
                q.join_right
                    .entry((stage, epoch, key.clone()))
                    .or_default()
                    .extend(tuples.iter().cloned());
                q.join_left.get(&(stage, epoch, key)).cloned().unwrap_or_default()
            };

            let filter_op = st.post_filter.clone().map(FilterOp::new);
            let mut outputs = Vec::new();
            for tuple in &tuples {
                for m in matches.iter().filter(|m| m.arity() == other_expect) {
                    let joined = if side == 0 { tuple.concat(m) } else { m.concat(tuple) };
                    if filter_op.as_ref().map(|f| f.accepts(&joined)).unwrap_or(true) {
                        outputs.push(joined);
                    }
                }
            }
            outputs
        };
        self.emit_stage_rows(ctx, &spec, stage, epoch, outputs);
        self.process_upcalls(ctx);
    }

    fn on_get_result(
        &mut self,
        ctx: &mut Ctx<'_>,
        req_id: u64,
        items: Vec<(ResourceKey, PierPayload)>,
    ) {
        let Some((id, stage, epoch, left_tuple)) = self.pending_fetch.remove(&req_id) else {
            return;
        };
        let Some(q) = self.queries.get(&id) else { return };
        let spec = q.spec.clone();
        let Some(st) = spec.kind.join_stages().and_then(|s| s.get(stage as usize)) else {
            return;
        };
        let probe_key = st.left_key.eval(&left_tuple);
        let right_filter_op = st.right_filter.clone().map(FilterOp::new);
        let filter_op = st.post_filter.clone().map(FilterOp::new);
        let mut outputs = Vec::new();
        let mut right_in = 0u64;
        for (_, payload) in items {
            for right_tuple in payload.tuples() {
                if !st.right_key.eval(right_tuple).sql_eq(&probe_key) {
                    continue;
                }
                if !right_filter_op.as_ref().map(|f| f.accepts(right_tuple)).unwrap_or(true) {
                    continue;
                }
                right_in += 1;
                let joined = left_tuple.concat(right_tuple);
                if filter_op.as_ref().map(|f| f.accepts(&joined)).unwrap_or(true) {
                    outputs.push(joined);
                }
            }
        }
        if right_in > 0 {
            if let Some(q) = self.queries.get_mut(&id) {
                *q.trace.stage_right_in.entry(stage).or_insert(0) += right_in;
            }
        }
        self.emit_stage_rows(ctx, &spec, stage, epoch, outputs);
        self.process_upcalls(ctx);
    }

    /// Origin side of both Bloom handshakes (stage 0 and inner stages):
    /// union per-node summaries per (stage, epoch) and arm the combine
    /// deadline on the first arrival.
    fn on_bloom_summary(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: QueryId,
        stage: u8,
        epoch: u64,
        bits: Vec<u64>,
        k: u8,
    ) {
        let arm = {
            let Some(q) = self.queries.get_mut(&id) else { return };
            let incoming = BloomFilter::from_words(bits, k);
            q.blooms.entry((stage, epoch)).and_modify(|b| b.union(&incoming)).or_insert(incoming);
            q.bloom_armed.insert((stage, epoch))
        };
        if arm {
            let delay = self.config.bloom_collect_delay;
            self.arm_timer(ctx, delay, TimerPurpose::BloomPhase2(id, stage, epoch));
        }
    }

    fn broadcast_combined_bloom(&mut self, ctx: &mut Ctx<'_>, id: QueryId, stage: u8, epoch: u64) {
        let Some(q) = self.queries.get_mut(&id) else { return };
        q.bloom_armed.remove(&(stage, epoch));
        let (bits, k) = if stage == 0 {
            // Stage 0 summarizes complete local scans, so one broadcast per
            // epoch suffices; consume the collection.
            let Some(filter) = q.blooms.remove(&(stage, epoch)) else { return };
            filter.to_words()
        } else {
            // Inner stages summarize *streamed* intermediates: keep the
            // collection accumulating so supplementary summaries (late keys
            // reopen a join site's filter) re-broadcast a grown filter, and
            // suppress re-broadcasts that add no new bits.
            let Some(filter) = q.blooms.get(&(stage, epoch)) else { return };
            let words = filter.to_words();
            if q.bloom_sent.get(&(stage, epoch)) == Some(&words) {
                return;
            }
            q.bloom_sent.insert((stage, epoch), words.clone());
            words
        };
        self.dht.broadcast(
            ctx,
            PierPayload::Bloom { query: id, stage, epoch, bits, k, combined: true },
        );
        self.process_upcalls(ctx);
    }

    /// The per-stage Bloom geometry: a planner suggestion of 0 means "no
    /// statistics", which falls back to the configured default; anything
    /// else is clamped to the configured bounds.
    fn clamped_bloom_bits(&self, suggested: u32) -> usize {
        if suggested == 0 {
            self.config.bloom_bits
        } else {
            (suggested as usize).clamp(self.config.bloom_bits_min, self.config.bloom_bits_max)
        }
    }

    /// Fold one intermediate key into this join site's inner-stage Bloom
    /// summary, creating it (and arming its quiescence timer) on first use.
    fn note_inner_key(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: QueryId,
        stage: u8,
        epoch: u64,
        suggested_bits: u32,
        key: &Value,
    ) {
        if key.is_null() {
            return;
        }
        let now = ctx.now();
        let bits = self.clamped_bloom_bits(suggested_bits);
        let mut arm = false;
        {
            let Some(q) = self.queries.get_mut(&id) else { return };
            let entry = q.inner_summaries.entry((stage, epoch)).or_insert_with(|| {
                arm = true;
                InnerSummary {
                    filter: BloomFilter::new(bits, 4),
                    last_update: now,
                    extensions: 0,
                    shipped: false,
                }
            });
            if entry.shipped {
                if entry.filter.may_contain(key) {
                    // Already covered (or a false positive, which passes scan
                    // sites anyway); nothing to refresh.
                    return;
                }
                // A key the shipped summary missed: reopen the handshake.
                // The cumulative filter re-ships after a fresh quiescence
                // window, the origin re-broadcasts the grown combination,
                // and scan sites re-test their held rows — so no match is
                // ever lost to summary timing, only delayed.
                entry.shipped = false;
                entry.extensions = 0;
                arm = true;
            }
            entry.filter.insert(key);
            entry.last_update = now;
        }
        if arm {
            let delay = self.config.holddown.saturating_mul(3);
            self.arm_timer(ctx, delay, TimerPurpose::InnerBloomSummary(id, stage, epoch));
        }
    }

    /// Quiescence-gated phase-1 ship of an inner-stage summary: postpone
    /// while intermediates are still arriving, then send the filter to the
    /// origin on the same counters as any query-path payload.
    fn ship_inner_summary(&mut self, ctx: &mut Ctx<'_>, id: QueryId, stage: u8, epoch: u64) {
        let quiet_after = self.config.holddown.saturating_mul(3);
        let shipped = {
            let Some(q) = self.queries.get_mut(&id) else { return };
            let Some(entry) = q.inner_summaries.get_mut(&(stage, epoch)) else { return };
            if entry.shipped {
                return;
            }
            let quiet = ctx.now().saturating_since(entry.last_update) >= quiet_after;
            if !quiet && entry.extensions < 8 {
                entry.extensions += 1;
                None
            } else {
                entry.shipped = true;
                Some(entry.filter.to_words())
            }
        };
        match shipped {
            None => {
                self.arm_timer(ctx, quiet_after, TimerPurpose::InnerBloomSummary(id, stage, epoch));
            }
            Some((bits, k)) => {
                let origin = id.origin();
                let payload =
                    PierPayload::Bloom { query: id, stage, epoch, bits, k, combined: false };
                self.note_query_send(id, &payload);
                self.dht.send_direct(ctx, origin, payload);
                self.process_upcalls(ctx);
            }
        }
    }

    /// Phase 2 of an inner-stage Bloom semi-join at a right-relation scan
    /// site: rehash the stage's right table, pruned through the combined
    /// filter — or unfiltered when the hold-down deadline fired first
    /// (`filter == None`).  Whichever trigger runs first wins; the other is
    /// a no-op.
    fn run_inner_phase2(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: QueryId,
        stage: u8,
        epoch: u64,
        filter: Option<&BloomFilter>,
    ) {
        let first = {
            let Some(q) = self.queries.get_mut(&id) else { return };
            q.bloom_phase2_done.insert((stage, epoch))
        };
        let spec = self.queries[&id].spec.clone();
        let Some(st) = spec.kind.join_stages().and_then(|s| s.get(stage as usize)).cloned() else {
            return;
        };
        // A mid-flight re-plan may have swapped strategies; only a
        // symmetric-hash stage knows how to consume this rehash.
        if st.strategy != JoinStrategy::SymmetricHash {
            return;
        }
        if !first {
            // Refresh: a re-broadcast combined filter (grown by late
            // intermediate keys) re-tests only the rows the previous filter
            // pruned.  A hold-down fallback firing after a completed phase 2
            // is a no-op — held rows were pruned by a filter that only ever
            // grows, so they are not owed to anyone until a refresh passes
            // them.
            let Some(f) = filter else { return };
            let held =
                match self.queries.get_mut(&id).and_then(|q| q.held_rows.remove(&(stage, epoch))) {
                    Some(rows) if !rows.is_empty() => rows,
                    _ => return,
                };
            let (pass, keep): (Vec<Tuple>, Vec<Tuple>) =
                held.into_iter().partition(|r| f.may_contain(&st.right_key.eval(r)));
            let tested = (pass.len() + keep.len()) as u64;
            self.stats.bloom_tested += tested;
            self.stats.bloom_passed += pass.len() as u64;
            if let Some(q) = self.queries.get_mut(&id) {
                *q.trace.stage_bloom_tested.entry(stage).or_insert(0) += tested;
                *q.trace.stage_bloom_passed.entry(stage).or_insert(0) += pass.len() as u64;
                if !keep.is_empty() {
                    q.held_rows.insert((stage, epoch), keep);
                }
            }
            if pass.is_empty() {
                return;
            }
            self.rehash_stage(
                ctx,
                &spec,
                stage,
                epoch,
                1,
                &st.right_key,
                Some(&st.right_ship_cols),
                pass,
            );
            self.process_upcalls(ctx);
            return;
        }
        let now = ctx.now();
        let since = scan_since(&spec, now);
        let kern = self.query_kernels(id);
        let rows = self.scan_filtered_traced(
            id,
            &st.right_table,
            now,
            since,
            &st.right_filter,
            kern.as_deref()
                .and_then(|c| c.stages.get(stage as usize).and_then(|s| s.right_filter.as_ref())),
        );
        let survivors: Vec<Tuple> = match filter {
            Some(f) => {
                // Null keys cannot equi-join anywhere; drop them outright.
                // Pruned (non-passing) rows are *held*, not discarded: a
                // refreshed combined filter re-tests them.
                let mut keep = Vec::new();
                let mut held = Vec::new();
                for r in rows {
                    let k = st.right_key.eval(&r);
                    if k.is_null() {
                        continue;
                    }
                    if f.may_contain(&k) {
                        keep.push(r);
                    } else {
                        held.push(r);
                    }
                }
                let tested = (keep.len() + held.len()) as u64;
                let passed = keep.len() as u64;
                self.stats.bloom_tested += tested;
                self.stats.bloom_passed += passed;
                if let Some(q) = self.queries.get_mut(&id) {
                    *q.trace.stage_bloom_tested.entry(stage).or_insert(0) += tested;
                    *q.trace.stage_bloom_passed.entry(stage).or_insert(0) += passed;
                    if !held.is_empty() {
                        q.held_rows.insert((stage, epoch), held);
                    }
                }
                keep
            }
            None => {
                // Hold-down fallback: the combined filter never arrived in
                // time.  Ship unfiltered — more traffic, identical results.
                self.stats.bloom_fallbacks += 1;
                if let Some(q) = self.queries.get_mut(&id) {
                    q.trace.bloom_fallbacks += 1;
                }
                rows
            }
        };
        self.rehash_stage(
            ctx,
            &spec,
            stage,
            epoch,
            1,
            &st.right_key,
            Some(&st.right_ship_cols),
            survivors,
        );
        self.process_upcalls(ctx);
    }

    fn run_bloom_phase2(&mut self, ctx: &mut Ctx<'_>, id: QueryId, epoch: u64) {
        let Some(q) = self.queries.get(&id) else { return };
        let spec = q.spec.clone();
        // The Bloom protocol only ever runs at stage 0, whose two sides are
        // base tables (later stages' left inputs are streamed intermediates
        // that cannot wait for a filter phase).
        let Some(st) = spec.kind.join_stages().map(|s| s[0].clone()) else { return };
        if st.strategy != JoinStrategy::BloomFilter {
            return;
        }
        let Some(filter) = self.queries[&id].combined_bloom.get(&(0, epoch)).cloned() else {
            return;
        };
        let now = ctx.now();
        let since = scan_since(&spec, now);
        let kern = self.query_kernels(id);
        let rows = self.scan_filtered_traced(
            id,
            &st.right_table,
            now,
            since,
            &st.right_filter,
            kern.as_deref().and_then(|c| c.stages.first().and_then(|s| s.right_filter.as_ref())),
        );
        let mut tested = 0u64;
        let survivors: Vec<Tuple> = rows
            .into_iter()
            .filter(|r| {
                let k = st.right_key.eval(r);
                if k.is_null() {
                    return false;
                }
                tested += 1;
                filter.may_contain(&k)
            })
            .collect();
        self.stats.bloom_tested += tested;
        self.stats.bloom_passed += survivors.len() as u64;
        if let Some(q) = self.queries.get_mut(&id) {
            *q.trace.stage_bloom_tested.entry(0).or_insert(0) += tested;
            *q.trace.stage_bloom_passed.entry(0).or_insert(0) += survivors.len() as u64;
        }
        self.rehash_stage(
            ctx,
            &spec,
            0,
            epoch,
            1,
            &st.right_key,
            Some(&st.right_ship_cols),
            survivors,
        );
        self.process_upcalls(ctx);
    }

    // ------------------------------------------------------------------
    // Automatic statistics & mid-flight re-planning
    // ------------------------------------------------------------------

    /// One anti-entropy round: summarize the live soft state this node stores
    /// for every cataloged table, fold the totals into the local catalog, and
    /// push the whole epoch-stamped view to ring neighbours.
    fn stats_gossip_round(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let tables: Vec<String> =
            self.catalog.table_names().iter().map(|s| s.to_string()).collect();
        let mut summaries = Vec::with_capacity(tables.len());
        for table in tables {
            let (rows, distinct_keys) =
                self.dht.namespace_summary(&table, now, |p| p.tuples().len() as u64);
            summaries.push(TableSummary { table, rows, distinct_keys });
        }
        // Seed the sequence from virtual time so a restarted node (fresh
        // state, same address) immediately outranks its own pre-crash
        // entries in every peer's view instead of being rejected as stale
        // until its counter catches up.
        self.gossip_seq = self.gossip_seq.max(now.as_micros()) + 1;
        self.gossip.update_self(self.addr, self.gossip_seq, summaries, now.as_micros());
        // Gossip entry expiry: a node whose summaries stopped refreshing for
        // `stats_ttl_intervals` gossip rounds is permanently gone (restarts
        // re-enter with fresher time-seeded sequence numbers) — evict it so
        // it stops inflating the network-wide totals.
        let ttl = self
            .config
            .stats_interval
            .as_micros()
            .saturating_mul(self.config.stats_ttl_intervals as u64);
        self.gossip.expire(now.as_micros(), ttl);
        let totals = self.gossip.totals();
        apply_totals(&mut self.catalog, &totals);

        // Push to the predecessor plus the first `stats_fanout` live
        // successors, so views spread both ways around the ring.
        let mut peers: Vec<NodeAddr> = Vec::new();
        if let Some(p) = self.dht.predecessor() {
            peers.push(p.addr);
        }
        for s in self.dht.successor_list().iter().take(self.config.stats_fanout.max(1)) {
            peers.push(s.addr);
        }
        peers.retain(|&a| a != self.addr);
        // In tiny rings the predecessor reappears in the successor list, and
        // the duplicates are not adjacent: sort before deduplicating.
        peers.sort_unstable_by_key(|a| a.0);
        peers.dedup();
        let entries = self.gossip.wire_entries();
        for peer in peers {
            self.stats.stats_gossip_sent += 1;
            let payload = PierPayload::StatsGossip { entries: entries.clone() };
            if self.config.piggyback {
                if self.config.batching && self.config.batch_flush_ticks > 0 {
                    // Deferred-flush mode: hold the gossip across the same
                    // window the RouteBatch/result buffers span, so it rides
                    // the next forced flush's shared frames instead of
                    // shipping in its own tick.  The deadline timer bounds
                    // how stale a held view can get on a quiescent node.
                    self.pending_gossip.push((peer, payload));
                    self.stats.gossip_deferred += 1;
                    if !self.flush_timer_armed {
                        self.flush_timer_armed = true;
                        let delay = self.config.holddown;
                        self.arm_timer(ctx, delay, TimerPurpose::BatchFlush);
                    }
                } else {
                    // Pending gossip rides whatever query frame shares the
                    // destination at the tick drain — near-zero marginal cost.
                    self.pending_direct.push((peer, DirectStream::Gossip, payload));
                }
            } else {
                self.dht.send_direct(ctx, peer, payload);
            }
        }
        self.process_upcalls(ctx);
    }

    /// Re-plan a continuous SQL query this node originated against the
    /// current catalog.  Called at every epoch boundary; a no-op unless the
    /// catalog version moved since the last planning.  When the cost ranking
    /// flips the physical plan, the updated spec is applied locally (we *are*
    /// at an epoch boundary) and re-disseminated so every other node swaps at
    /// its own next boundary.
    fn maybe_replan(&mut self, ctx: &mut Ctx<'_>, id: QueryId) {
        if !self.config.adaptive {
            return;
        }
        let Some((sql, planned_version)) = self.origin_sql.get(&id).cloned() else { return };
        let version = self.catalog.version();
        if version == planned_version {
            return;
        }
        let Ok(stmt) = parse_select(&sql) else { return };
        // Once the feedback loop has corrected this query, catalog-driven
        // re-plans keep the observed overlay: gossip moving the catalog must
        // not silently revert a trace-corrected order to catalog-only costs.
        let observed = self.queries.get(&id).and_then(|q| q.observed.clone());
        let mut planner = Planner::new(&self.catalog);
        if let Some(obs) = observed.as_ref() {
            planner = planner.observed(obs).allow_bushy();
        }
        let Ok(planned) = planner.plan_select(&stmt) else { return };
        self.origin_sql.insert(id, (sql, version));
        let changed = match self.queries.get_mut(&id) {
            Some(q) if q.spec.kind != planned.kind => {
                q.pending_spec = Some(QuerySpec {
                    id,
                    kind: planned.kind,
                    output_names: planned.output_names,
                    continuous: q.spec.continuous,
                });
                true
            }
            _ => false,
        };
        if changed {
            // The origin applies the staged spec in the epoch evaluation that
            // follows this call; other nodes apply it at their next epoch.
            let spec = self.queries[&id].pending_spec.clone().expect("pending spec staged above");
            self.dht.broadcast(ctx, PierPayload::Query(spec));
            self.process_upcalls(ctx);
        }
    }

    /// One step of the trace-fed feedback loop, run by the origin of a
    /// continuous multi-way join at each epoch boundary (behind
    /// [`PierConfig::feedback`]).  Two phases, one epoch apart: after the
    /// query has run long enough to have meaningful counters, broadcast a
    /// trace request; at the following boundary, fold the merged network-wide
    /// trace into [`ObservedStats`](crate::planner::ObservedStats) and
    /// re-plan with them overriding the catalog estimates.  One-shot per
    /// query: the corrected plan sticks (and later catalog-driven re-plans
    /// keep the overlay via [`PierNode::maybe_replan`]).
    fn feedback_step(&mut self, ctx: &mut Ctx<'_>, id: QueryId) {
        let Some(q) = self.queries.get(&id) else { return };
        if q.feedback_settled || !self.origin_sql.contains_key(&id) {
            return;
        }
        let stages = q.spec.kind.join_stages().map(|s| s.len()).unwrap_or(0);
        if stages < 2 {
            // Single-stage joins have no order to correct.
            return;
        }
        if q.feedback_requested {
            self.feedback_replan(ctx, id);
        } else if q.epoch >= 2 {
            if let Some(q) = self.queries.get_mut(&id) {
                q.feedback_requested = true;
            }
            self.request_traces(ctx, id);
        }
    }

    /// Phase 2 of the feedback loop: turn the collected trace into observed
    /// statistics and re-plan the query with them.  If the corrected costs
    /// change the physical plan, the new spec is staged exactly like a
    /// catalog-driven re-plan (applied at each node's next epoch boundary)
    /// and the plan cache entry for the SQL text is dropped so future
    /// identical submissions re-cost from scratch.
    fn feedback_replan(&mut self, ctx: &mut Ctx<'_>, id: QueryId) {
        let Some((sql, _)) = self.origin_sql.get(&id).cloned() else { return };
        let Some((_, trace)) = self.trace_acc.get(&id) else { return };
        let trace = trace.clone();
        let Some(q) = self.queries.get_mut(&id) else { return };
        q.feedback_requested = false;
        q.feedback_settled = true;
        // The absolute epoch about to be evaluated — the one the corrected
        // spec first applies in at the origin (results are keyed by it).
        let epoch = match &q.spec.continuous {
            Some(c) => continuous_epoch(ctx.now(), c),
            None => 0,
        };
        let obs = fold_observed(&q.spec, q.epoch.max(1), &trace);
        if obs.is_empty() {
            return;
        }
        q.observed = Some(obs.clone());
        let Ok(stmt) = parse_select(&sql) else { return };
        let Ok(planned) =
            Planner::new(&self.catalog).observed(&obs).allow_bushy().plan_select(&stmt)
        else {
            return;
        };
        let version = self.catalog.version();
        self.origin_sql.insert(id, (sql.clone(), version));
        let changed = match self.queries.get_mut(&id) {
            Some(q) if q.spec.kind != planned.kind => {
                let old = strategy_label(&q.spec.kind);
                let new = strategy_label(&planned.kind);
                q.trace
                    .switches
                    .push(format!("epoch {epoch}: feedback: trace-corrected {old} -> {new}"));
                q.pending_spec = Some(QuerySpec {
                    id,
                    kind: planned.kind,
                    output_names: planned.output_names,
                    continuous: q.spec.continuous,
                });
                true
            }
            _ => false,
        };
        if changed {
            // The cached plan was produced from catalog-only estimates the
            // engine now knows to be wrong for this statement.
            self.plan_cache.invalidate(&sql);
            self.stats.feedback_replans += 1;
            let spec = self.queries[&id].pending_spec.clone().expect("pending spec staged above");
            self.dht.broadcast(ctx, PierPayload::Query(spec));
            self.process_upcalls(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Recursive queries
    // ------------------------------------------------------------------

    fn seed_recursive(&mut self, ctx: &mut Ctx<'_>, id: QueryId) {
        let Some(q) = self.queries.get(&id) else { return };
        let QueryKind::Recursive { edges_table, source, .. } = &q.spec.kind else { return };
        let edges_table = edges_table.clone();
        let source = source.clone();
        self.stats.expands_sent += 1;
        if let Some(q) = self.queries.get_mut(&id) {
            q.trace.expands_sent += 1;
        }
        let resource = ResourceKey::singleton(edges_table, source.partition_string());
        let payload = PierPayload::Expand { query: id, vertex: source, depth: 0 };
        self.note_query_payload(id, &payload);
        let sent = self.dht.send_to_key(ctx, resource, payload);
        self.add_query_msgs(id, sent as u64);
        self.process_upcalls(ctx);
    }

    fn on_expand(&mut self, ctx: &mut Ctx<'_>, id: QueryId, vertex: Value, depth: u32) {
        let Some(q) = self.queries.get_mut(&id) else { return };
        let spec = q.spec.clone();
        let QueryKind::Recursive { edges_table, src_col, dst_col, max_depth, .. } = &spec.kind
        else {
            return;
        };
        if !q.visited.insert(vertex.partition_string()) {
            return;
        }
        let now = ctx.now();
        let edges_table = edges_table.clone();
        let edges = self.scan_traced(id, &edges_table, now, SimTime::ZERO);
        let epoch = 0;
        let mut to_expand = Vec::new();
        for edge in edges {
            if !edge.get(*src_col).sql_eq(&vertex) {
                continue;
            }
            let dst = edge.get(*dst_col).clone();
            let row = Tuple::new(vec![vertex.clone(), dst.clone(), Value::Int(depth as i64 + 1)]);
            self.send_result(ctx, &spec, epoch, row);
            if depth + 1 < *max_depth {
                to_expand.push(dst);
            }
        }
        for dst in to_expand {
            self.stats.expands_sent += 1;
            if let Some(q) = self.queries.get_mut(&id) {
                q.trace.expands_sent += 1;
            }
            let resource = ResourceKey::singleton(edges_table.clone(), dst.partition_string());
            let payload = PierPayload::Expand { query: id, vertex: dst, depth: depth + 1 };
            self.note_query_payload(id, &payload);
            let sent = self.dht.send_to_key(ctx, resource, payload);
            self.add_query_msgs(id, sent as u64);
        }
        self.process_upcalls(ctx);
    }
}

/// Alias to keep `absorb_partials`'s signature readable.
type AggStateVec = crate::aggregate::AggState;

/// How many closed windows' worth of state the root retains for late-data
/// patching under [`WindowLatePolicy::Patch`]; late partials for windows
/// older than this many slides behind the newest close degrade to `Drop`.
const WINDOW_PATCH_RETAIN: u64 = 4;

/// Deterministic 64-bit string hash (FNV-1a), used for alert instance keys
/// so a patched re-emission overwrites its predecessor.
fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How far back this epoch's local scans reach.  Windowed queries merge
/// per-epoch deltas into window state at the aggregation root, so each epoch
/// scans only what arrived since the previous one; plain continuous queries
/// rescan the whole trailing time window every epoch; one-shot queries scan
/// everything stored.
fn scan_since(spec: &QuerySpec, now: SimTime) -> SimTime {
    match spec.continuous {
        Some(c) if spec.kind.window_spec().is_some() => {
            SimTime::from_micros(now.as_micros().saturating_sub(c.period.as_micros()))
        }
        Some(c) => SimTime::from_micros(now.as_micros().saturating_sub(c.window.as_micros())),
        None => SimTime::ZERO,
    }
}

/// Short label of the part of a spec that re-planning can change, for the
/// trace's switch records.
fn strategy_label(kind: &QueryKind) -> String {
    match kind {
        QueryKind::Join { stages, aggregate, .. } => {
            let labels: Vec<String> = stages.iter().map(|s| format!("{:?}", s.strategy)).collect();
            let mut label = labels.join("+");
            match aggregate {
                Some(a) if a.hierarchical => label.push_str("+HierAgg"),
                Some(_) => label.push_str("+OriginAgg"),
                None => {}
            }
            label
        }
        QueryKind::Select { .. } => "Select".to_string(),
        QueryKind::Aggregate { .. } => "Aggregate".to_string(),
        QueryKind::Recursive { .. } => "Recursive".to_string(),
    }
}

/// Fold a network-wide merged execution trace into per-query observed
/// statistics the planner can substitute for catalog estimates.
///
/// The per-stage input counters are totals over `epochs` epochs, so base
/// cardinalities divide by the epoch count; a stage's join selectivity comes
/// from the standard independence model `matches = sel * left * right`
/// applied per epoch, i.e. `sel = matches_total * epochs / (left_total *
/// right_total)`.  The walk follows the stage DAG (`left_scan` roots and
/// `out_to` edges) so the left-side *placed set* of each stage — the key the
/// planner looks selectivities up under — is correct for bushy shapes too.
fn fold_observed(spec: &QuerySpec, epochs: u64, trace: &OpTrace) -> crate::planner::ObservedStats {
    use crate::planner::ObservedStats;
    let mut obs = ObservedStats::default();
    let QueryKind::Join { left_table, stages, .. } = &spec.kind else { return obs };
    let e = epochs.max(1) as f64;
    // feeder[k][side]: which earlier stage's output streams into (k, side).
    let mut feeder: Vec<[Option<usize>; 2]> = vec![[None, None]; stages.len()];
    for (i, st) in stages.iter().enumerate() {
        match st.out_to {
            Some((tk, side)) => feeder[tk as usize][side as usize] = Some(i),
            None if i + 1 < stages.len() => feeder[i + 1][0] = Some(i),
            None => {}
        }
    }
    // Tables joined by each stage's output, in DAG order (feeders always
    // precede the stages they feed).
    let mut acc: Vec<Vec<String>> = vec![Vec::new(); stages.len()];
    for (k, st) in stages.iter().enumerate() {
        let left_in = trace.stage_left_in.get(&(k as u8)).copied().unwrap_or(0) as f64;
        let right_in = trace.stage_right_in.get(&(k as u8)).copied().unwrap_or(0) as f64;
        let left_set: Vec<String> = if let Some(scan) = &st.left_scan {
            if left_in > 0.0 {
                obs.table_rows.insert(scan.table.clone(), left_in / e);
            }
            vec![scan.table.clone()]
        } else if let Some(f) = feeder[k][0] {
            acc[f].clone()
        } else {
            if left_in > 0.0 {
                obs.table_rows.insert(left_table.clone(), left_in / e);
            }
            vec![left_table.clone()]
        };
        let mut placed = left_set;
        if let Some(f) = feeder[k][1] {
            // A merge stage: its build side is another subchain's output, not
            // a base relation — no table cardinality or per-stage selectivity
            // to learn here.
            placed.extend(acc[f].iter().cloned());
        } else {
            // Only a plain symmetric-hash stage rehashes the right relation
            // in full: a Bloom-filtered side (stage-0 or inner semi-join)
            // arrives pre-filtered and a Fetch-Matches side is only ever the
            // matching tuples, so their counts would bias the model.
            let unbiased_right =
                matches!(st.strategy, JoinStrategy::SymmetricHash) && !st.inner_bloom;
            if unbiased_right {
                if right_in > 0.0 {
                    obs.table_rows.insert(st.right_table.clone(), right_in / e);
                }
                let matches = trace.stage_matches.get(&(k as u8)).copied().unwrap_or(0) as f64;
                if left_in > 0.0 && right_in > 0.0 {
                    let key = ObservedStats::placed_key(placed.iter().map(String::as_str));
                    let sel = (matches * e) / (left_in * right_in);
                    obs.stage_selectivity.insert((st.right_table.clone(), key), sel);
                }
            }
            placed.push(st.right_table.clone());
        }
        acc[k] = placed;
    }
    obs
}

/// The query-and-stage-scoped DHT namespace a join stage's tuples rehash
/// into.  Scoping by stage keeps the chain's intermediate shipments of one
/// key value from colliding across stages.
fn join_namespace(id: QueryId, stage: u8) -> String {
    format!("pier:join:{id}:{stage}")
}

/// Group `items` by key, preserving first-occurrence group order (the
/// simulator's reproducibility requires deterministic message ordering, which
/// bare HashMap iteration would break).  O(n) via an index map.
fn group_by_key<K, V>(items: impl IntoIterator<Item = (K, V)>) -> Vec<(K, Vec<V>)>
where
    K: std::hash::Hash + Eq + Clone,
{
    let mut index: HashMap<K, usize> = HashMap::new();
    let mut groups: Vec<(K, Vec<V>)> = Vec::new();
    for (key, value) in items {
        match index.get(&key) {
            Some(&i) => groups[i].1.push(value),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![value]));
            }
        }
    }
    groups
}

/// The epoch a continuous query is in at virtual time `now`.  Epochs are
/// derived from absolute virtual time (not a per-node counter) so every node —
/// including ones that joined after the query was disseminated — labels its
/// contributions consistently.
fn continuous_epoch(now: SimTime, c: &ContinuousSpec) -> u64 {
    now.as_micros() / c.period.as_micros().max(1)
}

/// Delay until shortly after the next epoch boundary.
fn epoch_align_delay(now: SimTime, c: &ContinuousSpec) -> Duration {
    let period = c.period.as_micros().max(1);
    Duration::from_micros(period - (now.as_micros() % period) + 1_000)
}

impl Node for PierNode {
    type Msg = PierMsg;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        self.dht.start(ctx);
        if self.config.auto_stats {
            let delay = self.config.stats_interval;
            self.arm_timer(ctx, delay, TimerPurpose::StatsGossip);
        }
        self.process_upcalls(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<Self::Msg>, from: NodeAddr, msg: Self::Msg) {
        self.dht.handle_message(ctx, from, msg);
        self.process_upcalls(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<Self::Msg>, token: u64) {
        if (dht_timers::TOKEN_BASE..dht_timers::TOKEN_LIMIT).contains(&token) {
            self.dht.handle_timer(ctx, token);
            self.process_upcalls(ctx);
            return;
        }
        let Some(purpose) = self.timer_purposes.remove(&token) else { return };
        match purpose {
            TimerPurpose::Epoch(id) => {
                let continuous = self.queries.get(&id).and_then(|q| q.spec.continuous);
                if let Some(c) = continuous {
                    // Mid-flight adaptivity: if the catalog moved since this
                    // query was planned, re-plan it now, at the epoch
                    // boundary, before this epoch's evaluation.
                    if id.origin() == self.addr {
                        self.maybe_replan(ctx, id);
                        if self.config.feedback {
                            self.feedback_step(ctx, id);
                        }
                    }
                    let (evaluations, spec) = {
                        let q = self.queries.get_mut(&id).expect("query exists");
                        q.epoch += 1;
                        q.epoch_started_at = ctx.now();
                        // A staged re-plan is about to take effect in this
                        // epoch's evaluation; re-disseminating the stale spec
                        // would flip remote nodes back.
                        let spec = q.pending_spec.clone().unwrap_or_else(|| q.spec.clone());
                        (q.epoch, spec)
                    };
                    // Continuous queries are soft state: the origin re-disseminates
                    // the plan every few epochs so nodes that joined (or rejoined
                    // after a failure) start participating.
                    if spec.origin() == self.addr && evaluations % 3 == 0 {
                        self.dht.broadcast(ctx, PierPayload::Query(spec));
                    }
                    self.run_epoch(ctx, id);
                    let delay = epoch_align_delay(ctx.now(), &c);
                    self.arm_timer(ctx, delay, TimerPurpose::Epoch(id));
                }
            }
            TimerPurpose::Holddown(id, epoch) => {
                self.forward_partials(ctx, id, epoch);
                self.process_upcalls(ctx);
            }
            TimerPurpose::RootFinalize(id, epoch) => self.finalize_epoch(ctx, id, epoch),
            TimerPurpose::BloomPhase2(id, stage, epoch) => {
                self.broadcast_combined_bloom(ctx, id, stage, epoch)
            }
            TimerPurpose::InnerBloomSummary(id, stage, epoch) => {
                self.ship_inner_summary(ctx, id, stage, epoch)
            }
            TimerPurpose::BloomFallback(id, stage, epoch) => {
                self.run_inner_phase2(ctx, id, stage, epoch, None)
            }
            TimerPurpose::BatchFlush => {
                self.flush_timer_armed = false;
                self.force_flush(ctx);
                self.process_upcalls(ctx);
            }
            TimerPurpose::StatsGossip => {
                self.stats_gossip_round(ctx);
                let delay = self.config.stats_interval;
                self.arm_timer(ctx, delay, TimerPurpose::StatsGossip);
            }
        }
    }
}
