//! Compact columnar wire encoding for batched payloads.
//!
//! Batched payloads (`TupleBatch` / `JoinBatch` / `ResultBatch`) carry their
//! rows in a [`TupleBlock`]: the rows themselves plus the byte size of the
//! block's *chosen wire encoding*.  The plain encoding is the classic
//! row-major layout (each tuple's values back to back); the columnar encoding
//! pivots the block into columns and picks, per column, the cheapest of
//! **plain / dictionary / run-length** — low-cardinality columns (hostnames,
//! ports, rule ids) shrink to a small dictionary plus narrow codes.
//!
//! The encoding is *real*, not an estimate: [`ColumnarWire::encode`] builds
//! the dictionary/run structures and [`ColumnarWire::decode`] reconstructs
//! the rows, and a columnar [`TupleBlock`] stores the **decoded** rows — so
//! an encoding bug surfaces as wrong query answers, not just wrong byte
//! accounting.  `wire_size` is computed from the encoded form, which keeps
//! `bytes_shipped` and the `OpTrace` counters honest (they reconcile with the
//! simulator's byte totals; see `tests/columnar_exec.rs`).

use crate::tuple::Tuple;
use crate::value::Value;
use pier_simnet::WireSize;
use std::collections::HashMap;

/// Per-column wire representation, chosen by encoded size.
#[derive(Clone, Debug, PartialEq)]
pub enum WireColumn {
    /// Values back to back — the fallback that never loses.
    Plain(Vec<Value>),
    /// Distinct values once, plus one narrow code per row.  Wins on
    /// low-cardinality columns.
    Dict {
        /// The distinct values, in first-occurrence order.
        dict: Vec<Value>,
        /// Per-row indexes into `dict`.
        codes: Vec<u32>,
    },
    /// `(value, run length)` pairs.  Wins on sorted / constant columns.
    Rle {
        /// The runs, in row order.
        runs: Vec<(Value, u32)>,
    },
}

/// Bit-exact value identity: unlike `Value`'s `PartialEq` (which unifies
/// `Int(3)` and `Float(3.0)`), encoding must never substitute one
/// representation for another — decode has to reproduce the input exactly.
fn identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

/// Width in bytes of a dictionary code for `dict_len` entries.
fn code_width(dict_len: usize) -> usize {
    if dict_len <= 1 << 8 {
        1
    } else if dict_len <= 1 << 16 {
        2
    } else {
        4
    }
}

impl WireColumn {
    /// Encode one column, choosing the smallest representation.
    fn encode(values: Vec<Value>) -> WireColumn {
        let n = values.len();
        let plain_size: usize = values.iter().map(|v| v.wire_size()).sum();

        // Dictionary: distinct values keyed by exact identity
        // (`partition_string` distinguishes what `Value::eq` unifies).
        let mut index: HashMap<String, u32> = HashMap::new();
        let mut dict: Vec<Value> = Vec::new();
        let mut codes: Vec<u32> = Vec::with_capacity(n);
        for v in &values {
            let code = *index.entry(v.partition_string()).or_insert_with(|| {
                dict.push(v.clone());
                dict.len() as u32 - 1
            });
            codes.push(code);
        }
        let dict_size =
            2 + dict.iter().map(|v| v.wire_size()).sum::<usize>() + n * code_width(dict.len());

        // Run-length: consecutive identical values collapse.
        let mut runs: Vec<(Value, u32)> = Vec::new();
        for v in values.iter() {
            match runs.last_mut() {
                Some((last, count)) if identical(last, v) => *count += 1,
                _ => runs.push((v.clone(), 1)),
            }
        }
        let rle_size = 4 + runs.iter().map(|(v, _)| v.wire_size() + 4).sum::<usize>();

        if dict_size < plain_size && dict_size <= rle_size {
            WireColumn::Dict { dict, codes }
        } else if rle_size < plain_size {
            WireColumn::Rle { runs }
        } else {
            WireColumn::Plain(values)
        }
    }

    /// Reconstruct the column's row values.
    fn decode(&self) -> Vec<Value> {
        match self {
            WireColumn::Plain(values) => values.clone(),
            WireColumn::Dict { dict, codes } => {
                codes.iter().map(|&c| dict[c as usize].clone()).collect()
            }
            WireColumn::Rle { runs } => {
                let mut out = Vec::new();
                for (v, count) in runs {
                    for _ in 0..*count {
                        out.push(v.clone());
                    }
                }
                out
            }
        }
    }

    /// Short label for traces and benchmarks.
    pub fn kind(&self) -> &'static str {
        match self {
            WireColumn::Plain(_) => "plain",
            WireColumn::Dict { .. } => "dict",
            WireColumn::Rle { .. } => "rle",
        }
    }
}

impl WireSize for WireColumn {
    fn wire_size(&self) -> usize {
        // 1 byte encoding tag per column.
        1 + match self {
            WireColumn::Plain(values) => values.iter().map(|v| v.wire_size()).sum::<usize>(),
            WireColumn::Dict { dict, codes } => {
                2 + dict.iter().map(|v| v.wire_size()).sum::<usize>()
                    + codes.len() * code_width(dict.len())
            }
            WireColumn::Rle { runs } => {
                4 + runs.iter().map(|(v, _)| v.wire_size() + 4).sum::<usize>()
            }
        }
    }
}

/// A whole batch of rows in columnar wire form.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnarWire {
    /// One encoded column per tuple position.
    pub columns: Vec<WireColumn>,
    /// Number of rows.
    pub rows: u32,
}

impl ColumnarWire {
    /// Pivot and encode.  Requires rectangular input (all rows same arity) —
    /// callers fall back to the plain row encoding otherwise.
    pub fn encode(rows: &[Tuple]) -> ColumnarWire {
        let width = rows.first().map(|t| t.arity()).unwrap_or(0);
        let columns = (0..width)
            .map(|c| WireColumn::encode(rows.iter().map(|t| t.get(c).clone()).collect()))
            .collect();
        ColumnarWire { columns, rows: rows.len() as u32 }
    }

    /// Reconstruct the rows.
    pub fn decode(&self) -> Vec<Tuple> {
        let cols: Vec<Vec<Value>> = self.columns.iter().map(|c| c.decode()).collect();
        (0..self.rows as usize)
            .map(|i| Tuple::new(cols.iter().map(|c| c[i].clone()).collect()))
            .collect()
    }
}

impl WireSize for ColumnarWire {
    fn wire_size(&self) -> usize {
        // 4-byte row count + 2-byte column count + encoded columns.
        6 + self.columns.iter().map(|c| c.wire_size()).sum::<usize>()
    }
}

/// The rows of a batched payload plus their wire-encoding byte accounting.
///
/// Receivers read [`TupleBlock::rows`] exactly as they read the old
/// `Vec<Tuple>`; the difference is that `wire_size` now reflects the chosen
/// encoding.  A columnar block's rows are the product of a real
/// encode→decode round trip, so the stored rows *are* what a receiver would
/// reconstruct from the wire bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct TupleBlock {
    rows: Vec<Tuple>,
    encoded_bytes: usize,
    /// Per-column encoding labels (empty for plain row encoding).
    encodings: Vec<&'static str>,
}

impl TupleBlock {
    /// Classic row-major encoding: each tuple's values back to back.  Byte
    /// accounting matches the pre-columnar wire format exactly.
    pub fn plain(rows: Vec<Tuple>) -> TupleBlock {
        let encoded_bytes = 4 + rows.iter().map(|t| t.wire_size()).sum::<usize>();
        TupleBlock { rows, encoded_bytes, encodings: Vec::new() }
    }

    /// Columnar encoding with per-column dictionary/RLE compression.  Ragged
    /// batches (mixed arity — never produced by a single relation or stage)
    /// fall back to the plain encoding, as does any block where the columnar
    /// form does not actually beat the row-major bytes (tiny blocks,
    /// unique-heavy columns) — a columnar-configured sender never ships
    /// *more* bytes than a plain one.
    pub fn columnar(rows: Vec<Tuple>) -> TupleBlock {
        let rectangular =
            rows.first().map(|f| rows.iter().all(|t| t.arity() == f.arity())).unwrap_or(true);
        if !rectangular {
            return TupleBlock::plain(rows);
        }
        let wire = ColumnarWire::encode(&rows);
        let plain_bytes = 4 + rows.iter().map(|t| t.wire_size()).sum::<usize>();
        // Keep the columnar layout only when compression actually engaged:
        // all-plain columns beat the row layout just by dropping per-tuple
        // headers, which isn't worth the decode asymmetry.
        let compressed = wire.columns.iter().any(|c| !matches!(c, WireColumn::Plain(_)));
        if !compressed || wire.wire_size() >= plain_bytes {
            return TupleBlock::plain(rows);
        }
        let encoded_bytes = wire.wire_size();
        let encodings = wire.columns.iter().map(|c| c.kind()).collect();
        // Store the decoded rows: the block's contents are exactly what the
        // wire bytes reconstruct to.
        TupleBlock { rows: wire.decode(), encoded_bytes, encodings }
    }

    /// Encode with the given layout choice (`columnar` from
    /// `PierConfig::columnar_wire`).
    pub fn new(rows: Vec<Tuple>, columnar: bool) -> TupleBlock {
        if columnar {
            TupleBlock::columnar(rows)
        } else {
            TupleBlock::plain(rows)
        }
    }

    /// The rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Consume into the rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the block empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Per-column encoding labels (`"dict"`, `"rle"`, `"plain"`); empty when
    /// the block uses the plain row encoding.
    pub fn column_encodings(&self) -> &[&'static str] {
        &self.encodings
    }
}

impl WireSize for TupleBlock {
    fn wire_size(&self) -> usize {
        self.encoded_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_rows(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::str(format!("host-{}", i % 4)), // low cardinality → dict
                    Value::Int(1322),                      // constant → rle
                    Value::Int(i as i64),                  // unique → plain
                ])
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_rows() {
        let rows = host_rows(64);
        let wire = ColumnarWire::encode(&rows);
        assert_eq!(wire.decode(), rows);
        let block = TupleBlock::columnar(rows.clone());
        assert_eq!(block.rows(), &rows[..]);
        assert_eq!(block.len(), 64);
    }

    #[test]
    fn round_trip_is_bit_exact_for_numeric_twins() {
        // Int(3) == Float(3.0) under Value::eq, but the encoding must keep
        // them distinct or decoding would change value types.
        let rows = vec![
            Tuple::new(vec![Value::Int(3)]),
            Tuple::new(vec![Value::Float(3.0)]),
            Tuple::new(vec![Value::Int(3)]),
            Tuple::new(vec![Value::Null]),
        ];
        let decoded = ColumnarWire::encode(&rows).decode();
        assert!(matches!(decoded[0].get(0), Value::Int(3)));
        assert!(matches!(decoded[1].get(0), Value::Float(_)));
        assert!(matches!(decoded[3].get(0), Value::Null));
    }

    #[test]
    fn low_cardinality_columns_shrink() {
        let rows = host_rows(256);
        let plain = TupleBlock::plain(rows.clone());
        let columnar = TupleBlock::columnar(rows);
        assert!(
            columnar.wire_size() < plain.wire_size(),
            "columnar {} vs plain {}",
            columnar.wire_size(),
            plain.wire_size()
        );
        assert_eq!(columnar.column_encodings(), &["dict", "rle", "plain"]);
        assert!(plain.column_encodings().is_empty());
    }

    #[test]
    fn unique_heavy_batches_fall_back_to_plain() {
        // All-unique strings: no dictionary or RLE win, so the encoder keeps
        // the row-major layout — columnar mode never ships more bytes.
        let rows: Vec<Tuple> =
            (0..32).map(|i| Tuple::new(vec![Value::str(format!("unique-{i}"))])).collect();
        let plain = TupleBlock::plain(rows.clone());
        let columnar = TupleBlock::columnar(rows);
        assert_eq!(columnar.wire_size(), plain.wire_size());
        assert!(columnar.column_encodings().is_empty(), "fell back to the plain layout");
    }

    #[test]
    fn plain_matches_legacy_accounting() {
        let rows = host_rows(8);
        let expected = 4 + rows.iter().map(|t| t.wire_size()).sum::<usize>();
        assert_eq!(TupleBlock::plain(rows).wire_size(), expected);
    }

    #[test]
    fn empty_and_ragged_blocks() {
        let empty = TupleBlock::columnar(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.rows(), &[] as &[Tuple]);
        let ragged =
            vec![Tuple::new(vec![Value::Int(1)]), Tuple::new(vec![Value::Int(1), Value::Int(2)])];
        let block = TupleBlock::columnar(ragged.clone());
        assert_eq!(block.rows(), &ragged[..], "ragged input falls back to plain, rows untouched");
        assert_eq!(TupleBlock::new(vec![], false).wire_size(), 4);
    }
}
