//! A ready-made PIER deployment harness.
//!
//! [`PierTestbed`] wires `N` [`PierNode`]s into the discrete-event simulator,
//! waits for the overlay to stabilize, and exposes the client operations that
//! examples, tests, and the benchmark harness all need: create tables
//! everywhere, publish tuples from any node, submit SQL or algebraic queries,
//! advance virtual time, and read back results.  It plays the role of the
//! PlanetLab deployment scripts plus the PIER client proxy.

use crate::catalog::TableDef;
use crate::engine::{PierConfig, PierNode};
use crate::query::{ContinuousSpec, QueryId, QueryKind};
use crate::tuple::Tuple;
use pier_simnet::{
    ChurnSchedule, Duration, LatencyModel, LossModel, Metrics, NodeAddr, SimConfig, SimTime,
    Simulation,
};

/// Configuration of a testbed deployment.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Number of PIER nodes.
    pub nodes: usize,
    /// Simulation seed (all randomness derives from it).
    pub seed: u64,
    /// Engine / DHT parameters.
    pub pier: PierConfig,
    /// Latency model; defaults to a planetary coordinate model.
    pub latency: Option<LatencyModel>,
    /// Loss model.
    pub loss: LossModel,
    /// Virtual time to run before the overlay is considered stable.
    pub warmup: Duration,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            nodes: 32,
            seed: 0x9132_2004,
            pier: PierConfig::fast_test(),
            latency: None,
            loss: LossModel::None,
            warmup: Duration::from_secs(30),
        }
    }
}

/// A running PIER deployment inside the simulator.
///
/// # Example
///
/// ```
/// use pier_core::prelude::*;
///
/// // Boot a small overlay, agree on a relation, publish, query.
/// let mut bed = PierTestbed::quick(6, 7);
/// let def = TableDef::new(
///     "readings",
///     Schema::of(&[("host", DataType::Str), ("v", DataType::Int)]),
///     "host",
///     Duration::from_secs(300),
/// );
/// bed.create_table_everywhere(&def);
/// for (i, &addr) in bed.nodes().to_vec().iter().enumerate() {
///     bed.publish_local(addr, "readings", Tuple::new(vec![
///         Value::str(format!("host-{i}")),
///         Value::Int(i as i64),
///     ]));
/// }
/// bed.run_for(Duration::from_secs(2));
/// let rows = bed.query_once("SELECT COUNT(*) FROM readings", Duration::from_secs(10)).unwrap();
/// assert_eq!(rows[0].get(0), &Value::Int(6));
/// ```
pub struct PierTestbed {
    sim: Simulation<PierNode>,
    nodes: Vec<NodeAddr>,
    table_defs: Vec<TableDef>,
}

impl PierTestbed {
    /// Build and warm up a deployment.
    pub fn new(config: TestbedConfig) -> Self {
        let mut rng = pier_simnet::DetRng::new(config.seed);
        let latency = config
            .latency
            .clone()
            .unwrap_or_else(|| LatencyModel::planetary(config.nodes.max(1), &mut rng));
        let pier_config = config.pier.clone();
        let mut sim = Simulation::new(
            SimConfig {
                seed: config.seed,
                latency,
                loss: config.loss.clone(),
                ..Default::default()
            },
            move |addr| {
                let bootstrap = if addr.0 == 0 { None } else { Some(NodeAddr(0)) };
                PierNode::new(addr, pier_config.clone(), bootstrap)
            },
        );
        let nodes = sim.add_nodes(config.nodes);
        sim.run_for(config.warmup);
        PierTestbed { sim, nodes, table_defs: Vec::new() }
    }

    /// A small default deployment (32 nodes) for examples and tests.
    pub fn quick(nodes: usize, seed: u64) -> Self {
        Self::new(TestbedConfig { nodes, seed, ..Default::default() })
    }

    /// Node addresses, in creation order.
    pub fn nodes(&self) -> &[NodeAddr] {
        &self.nodes
    }

    /// Addresses of the currently alive nodes.
    pub fn alive_nodes(&self) -> Vec<NodeAddr> {
        self.sim.alive_nodes()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Simulator metrics (messages, bytes, drops…).
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Direct access to the underlying simulation (advanced scenarios:
    /// partitions, custom churn, per-node inspection).
    pub fn sim(&mut self) -> &mut Simulation<PierNode> {
        &mut self.sim
    }

    /// Immutable access to one node's engine.
    pub fn node(&self, addr: NodeAddr) -> Option<&PierNode> {
        self.sim.node(addr)
    }

    /// Register a table on every node.  The definition is remembered, and
    /// nodes that restart after churn are re-provisioned with it the next
    /// time the harness touches them (mirroring a rebooted PlanetLab host
    /// re-reading its deployment configuration).
    pub fn create_table_everywhere(&mut self, def: &TableDef) {
        self.table_defs.push(def.clone());
        for addr in self.sim.alive_nodes() {
            if let Some(node) = self.sim.node_mut(addr) {
                node.create_table(def.clone());
            }
        }
    }

    /// Record cardinality hints for a table on every node (the hints drive
    /// cost-based join-strategy selection in the physical planner).
    pub fn set_table_stats_everywhere(&mut self, table: &str, stats: crate::catalog::TableStats) {
        for addr in self.sim.alive_nodes() {
            if let Some(node) = self.sim.node_mut(addr) {
                node.set_table_stats(table, stats);
            }
        }
    }

    /// Render the planning pipeline's `EXPLAIN` report for a query, as seen
    /// from one node's catalog.  Purely local — nothing is disseminated.
    pub fn explain(&mut self, from: NodeAddr, sql: &str) -> Result<String, String> {
        self.ensure_tables(from);
        self.sim
            .node(from)
            .ok_or_else(|| "origin node is not alive".to_string())?
            .explain_sql(sql)
            .map_err(|e| e.to_string())
    }

    /// Run `EXPLAIN ANALYZE <select>` end to end: render the static
    /// four-stage plan, **execute** the inner query from `from`, let it run
    /// for `settle` of virtual time (continuous queries are then stopped),
    /// collect every node's per-operator execution trace over the DHT, and
    /// render the network-wide totals below the static plan.
    ///
    /// The merged trace is also available structurally afterwards through
    /// [`PierNode::collected_trace`](crate::engine::PierNode::collected_trace)
    /// on the origin node.
    pub fn explain_analyze(
        &mut self,
        from: NodeAddr,
        sql: &str,
        settle: Duration,
    ) -> Result<String, String> {
        use crate::sql::{parse, Statement};
        let stmt = parse(sql).map_err(|e| e.to_string())?;
        let select = match stmt {
            Statement::Explain { analyze: true, select } => *select,
            Statement::Explain { analyze: false, .. } => {
                return Err("EXPLAIN without ANALYZE is static; use explain()".to_string())
            }
            _ => return Err("expected an EXPLAIN ANALYZE <select> statement".to_string()),
        };
        self.ensure_tables(from);
        let static_text = self
            .sim
            .node(from)
            .ok_or_else(|| "origin node is not alive".to_string())?
            .explain_sql(sql)
            .map_err(|e| e.to_string())?;

        // Execute the inner statement for real, keyed by the *inner* SELECT
        // text: keying by the EXPLAIN ANALYZE wrapper would poison the plan
        // cache with a non-SELECT key and leave the origin's re-planning
        // state holding text that does not parse as a SELECT.
        let sql_key = inner_select_text(sql).to_string();
        let id = self
            .sim
            .invoke(from, move |node, ctx| {
                node.submit_select(ctx, &sql_key, &select).map_err(|e| e.to_string())
            })
            .unwrap_or_else(|| Err("origin node is not alive".to_string()))?;
        self.run_for(settle);

        // Freeze a continuous query so its counters quiesce, then collect.
        let continuous = self
            .sim
            .node(from)
            .and_then(|n| n.results(id))
            .map(|r| r.spec.is_continuous())
            .unwrap_or(false);
        if continuous {
            self.stop_query(from, id);
            self.run_for(Duration::from_secs(2));
        }
        self.sim.invoke(from, move |node, ctx| node.request_traces(ctx, id));
        self.run_for(Duration::from_secs(3));

        let node = self.sim.node(from).ok_or_else(|| "origin node is not alive".to_string())?;
        let (reporters, trace) =
            node.collected_trace(id).ok_or_else(|| "no traces were collected".to_string())?;
        let kind = node
            .results(id)
            .map(|r| r.spec.kind.clone())
            .ok_or_else(|| "origin lost the query's result state".to_string())?;
        let trace_text = crate::trace::render_network_trace(reporters, trace, &kind);
        Ok(format!("{static_text}{trace_text}"))
    }

    /// Re-register every known table definition on a node whose catalog lost
    /// them (e.g. because churn restarted it with fresh state).
    fn ensure_tables(&mut self, addr: NodeAddr) {
        let defs = self.table_defs.clone();
        if let Some(node) = self.sim.node_mut(addr) {
            for def in defs {
                if node.catalog().get(&def.name).is_none() {
                    node.create_table(def);
                }
            }
        }
    }

    /// Publish a tuple from a specific node (routed into the DHT).
    pub fn publish(&mut self, from: NodeAddr, table: &str, tuple: Tuple) {
        self.ensure_tables(from);
        let table = table.to_string();
        self.sim.invoke(from, move |node, ctx| {
            node.publish(ctx, &table, tuple).expect("publish failed");
        });
    }

    /// Publish many tuples of one table from a specific node in a single
    /// coalesced submission (same-destination tuples share wire messages; see
    /// [`PierNode::publish_batch`](crate::engine::PierNode::publish_batch)).
    pub fn publish_batch(&mut self, from: NodeAddr, table: &str, tuples: Vec<Tuple>) {
        self.ensure_tables(from);
        let table = table.to_string();
        self.sim.invoke(from, move |node, ctx| {
            node.publish_batch(ctx, &table, tuples).expect("publish_batch failed");
        });
    }

    /// Network-wide engine activity: the field-wise sum of every node's
    /// [`EngineStats`](crate::engine::EngineStats) (dead nodes included — their
    /// counters describe traffic they caused while alive).  Also syncs the
    /// headline shipping counters into the simulation metrics as the
    /// `pier.messages_sent` / `pier.bytes_shipped` / `pier.batches_sent`
    /// tags, so `Metrics` displays the query-path share of the traffic.
    pub fn engine_totals(&mut self) -> crate::engine::EngineStats {
        let mut total = crate::engine::EngineStats::default();
        for i in 0..self.sim.num_nodes() {
            if let Some(node) = self.sim.node(NodeAddr(i as u32)) {
                total.merge(&node.stats());
            }
        }
        let m = self.sim.metrics_mut();
        m.set_tag("pier.messages_sent", total.messages_sent);
        m.set_tag("pier.bytes_shipped", total.bytes_shipped);
        m.set_tag("pier.batches_sent", total.batches_sent);
        total
    }

    /// Store a tuple locally at a node (monitoring data about that node).
    pub fn publish_local(&mut self, at: NodeAddr, table: &str, tuple: Tuple) {
        self.ensure_tables(at);
        let now = self.sim.now();
        let table = table.to_string();
        if let Some(node) = self.sim.node_mut(at) {
            node.publish_local(now, &table, tuple).expect("publish_local failed");
        }
    }

    /// Submit a SQL query from a node; returns its id.
    pub fn submit_sql(&mut self, from: NodeAddr, sql: &str) -> Result<QueryId, String> {
        self.ensure_tables(from);
        let sql = sql.to_string();
        self.sim
            .invoke(from, move |node, ctx| node.submit_sql(ctx, &sql).map_err(|e| e.to_string()))
            .unwrap_or_else(|| Err("origin node is not alive".to_string()))
    }

    /// Submit an algebraic (non-SQL) query from a node.
    pub fn submit_query(
        &mut self,
        from: NodeAddr,
        kind: QueryKind,
        output_names: Vec<String>,
        continuous: Option<ContinuousSpec>,
    ) -> Result<QueryId, String> {
        self.sim
            .invoke(from, move |node, ctx| {
                node.submit(ctx, kind, output_names, continuous).map_err(|e| e.to_string())
            })
            .unwrap_or_else(|| Err("origin node is not alive".to_string()))
    }

    /// Stop a continuous query.
    pub fn stop_query(&mut self, origin: NodeAddr, id: QueryId) {
        self.sim.invoke(origin, move |node, ctx| node.stop_query(ctx, id));
    }

    /// Advance virtual time.
    pub fn run_for(&mut self, d: Duration) {
        self.sim.run_for(d);
    }

    /// Advance virtual time to an absolute instant.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Apply a churn schedule.
    pub fn apply_churn(&mut self, schedule: &ChurnSchedule) {
        self.sim.apply_churn(schedule);
    }

    /// Kill a node immediately.
    pub fn kill_node(&mut self, addr: NodeAddr) {
        self.sim.kill_node(addr);
    }

    /// Restart a previously killed node.
    pub fn restart_node(&mut self, addr: NodeAddr) {
        self.sim.restart_node(addr);
    }

    /// Result rows of a query for an epoch, with ORDER BY / LIMIT applied.
    pub fn results(&self, origin: NodeAddr, id: QueryId, epoch: u64) -> Vec<Tuple> {
        self.sim.node(origin).and_then(|n| n.results(id)).map(|r| r.rows(epoch)).unwrap_or_default()
    }

    /// All result rows of a query across epochs.
    pub fn all_results(&self, origin: NodeAddr, id: QueryId) -> Vec<Tuple> {
        self.sim.node(origin).and_then(|n| n.results(id)).map(|r| r.all_rows()).unwrap_or_default()
    }

    /// Epochs with data for a query.
    pub fn epochs(&self, origin: NodeAddr, id: QueryId) -> Vec<u64> {
        self.sim.node(origin).and_then(|n| n.results(id)).map(|r| r.epochs()).unwrap_or_default()
    }

    /// "Responding nodes" for an epoch of an aggregation query.
    pub fn contributors(&self, origin: NodeAddr, id: QueryId, epoch: u64) -> u64 {
        self.sim
            .node(origin)
            .and_then(|n| n.results(id))
            .map(|r| r.contributors(epoch))
            .unwrap_or(0)
    }

    /// Convenience: run a one-shot SQL query from node 0, wait `settle`, and
    /// return its rows (epoch 0).
    pub fn query_once(&mut self, sql: &str, settle: Duration) -> Result<Vec<Tuple>, String> {
        let origin = self.nodes[0];
        let id = self.submit_sql(origin, sql)?;
        self.run_for(settle);
        Ok(self.results(origin, id, 0))
    }
}

/// The text after a leading `EXPLAIN ANALYZE` prefix (case-insensitive,
/// whitespace-tolerant) — the inner SELECT's own text.  Falls back to the
/// full input if the stripped remainder does not parse as a SELECT (e.g. a
/// comment sits between the keywords), which merely widens the cache key.
fn inner_select_text(sql: &str) -> &str {
    fn strip_kw<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
        let t = s.trim_start();
        if t.len() >= kw.len() && t[..kw.len()].eq_ignore_ascii_case(kw) {
            let rest = &t[kw.len()..];
            let boundary =
                rest.chars().next().map(|c| !c.is_ascii_alphanumeric() && c != '_').unwrap_or(true);
            if boundary {
                return Some(rest);
            }
        }
        None
    }
    let stripped = strip_kw(sql, "explain").and_then(|rest| strip_kw(rest, "analyze"));
    match stripped {
        Some(inner) if crate::sql::parse_select(inner).is_ok() => inner.trim_start(),
        _ => sql,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Schema;
    use crate::value::{DataType, Value};

    #[test]
    fn inner_select_text_strips_the_wrapper() {
        assert_eq!(inner_select_text("EXPLAIN ANALYZE SELECT a FROM t"), "SELECT a FROM t");
        assert_eq!(inner_select_text("  explain   analyze\n select a from t"), "select a from t");
        // Not an EXPLAIN ANALYZE: returned untouched.
        assert_eq!(inner_select_text("SELECT a FROM t"), "SELECT a FROM t");
        // `analyzer` is an identifier, not the keyword.
        assert_eq!(inner_select_text("EXPLAIN analyzer"), "EXPLAIN analyzer");
    }

    #[test]
    fn testbed_boots_and_answers_a_query() {
        let mut bed = PierTestbed::new(TestbedConfig {
            nodes: 8,
            seed: 11,
            warmup: Duration::from_secs(20),
            ..Default::default()
        });
        assert_eq!(bed.nodes().len(), 8);
        assert_eq!(bed.alive_nodes().len(), 8);

        let def = TableDef::new(
            "readings",
            Schema::of(&[("host", DataType::Str), ("v", DataType::Int)]),
            "host",
            Duration::from_secs(300),
        );
        bed.create_table_everywhere(&def);
        for (i, &addr) in bed.nodes().to_vec().iter().enumerate() {
            bed.publish(
                addr,
                "readings",
                Tuple::new(vec![Value::str(format!("host-{i}")), Value::Int(i as i64)]),
            );
        }
        bed.run_for(Duration::from_secs(5));

        let rows = bed
            .query_once("SELECT COUNT(*), SUM(v) FROM readings", Duration::from_secs(10))
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(8));
        assert_eq!(rows[0].get(1), &Value::Int((0..8).sum::<i64>()));
    }
}
