//! Columnar batches — the vectorized execution layer's data representation.
//!
//! A [`ColumnarBatch`] holds the same rows as a `Vec<Tuple>` but laid out
//! column-major: one typed vector per column ([`ColumnData`]) plus a validity
//! [`Bitmap`] marking NULLs.  Homogeneously typed columns (the common case —
//! every relation in the paper's workloads is schema-regular) get dense
//! `Vec<i64>` / `Vec<f64>` / `Vec<String>` storage the kernels in
//! [`kernel`](crate::kernel) can sweep without per-row enum dispatch or
//! `Value` clones; columns mixing types across rows fall back to
//! [`ColumnData::Mixed`], which preserves row-path semantics exactly.
//!
//! Operators pass *selection vectors* (`&[u32]` row indices) between stages
//! instead of materializing filtered copies: a filter kernel turns a batch
//! plus a selection into a smaller selection, and downstream kernels evaluate
//! densely over whatever selection they are handed.

use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// A packed validity (non-NULL) bitmap.
#[derive(Clone, Debug, PartialEq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Bitmap {
    /// An all-valid bitmap of `len` bits.
    pub fn all_valid(len: usize) -> Bitmap {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        Bitmap { words, len, ones: len }
    }

    /// An all-NULL bitmap of `len` bits.
    pub fn all_null(len: usize) -> Bitmap {
        Bitmap { words: vec![0; len.div_ceil(64)], len, ones: 0 }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the bitmap empty (zero bits)?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` (valid = true).  Out-of-range reads as NULL.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, valid: bool) {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let was = self.words[w] & b != 0;
        if valid {
            self.words[w] |= b;
        } else {
            self.words[w] &= !b;
        }
        match (was, valid) {
            (false, true) => self.ones += 1,
            (true, false) => self.ones -= 1,
            _ => {}
        }
    }

    /// Number of valid (set) bits.
    pub fn count_valid(&self) -> usize {
        self.ones
    }

    /// Are all bits valid?  Lets kernels skip per-element validity checks.
    pub fn all_are_valid(&self) -> bool {
        self.ones == self.len
    }
}

/// Typed column storage.  The element at an invalid (NULL) position is a
/// don't-care placeholder in the typed variants.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnData {
    /// All non-NULL values are `Value::Int`.
    Int(Vec<i64>),
    /// All non-NULL values are `Value::Float`.
    Float(Vec<f64>),
    /// All non-NULL values are `Value::Bool`.
    Bool(Vec<bool>),
    /// All non-NULL values are `Value::Str`.
    Str(Vec<String>),
    /// Heterogeneously typed column — stored row-wise as a `Value` vector.
    Mixed(Vec<Value>),
}

impl ColumnData {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One column of a batch: typed data plus validity.
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    /// The values.
    pub data: ColumnData,
    /// Which positions are non-NULL.
    pub validity: Bitmap,
}

impl Column {
    /// An all-NULL column of `len` rows.
    pub fn nulls(len: usize) -> Column {
        Column { data: ColumnData::Int(vec![0; len]), validity: Bitmap::all_null(len) }
    }

    /// Build a column from owned values, choosing typed storage when every
    /// non-NULL value shares one type.
    pub fn from_values(values: Vec<Value>) -> Column {
        let mut ty: Option<DataType> = None;
        let mut uniform = true;
        for v in &values {
            if v.is_null() {
                continue;
            }
            match ty {
                None => ty = Some(v.data_type()),
                Some(t) if t == v.data_type() => {}
                Some(_) => {
                    uniform = false;
                    break;
                }
            }
        }
        let len = values.len();
        if !uniform {
            return Column { data: ColumnData::Mixed(values), validity: Bitmap::all_valid(len) };
        }
        let mut validity = Bitmap::all_valid(len);
        let data = match ty {
            None => {
                // All NULL (or empty).
                return Column::nulls(len);
            }
            Some(DataType::Int) => {
                let mut out = Vec::with_capacity(len);
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Int(x) => out.push(*x),
                        _ => {
                            validity.set(i, false);
                            out.push(0);
                        }
                    }
                }
                ColumnData::Int(out)
            }
            Some(DataType::Float) => {
                let mut out = Vec::with_capacity(len);
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Float(x) => out.push(*x),
                        _ => {
                            validity.set(i, false);
                            out.push(0.0);
                        }
                    }
                }
                ColumnData::Float(out)
            }
            Some(DataType::Bool) => {
                let mut out = Vec::with_capacity(len);
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Bool(x) => out.push(*x),
                        _ => {
                            validity.set(i, false);
                            out.push(false);
                        }
                    }
                }
                ColumnData::Bool(out)
            }
            Some(DataType::Str) => {
                let mut out = Vec::with_capacity(len);
                for (i, v) in values.into_iter().enumerate() {
                    match v {
                        Value::Str(s) => out.push(s),
                        _ => {
                            validity.set(i, false);
                            out.push(String::new());
                        }
                    }
                }
                ColumnData::Str(out)
            }
            Some(DataType::Null) => unreachable!("nulls never set the unified type"),
        };
        Column { data, validity }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Is row `i` non-NULL?
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.data {
            ColumnData::Mixed(v) => !v[i].is_null(),
            _ => self.validity.get(i),
        }
    }

    /// Materialize row `i` as a `Value` (NULL when invalid; strings clone).
    #[inline]
    pub fn value_at(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Hash row `i` exactly as `Value::hash` would hash the materialized
    /// value, so columnar group keys collide with row-path `GroupKey`s.
    #[inline]
    pub fn hash_row<H: Hasher>(&self, i: usize, state: &mut H) {
        if !self.is_valid(i) {
            0u8.hash(state);
            return;
        }
        match &self.data {
            ColumnData::Int(v) => {
                2u8.hash(state);
                (v[i] as f64).to_bits().hash(state);
            }
            ColumnData::Float(v) => {
                2u8.hash(state);
                v[i].to_bits().hash(state);
            }
            ColumnData::Bool(v) => {
                1u8.hash(state);
                v[i].hash(state);
            }
            ColumnData::Str(v) => {
                3u8.hash(state);
                v[i].hash(state);
            }
            ColumnData::Mixed(v) => v[i].hash(state),
        }
    }

    /// A fast, deterministic intra-batch pre-grouping hash of row `i`,
    /// chained onto `seed` for multi-column keys.  Unlike
    /// [`Column::hash_row`] this does **not** match `Value::hash` — it only
    /// buckets rows within one batch, where every collision is verified
    /// with [`Column::rows_eq`] — so a cheap multiplicative mix replaces
    /// SipHash.  Numeric identity (`Int(3)` groups with `Float(3.0)` in a
    /// `Mixed` column) is preserved by hashing `f64` bits.
    #[inline]
    pub fn pregroup_hash(&self, i: usize, seed: u64) -> u64 {
        #[inline]
        fn mix(h: u64, x: u64) -> u64 {
            (h ^ x).rotate_left(23).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        }
        fn str_bits(s: &str) -> u64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let bytes = s.as_bytes();
            for chunk in bytes.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                h = mix(h, u64::from_le_bytes(word));
            }
            mix(h, bytes.len() as u64)
        }
        if !self.is_valid(i) {
            return mix(seed, 0x6e75_6c6c);
        }
        match &self.data {
            ColumnData::Int(v) => mix(seed, (v[i] as f64).to_bits()),
            ColumnData::Float(v) => mix(seed, v[i].to_bits()),
            ColumnData::Bool(v) => mix(seed, 0x0b00 + v[i] as u64),
            ColumnData::Str(v) => mix(seed, str_bits(&v[i])),
            ColumnData::Mixed(v) => match &v[i] {
                Value::Int(x) => mix(seed, (*x as f64).to_bits()),
                Value::Float(x) => mix(seed, x.to_bits()),
                Value::Bool(b) => mix(seed, 0x0b00 + *b as u64),
                Value::Str(s) => mix(seed, str_bits(s)),
                Value::Null => mix(seed, 0x6e75_6c6c),
            },
        }
    }

    /// Gather rows by index into a new column: output row `p` holds this
    /// column's row `idx[p]`.  The workhorse of the vectorized join probe —
    /// cross products are expressed as two gathers (an outer repeat of the
    /// probe side and an inner tile of the build side) instead of per-row
    /// `Value` clones and tuple concatenations.
    pub fn gather(&self, idx: &[u32]) -> Column {
        let mut validity = Bitmap::all_valid(idx.len());
        for (p, &i) in idx.iter().enumerate() {
            if !self.validity.get(i as usize) {
                validity.set(p, false);
            }
        }
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => ColumnData::Float(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str(v) => {
                ColumnData::Str(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnData::Mixed(v) => {
                // Mixed columns carry NULLs in the values; keep that invariant.
                validity = Bitmap::all_valid(idx.len());
                ColumnData::Mixed(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        Column { data, validity }
    }

    /// Concatenate columns end to end.  Homogeneous typed parts stay typed;
    /// anything else falls back to `Mixed` via row materialization (exactly
    /// what `from_values` over the materialized rows would produce).
    pub fn concat(parts: &[&Column]) -> Column {
        let total: usize = parts.iter().map(|c| c.len()).sum();
        let same_variant = |a: &ColumnData, b: &ColumnData| {
            matches!(
                (a, b),
                (ColumnData::Int(_), ColumnData::Int(_))
                    | (ColumnData::Float(_), ColumnData::Float(_))
                    | (ColumnData::Bool(_), ColumnData::Bool(_))
                    | (ColumnData::Str(_), ColumnData::Str(_))
            )
        };
        let homogeneous = parts
            .split_first()
            .map(|(first, rest)| {
                !matches!(first.data, ColumnData::Mixed(_))
                    && rest.iter().all(|c| same_variant(&first.data, &c.data))
            })
            .unwrap_or(false);
        if !homogeneous {
            let mut values = Vec::with_capacity(total);
            for part in parts {
                for i in 0..part.len() {
                    values.push(part.value_at(i));
                }
            }
            return Column::from_values(values);
        }
        let mut validity = Bitmap::all_valid(total);
        let mut at = 0usize;
        for part in parts {
            for i in 0..part.len() {
                if !part.validity.get(i) {
                    validity.set(at + i, false);
                }
            }
            at += part.len();
        }
        macro_rules! splice {
            ($variant:ident) => {{
                let mut out = Vec::with_capacity(total);
                for part in parts {
                    if let ColumnData::$variant(v) = &part.data {
                        out.extend(v.iter().cloned());
                    }
                }
                ColumnData::$variant(out)
            }};
        }
        let data = match &parts[0].data {
            ColumnData::Int(_) => splice!(Int),
            ColumnData::Float(_) => splice!(Float),
            ColumnData::Bool(_) => splice!(Bool),
            ColumnData::Str(_) => splice!(Str),
            ColumnData::Mixed(_) => unreachable!("mixed parts take the materializing path"),
        };
        Column { data, validity }
    }

    /// Do rows `i` and `j` hold equal values, under `Value`'s equality
    /// (NULL == NULL here — this is grouping equality, not SQL `=`)?
    #[inline]
    pub fn rows_eq(&self, i: usize, j: usize) -> bool {
        match (self.is_valid(i), self.is_valid(j)) {
            (false, false) => true,
            (true, true) => match &self.data {
                ColumnData::Int(v) => v[i] == v[j],
                ColumnData::Float(v) => {
                    v[i].partial_cmp(&v[j]).unwrap_or(Ordering::Equal) == Ordering::Equal
                }
                ColumnData::Bool(v) => v[i] == v[j],
                ColumnData::Str(v) => v[i] == v[j],
                ColumnData::Mixed(v) => v[i] == v[j],
            },
            _ => false,
        }
    }
}

/// Incremental single-pass column construction for
/// [`ColumnarBatch::from_rows`].  Starts typeless, specializes to typed
/// storage at the first non-NULL cell, and demotes to [`ColumnData::Mixed`]
/// if a differently typed cell appears later — so the whole pivot is one
/// sweep over the row data with no intermediate `Value` materialization.
struct ColumnBuilder {
    data: BuildData,
    validity: Bitmap,
    len: usize,
    cap: usize,
}

enum BuildData {
    /// Only NULLs so far.
    Untyped,
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Str(Vec<String>),
    Mixed(Vec<Value>),
}

impl ColumnBuilder {
    fn new(capacity: usize) -> ColumnBuilder {
        ColumnBuilder {
            data: BuildData::Untyped,
            validity: Bitmap::all_valid(capacity),
            len: 0,
            cap: capacity,
        }
    }

    #[inline]
    fn push(&mut self, i: usize, v: Option<&Value>) {
        match (&mut self.data, v) {
            (BuildData::Int(out), Some(Value::Int(x))) => out.push(*x),
            (BuildData::Float(out), Some(Value::Float(x))) => out.push(*x),
            (BuildData::Bool(out), Some(Value::Bool(x))) => out.push(*x),
            (BuildData::Str(out), Some(Value::Str(s))) => out.push(s.clone()),
            (BuildData::Mixed(out), v) => out.push(v.cloned().unwrap_or(Value::Null)),
            (_, None | Some(Value::Null)) => {
                // NULL cell (or a ragged short row): placeholder in whatever
                // storage we have; Untyped tracks the run via `len` alone.
                self.validity.set(i, false);
                match &mut self.data {
                    BuildData::Untyped => {}
                    BuildData::Int(out) => out.push(0),
                    BuildData::Float(out) => out.push(0.0),
                    BuildData::Bool(out) => out.push(false),
                    BuildData::Str(out) => out.push(String::new()),
                    BuildData::Mixed(_) => unreachable!("handled above"),
                }
            }
            (BuildData::Untyped, Some(v)) => {
                // First non-NULL cell: specialize, backfilling the NULL run.
                self.data = match v {
                    Value::Int(x) => BuildData::Int(backfill(self.cap, self.len, 0, *x)),
                    Value::Float(x) => BuildData::Float(backfill(self.cap, self.len, 0.0, *x)),
                    Value::Bool(x) => BuildData::Bool(backfill(self.cap, self.len, false, *x)),
                    Value::Str(s) => {
                        BuildData::Str(backfill(self.cap, self.len, String::new(), s.clone()))
                    }
                    Value::Null => unreachable!("handled above"),
                };
            }
            (_, Some(v)) => {
                // Type conflict: demote everything built so far to Mixed.
                self.data = BuildData::Mixed(self.demoted());
                if let BuildData::Mixed(out) = &mut self.data {
                    out.push(v.clone());
                }
            }
        }
        self.len += 1;
    }

    /// The cells built so far, re-materialized as `Value`s (for demotion).
    fn demoted(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.len + 1);
        for i in 0..self.len {
            out.push(if !self.validity.get(i) {
                Value::Null
            } else {
                match &self.data {
                    BuildData::Int(v) => Value::Int(v[i]),
                    BuildData::Float(v) => Value::Float(v[i]),
                    BuildData::Bool(v) => Value::Bool(v[i]),
                    BuildData::Str(v) => Value::Str(v[i].clone()),
                    BuildData::Untyped | BuildData::Mixed(_) => {
                        unreachable!("never demoted from these states")
                    }
                }
            });
        }
        out
    }

    fn finish(self) -> Column {
        match self.data {
            BuildData::Untyped => Column::nulls(self.len),
            BuildData::Int(v) => Column { data: ColumnData::Int(v), validity: self.validity },
            BuildData::Float(v) => Column { data: ColumnData::Float(v), validity: self.validity },
            BuildData::Bool(v) => Column { data: ColumnData::Bool(v), validity: self.validity },
            BuildData::Str(v) => Column { data: ColumnData::Str(v), validity: self.validity },
            // Mixed columns carry NULLs in the values themselves.
            BuildData::Mixed(v) => {
                Column { data: ColumnData::Mixed(v), validity: Bitmap::all_valid(self.len) }
            }
        }
    }
}

fn backfill<T: Clone>(cap: usize, nulls: usize, default: T, first: T) -> Vec<T> {
    let mut out = Vec::with_capacity(cap);
    out.resize(nulls, default);
    out.push(first);
    out
}

/// A column-major batch of rows.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnarBatch {
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnarBatch {
    /// Pivot row-major tuples into columns.  Ragged inputs widen to the
    /// longest row, with missing trailing positions reading as NULL — the
    /// same out-of-range behavior as `Tuple::get`.
    ///
    /// This is the vectorized path's entry toll, so it avoids materializing
    /// intermediate `Value`s: each column is typed by a borrow-only
    /// discriminant scan and then filled in one pass, cloning only what the
    /// typed storage must own (string bytes; `Mixed` columns).
    pub fn from_rows(rows: &[Tuple]) -> ColumnarBatch {
        let width = rows.iter().map(|t| t.arity()).max().unwrap_or(0);
        let n = rows.len();
        let mut builders: Vec<ColumnBuilder> = (0..width).map(|_| ColumnBuilder::new(n)).collect();
        // One pass over the row data: every tuple's cell vector is touched
        // exactly once, with each cell dispatched to its column's builder.
        for (i, t) in rows.iter().enumerate() {
            let vals = t.values();
            for (c, b) in builders.iter_mut().enumerate() {
                b.push(i, vals.get(c));
            }
        }
        ColumnarBatch { columns: builders.into_iter().map(|b| b.finish()).collect(), rows: n }
    }

    /// Assemble a batch directly from columns (all the same length).  The
    /// vectorized join probe builds its cross-product output this way —
    /// gathered columns side by side, no intermediate row materialization.
    pub fn from_columns(columns: Vec<Column>) -> ColumnarBatch {
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        debug_assert!(columns.iter().all(|c| c.len() == rows), "ragged columns");
        ColumnarBatch { columns, rows }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column `i`, if the batch is that wide.  Kernels treat a missing
    /// column as all-NULL (mirroring `Tuple::get`).
    pub fn column(&self, i: usize) -> Option<&Column> {
        self.columns.get(i)
    }

    /// The identity selection vector `[0, rows)`.
    pub fn full_selection(&self) -> Vec<u32> {
        (0..self.rows as u32).collect()
    }

    /// Materialize row `i` back into a tuple.
    pub fn row(&self, i: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value_at(i)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::all_valid(70);
        assert_eq!(b.len(), 70);
        assert_eq!(b.count_valid(), 70);
        assert!(b.all_are_valid());
        b.set(65, false);
        assert!(!b.get(65));
        assert!(b.get(64));
        assert_eq!(b.count_valid(), 69);
        assert!(!b.all_are_valid());
        assert!(!b.get(1000), "out of range reads as NULL");
        let n = Bitmap::all_null(3);
        assert_eq!(n.count_valid(), 0);
        assert!(!Bitmap::all_valid(0).get(0));
    }

    #[test]
    fn typed_column_construction() {
        let c = Column::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]);
        assert!(matches!(c.data, ColumnData::Int(_)));
        assert_eq!(c.value_at(0), Value::Int(1));
        assert_eq!(c.value_at(1), Value::Null);
        assert!(!c.is_valid(1));

        let s = Column::from_values(vec![Value::str("a"), Value::str("b")]);
        assert!(matches!(s.data, ColumnData::Str(_)));
        assert_eq!(s.value_at(1), Value::str("b"));

        let m = Column::from_values(vec![Value::Int(1), Value::str("x")]);
        assert!(matches!(m.data, ColumnData::Mixed(_)));
        assert_eq!(m.value_at(1), Value::str("x"));

        let n = Column::from_values(vec![Value::Null, Value::Null]);
        assert_eq!(n.value_at(0), Value::Null);
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn hash_agrees_with_value_hash() {
        use std::collections::hash_map::DefaultHasher;
        let values = vec![
            Value::Int(3),
            Value::Float(3.0),
            Value::Null,
            Value::str("h7"),
            Value::Bool(true),
        ];
        let col = Column::from_values(values.clone());
        for (i, v) in values.iter().enumerate() {
            let mut a = DefaultHasher::new();
            col.hash_row(i, &mut a);
            let mut b = DefaultHasher::new();
            v.hash(&mut b);
            assert_eq!(a.finish(), b.finish(), "row {i} ({v:?})");
        }
        // Int(3) and Float(3.0) hash identically (numeric identity).
        let mut a = DefaultHasher::new();
        col.hash_row(0, &mut a);
        let mut b = DefaultHasher::new();
        col.hash_row(1, &mut b);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn rows_eq_matches_value_eq() {
        let col = Column::from_values(vec![
            Value::Int(5),
            Value::Int(5),
            Value::Int(6),
            Value::Null,
            Value::Null,
        ]);
        assert!(col.rows_eq(0, 1));
        assert!(!col.rows_eq(0, 2));
        assert!(col.rows_eq(3, 4), "grouping treats NULLs as equal");
        assert!(!col.rows_eq(0, 3));
    }

    #[test]
    fn batch_round_trip() {
        let rows = vec![
            Tuple::new(vec![Value::str("h1"), Value::Int(1), Value::Float(0.5)]),
            Tuple::new(vec![Value::str("h2"), Value::Null, Value::Float(1.5)]),
            Tuple::new(vec![Value::str("h3"), Value::Int(3)]),
        ];
        let batch = ColumnarBatch::from_rows(&rows);
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.num_columns(), 3);
        assert_eq!(batch.row(0), rows[0]);
        assert_eq!(batch.row(1), rows[1]);
        // The ragged third row widens with NULL, as Tuple::get would read it.
        assert_eq!(batch.row(2).get(2), &Value::Null);
        assert_eq!(batch.full_selection(), vec![0, 1, 2]);

        let empty = ColumnarBatch::from_rows(&[]);
        assert_eq!(empty.num_rows(), 0);
        assert_eq!(empty.num_columns(), 0);
    }
}
