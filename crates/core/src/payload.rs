//! The application payload PIER layers over the DHT.
//!
//! Everything PIER stores in or routes through the DHT is a [`PierPayload`]:
//! base-table tuples, disseminated query plans, partial aggregates climbing
//! the aggregation tree, rehashed join tuples, Bloom-filter summaries,
//! recursive-expansion requests, and result rows streaming back to the query
//! origin.

use crate::aggregate::AggState;
use crate::dataflow::ops::GroupKey;
use crate::encoding::TupleBlock;
use crate::query::{QueryId, QuerySpec, ResultRow};
use crate::stats::NodeStatsEntry;
use crate::trace::OpTrace;
use crate::tuple::Tuple;
use crate::value::Value;
use pier_simnet::{NodeAddr, WireSize};

/// Application-level message / stored value.
///
/// Variant sizes differ wildly (a disseminated `QuerySpec` vs a stop token);
/// payloads are moved, not stored in bulk, so boxing would only add churn.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum PierPayload {
    /// A base-table tuple stored in the DHT.
    Tuple(Tuple),
    /// Several base-table tuples of one relation that share a partitioning
    /// key, stored in the DHT as a single item.  Publishers coalesce
    /// same-destination tuples into one routed `put`; local scans and
    /// Fetch-Matches probes unbatch transparently via
    /// [`PierPayload::tuples`].  The block carries its wire encoding (plain
    /// row-major or compressed columnar) and sizes itself accordingly.
    TupleBatch(TupleBlock),
    /// A query plan being disseminated to all nodes.
    Query(QuerySpec),
    /// Tear down a (continuous) query everywhere.
    StopQuery(QueryId),
    /// Partial aggregation state flowing toward the aggregation root.
    Partial {
        /// Which query.
        query: QueryId,
        /// Which evaluation epoch.
        epoch: u64,
        /// Per-group mergeable states.
        groups: Vec<(GroupKey, Vec<AggState>)>,
        /// How many leaf nodes' data is reflected in these states.
        contributors: u64,
    },
    /// One result row, streamed to the query origin.
    Result(ResultRow),
    /// Sent by the aggregation root to the origin when an epoch is finalized.
    EpochDone {
        /// Which query.
        query: QueryId,
        /// Which epoch.
        epoch: u64,
        /// Number of distinct nodes whose data contributed ("responding
        /// nodes", the lower series of the paper's Figure 1).
        contributors: u64,
    },
    /// Sent by the aggregation root to the origin when late partials patched
    /// an already-reported window (`WindowLatePolicy::Patch`): the origin
    /// discards the window's previously received rows, then the corrected
    /// rows and a fresh [`PierPayload::EpochDone`] follow.
    WindowRetract {
        /// Which query.
        query: QueryId,
        /// Which window (the `epoch` field of the re-sent result rows).
        window: u64,
    },
    /// A tuple rehashed to its join site (symmetric-hash and Bloom joins,
    /// plus intermediate tuples flowing between the stages of a multi-way
    /// join chain).
    JoinTuple {
        /// Which query.
        query: QueryId,
        /// Which join stage of the query's chain (0 for two-way joins).
        stage: u8,
        /// Which epoch.
        epoch: u64,
        /// 0 = left/intermediate input, 1 = right relation.
        side: u8,
        /// The join-key value (also determines the site).
        key: Value,
        /// The tuple itself.
        tuple: Tuple,
    },
    /// Several tuples of one join side that rehash to the *same* join-key
    /// value — and therefore to the same site — shipped as one message per
    /// (destination, query, epoch) instead of one per tuple.
    JoinBatch {
        /// Which query.
        query: QueryId,
        /// Which join stage of the query's chain (0 for two-way joins).
        stage: u8,
        /// Which epoch.
        epoch: u64,
        /// 0 = left/intermediate input, 1 = right relation.
        side: u8,
        /// The shared join-key value (also determines the site).
        key: Value,
        /// The tuples themselves, in the block's chosen wire encoding.
        tuples: TupleBlock,
    },
    /// Several result rows of one (query, epoch) streamed to the origin in a
    /// single message.  Producers buffer rows while evaluating an epoch tick
    /// and flush once per destination.
    ResultBatch {
        /// Which query.
        query: QueryId,
        /// Which epoch.
        epoch: u64,
        /// The rows, in production order, in the block's chosen wire
        /// encoding.
        rows: TupleBlock,
    },
    /// A Bloom-filter summary of one node's join keys (phase 1, sent to the
    /// origin) or the combined filter (phase 2, broadcast).  Stage 0 runs the
    /// classic Bloom semi-join over the driving relation's keys; stages ≥ 1
    /// summarize the keys of intermediates that arrived at the stage's join
    /// sites, so the next right-relation scan can prune its rehash.
    Bloom {
        /// Which query.
        query: QueryId,
        /// Which join stage of the chain the summary belongs to.
        stage: u8,
        /// Which epoch.
        epoch: u64,
        /// Filter bit words.
        bits: Vec<u64>,
        /// Number of probe hashes.
        k: u8,
        /// `false` = node→origin summary, `true` = combined filter broadcast.
        combined: bool,
    },
    /// Recursive-query expansion: "follow the edges out of `vertex`".
    Expand {
        /// Which query.
        query: QueryId,
        /// The vertex whose outgoing edges should be followed.
        vertex: Value,
        /// Depth of `vertex` from the source.
        depth: u32,
    },
    /// `EXPLAIN ANALYZE`: the origin asks every node for its execution trace
    /// of a query (broadcast over the dissemination tree).
    TraceRequest {
        /// Which query.
        query: QueryId,
    },
    /// One node's per-operator execution trace, sent directly to the query
    /// origin in answer to a [`PierPayload::TraceRequest`].
    TraceReport {
        /// Which query.
        query: QueryId,
        /// The reporting node.
        node: NodeAddr,
        /// Its producer-side counters for the query.
        trace: OpTrace,
    },
    /// Automatic-statistics gossip: the sender's entire epoch-stamped view of
    /// per-node table summaries, pushed to a ring neighbour (anti-entropy).
    StatsGossip {
        /// Newest known entry per node, including the sender's own.
        entries: Vec<NodeStatsEntry>,
    },
}

impl WireSize for PierPayload {
    fn wire_size(&self) -> usize {
        1 + match self {
            PierPayload::Tuple(t) => t.wire_size(),
            // Blocks size themselves from their actual encoded form (the
            // plain encoding reproduces the legacy `4 + Σ tuple` accounting).
            PierPayload::TupleBatch(block) => block.wire_size(),
            PierPayload::Query(q) => q.wire_size(),
            PierPayload::StopQuery(_) => 8,
            PierPayload::Partial { groups, .. } => {
                16 + 8
                    + groups
                        .iter()
                        .map(|(k, s)| {
                            k.iter().map(|v| v.wire_size()).sum::<usize>()
                                + s.iter().map(|x| x.wire_size()).sum::<usize>()
                        })
                        .sum::<usize>()
            }
            PierPayload::Result(r) => r.wire_size(),
            PierPayload::EpochDone { .. } => 24,
            PierPayload::WindowRetract { .. } => 16,
            PierPayload::JoinTuple { key, tuple, .. } => 19 + key.wire_size() + tuple.wire_size(),
            PierPayload::JoinBatch { key, tuples, .. } => 19 + key.wire_size() + tuples.wire_size(),
            PierPayload::ResultBatch { rows, .. } => 16 + rows.wire_size(),
            PierPayload::Bloom { bits, .. } => 19 + bits.len() * 8,
            PierPayload::Expand { vertex, .. } => 20 + vertex.wire_size(),
            PierPayload::TraceRequest { .. } => 8,
            PierPayload::TraceReport { trace, .. } => 12 + trace.wire_size(),
            PierPayload::StatsGossip { entries } => {
                4 + entries.iter().map(|e| e.wire_size()).sum::<usize>()
            }
        }
    }
}

impl PierPayload {
    /// If this payload is a stored tuple, view it.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            PierPayload::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// The stored base-table tuples this payload carries: one for
    /// [`PierPayload::Tuple`], all of them for [`PierPayload::TupleBatch`],
    /// none for every other variant.  Scans and probes read through this so
    /// batched and unbatched storage are indistinguishable to operators.
    pub fn tuples(&self) -> &[Tuple] {
        match self {
            PierPayload::Tuple(t) => std::slice::from_ref(t),
            PierPayload::TupleBatch(block) => block.rows(),
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_simnet::NodeAddr;

    #[test]
    fn as_tuple() {
        let t = Tuple::new(vec![Value::Int(1)]);
        assert_eq!(PierPayload::Tuple(t.clone()).as_tuple(), Some(&t));
        assert_eq!(PierPayload::StopQuery(QueryId::new(NodeAddr(0), 1)).as_tuple(), None);
    }

    #[test]
    fn wire_sizes_scale() {
        let small = PierPayload::Tuple(Tuple::new(vec![Value::Int(1)]));
        let big = PierPayload::Tuple(Tuple::new(vec![Value::str("x".repeat(100))]));
        assert!(big.wire_size() > small.wire_size());
        let bloom = PierPayload::Bloom {
            query: QueryId::new(NodeAddr(0), 1),
            stage: 0,
            epoch: 0,
            bits: vec![0; 64],
            k: 4,
            combined: false,
        };
        assert!(bloom.wire_size() > 64 * 8);
    }
}
