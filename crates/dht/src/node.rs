//! The Chord-style DHT node.
//!
//! [`DhtNode`] implements the overlay protocol PIER relies on:
//!
//! * **Ring membership** — each node hashes its network address onto the
//!   160-bit identifier circle, joins through any existing node, and keeps a
//!   successor list, a predecessor pointer, and a finger table;
//! * **Periodic maintenance** — stabilization, finger repair and liveness
//!   probing run on timers (the Bamboo-style "periodic recovery" that works
//!   under churn, rather than reacting to every suspected failure);
//! * **Key-based routing** — `Route` envelopes are forwarded greedily to the
//!   closest preceding neighbor until they reach the responsible node, giving
//!   the `O(log n)` multi-hop behaviour the paper describes;
//! * **Soft-state storage** — `put` items carry TTLs and expire unless
//!   renewed; `lscan` exposes locally stored items to the query engine;
//! * **Dissemination** — a recursive ring-partition broadcast delivers query
//!   plans to every reachable node in `O(log n)` depth.
//!
//! The node is deliberately *not* a [`pier_simnet::Node`] itself: PIER embeds
//! it inside its own per-host engine (one `PierNode` = query engine + DHT).
//! All methods take the simulator [`Context`] of the enclosing node, and all
//! notifications for the layer above are queued as [`Upcall`]s retrieved with
//! [`DhtNode::take_upcalls`].

use crate::config::DhtConfig;
use crate::hash::hash_node_addr;
use crate::id::{Id, ID_BITS};
use crate::key::ResourceKey;
use crate::messages::{DhtMsg, Peer, RouteBody, RouteEnvelope, Upcall, WireItem};
use crate::storage::SoftStateStore;
use pier_simnet::{Context, Duration, NodeAddr, SimTime, WireSize};
use std::collections::HashMap;

/// Timer tokens used by the DHT layer.  The enclosing node must route timer
/// callbacks with tokens in `TOKEN_BASE..TOKEN_LIMIT` back to
/// [`DhtNode::handle_timer`].
pub mod timers {
    /// Lowest token value owned by the DHT.
    pub const TOKEN_BASE: u64 = 1;
    /// One past the highest token value owned by the DHT.
    pub const TOKEN_LIMIT: u64 = 100;
    /// Periodic successor/predecessor stabilization.
    pub const STABILIZE: u64 = 1;
    /// Periodic finger-table repair (one finger per firing).
    pub const FIX_FINGERS: u64 = 2;
    /// Periodic liveness probing of neighbors.
    pub const PING: u64 = 3;
    /// Periodic soft-state expiry sweep.
    pub const SWEEP: u64 = 4;
    /// Join retry while not yet part of the ring.
    pub const JOIN_RETRY: u64 = 5;
}

/// Why a `FindSuccessor` request was issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LookupPurpose {
    /// Initial join: the result becomes our successor.
    Join,
    /// Refreshing finger table slot `k`.
    Finger(usize),
    /// Requested by the application through [`DhtNode::find_successor`].
    App,
}

/// Statistics the DHT keeps about its own behaviour (read by benchmarks).
#[derive(Clone, Copy, Debug, Default)]
pub struct DhtStats {
    /// Routed operations delivered at this node (it was responsible).
    pub deliveries: u64,
    /// Sum of hop counts over all deliveries (for average path length).
    pub delivery_hops: u64,
    /// Routed operations forwarded by this node.
    pub forwards: u64,
    /// Routed operations dropped because they exceeded the hop limit.
    pub hop_limit_drops: u64,
    /// Broadcast messages forwarded by this node.
    pub broadcast_forwards: u64,
    /// Wire messages this node sent carrying application traffic (`put` /
    /// `send` payloads being routed — originated *or* forwarded — plus
    /// point-to-point `Direct` sends).  Summed across nodes this is the true
    /// per-hop DHT message cost of the query wire paths, the quantity
    /// destination-coalesced batching attacks.
    pub app_msgs_sent: u64,
    /// [`DhtMsg::DirectBatch`] frames sent (each coalescing ≥ 2 direct
    /// payloads bound for one destination — cross-query piggybacking).
    pub direct_batches_sent: u64,
    /// Direct payloads beyond the first in each `DirectBatch` frame: sends
    /// that cost no wire message of their own because they rode a frame
    /// another payload already paid for.
    pub piggybacked_directs: u64,
}

/// A Chord node with PIER's put/get/send/lscan/broadcast API.
pub struct DhtNode<P> {
    config: DhtConfig,
    me: Peer,
    bootstrap: Option<NodeAddr>,
    joined: bool,
    predecessor: Option<Peer>,
    /// Successor list; `[0]` is the immediate successor.  Never contains `me`
    /// unless this node believes it is alone in the ring.
    successors: Vec<Peer>,
    /// Finger table; slot `j` targets `me.id + 2^(ID_BITS - finger_count + j)`.
    fingers: Vec<Option<Peer>>,
    next_finger: usize,
    store: SoftStateStore<P>,
    pending_lookups: HashMap<u64, LookupPurpose>,
    next_req_id: u64,
    last_heard: HashMap<NodeAddr, SimTime>,
    upcalls: Vec<Upcall<P>>,
    stats: DhtStats,
}

impl<P: Clone + WireSize> DhtNode<P> {
    /// Create a node for the given simulator address.  `bootstrap` is any
    /// existing ring member (or `None` / the node's own address if this is the
    /// first node).
    pub fn new(addr: NodeAddr, config: DhtConfig, bootstrap: Option<NodeAddr>) -> Self {
        let id = hash_node_addr(addr.0);
        let me = Peer::new(addr, id);
        let fingers = vec![None; config.finger_count];
        DhtNode {
            config,
            me,
            bootstrap,
            joined: false,
            predecessor: None,
            successors: vec![me],
            fingers,
            next_finger: 0,
            store: SoftStateStore::new(),
            pending_lookups: HashMap::new(),
            next_req_id: 1,
            last_heard: HashMap::new(),
            upcalls: Vec::new(),
            stats: DhtStats::default(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// This node's ring identifier.
    pub fn id(&self) -> Id {
        self.me.id
    }

    /// This node's network address.
    pub fn addr(&self) -> NodeAddr {
        self.me.addr
    }

    /// This node as a [`Peer`].
    pub fn peer(&self) -> Peer {
        self.me
    }

    /// Has the node completed its initial join?
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// The immediate successor (self if alone).
    pub fn successor(&self) -> Peer {
        self.successors.first().copied().unwrap_or(self.me)
    }

    /// The current successor list.
    pub fn successor_list(&self) -> &[Peer] {
        &self.successors
    }

    /// The current predecessor, if known.
    pub fn predecessor(&self) -> Option<Peer> {
        self.predecessor
    }

    /// Number of populated finger-table entries.
    pub fn fingers_filled(&self) -> usize {
        self.fingers.iter().filter(|f| f.is_some()).count()
    }

    /// Routing and delivery statistics.
    pub fn stats(&self) -> DhtStats {
        self.stats
    }

    /// Number of items stored locally (primaries and replicas).
    pub fn store_len(&self) -> usize {
        self.store.len()
    }

    /// Direct read-only access to the soft-state store.
    pub fn store(&self) -> &SoftStateStore<P> {
        &self.store
    }

    /// Drain the queued upcalls for the application layer.
    pub fn take_upcalls(&mut self) -> Vec<Upcall<P>> {
        std::mem::take(&mut self.upcalls)
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Boot the node: arm maintenance timers and start the join protocol.
    pub fn start(&mut self, ctx: &mut Context<DhtMsg<P>>) {
        ctx.set_timer(self.config.stabilize_interval, timers::STABILIZE);
        ctx.set_timer(self.config.fix_finger_interval, timers::FIX_FINGERS);
        ctx.set_timer(self.config.ping_interval, timers::PING);
        ctx.set_timer(self.config.storage_sweep_interval, timers::SWEEP);
        match self.bootstrap {
            None => self.become_root(),
            Some(b) if b == self.me.addr => self.become_root(),
            Some(b) => {
                self.send_join_lookup(ctx, b);
                ctx.set_timer(self.config.stabilize_interval.saturating_mul(4), timers::JOIN_RETRY);
            }
        }
    }

    fn become_root(&mut self) {
        self.joined = true;
        self.successors = vec![self.me];
        self.upcalls.push(Upcall::Joined);
    }

    fn send_join_lookup(&mut self, ctx: &mut Context<DhtMsg<P>>, bootstrap: NodeAddr) {
        let req_id = self.fresh_req_id();
        self.pending_lookups.insert(req_id, LookupPurpose::Join);
        let msg = DhtMsg::Route {
            target: self.me.id,
            hops: 0,
            body: RouteBody::FindSuccessor { req_id, origin: self.me.addr },
        };
        ctx.send(bootstrap, msg);
    }

    fn fresh_req_id(&mut self) -> u64 {
        let id = self.next_req_id;
        self.next_req_id += 1;
        // Mix in the address so ids from different nodes do not collide.
        (self.me.addr.0 as u64) << 40 | id
    }

    // ------------------------------------------------------------------
    // Public DHT API (PIER's put / get / send / lscan / broadcast)
    // ------------------------------------------------------------------

    /// Store `value` under `key` in the DHT (routed to the responsible node).
    /// `ttl` defaults to [`DhtConfig::default_ttl`].  Returns the number of
    /// wire messages sent (0 when this node is itself responsible).
    pub fn put(
        &mut self,
        ctx: &mut Context<DhtMsg<P>>,
        key: ResourceKey,
        value: P,
        ttl: Option<Duration>,
    ) -> usize {
        let ttl = ttl.unwrap_or(self.config.default_ttl);
        let item = WireItem { key, value, ttl_us: ttl.as_micros() };
        let target = item.key.routing_id();
        let body = RouteBody::Put { item, replicate: self.config.replication_factor > 0 };
        self.route(ctx, target, body, 0)
    }

    /// Store many items in the DHT with one coalesced submission: items whose
    /// first routing hop coincides travel in a single [`DhtMsg::RouteBatch`]
    /// wire message (and stay coalesced along shared path prefixes, every hop
    /// re-grouping by its own next hops).  Semantically identical to calling
    /// [`DhtNode::put`] per item; the wire cost is what changes.  Returns the
    /// number of wire messages actually sent.
    pub fn put_batch(
        &mut self,
        ctx: &mut Context<DhtMsg<P>>,
        items: Vec<(ResourceKey, P, Option<Duration>)>,
    ) -> usize {
        let replicate = self.config.replication_factor > 0;
        let envelopes: Vec<RouteEnvelope<P>> = items
            .into_iter()
            .map(|(key, value, ttl)| {
                let ttl = ttl.unwrap_or(self.config.default_ttl);
                let item = WireItem { key, value, ttl_us: ttl.as_micros() };
                let target = item.key.routing_id();
                RouteEnvelope { target, hops: 0, body: RouteBody::Put { item, replicate } }
            })
            .collect();
        self.route_many(ctx, envelopes)
    }

    /// Route many application payloads, each to the node responsible for its
    /// key, coalescing payloads that share a next hop into single
    /// [`DhtMsg::RouteBatch`] wire messages.  Returns the number of wire
    /// messages actually sent (payloads this node is itself responsible for
    /// are delivered locally and cost nothing on the wire).
    pub fn send_to_key_batch(
        &mut self,
        ctx: &mut Context<DhtMsg<P>>,
        items: Vec<(ResourceKey, P)>,
    ) -> usize {
        let envelopes: Vec<RouteEnvelope<P>> = items
            .into_iter()
            .map(|(key, payload)| {
                let target = key.routing_id();
                RouteEnvelope { target, hops: 0, body: RouteBody::AppSend { key, payload } }
            })
            .collect();
        self.route_many(ctx, envelopes)
    }

    /// Fetch all items stored under `(key.namespace, key.resource)`.  Returns
    /// a request id; the answer arrives later as [`Upcall::GetResult`].
    pub fn get(&mut self, ctx: &mut Context<DhtMsg<P>>, key: ResourceKey) -> u64 {
        let req_id = self.fresh_req_id();
        let target = key.routing_id();
        let body = RouteBody::Get { key, req_id, origin: self.me.addr };
        self.route(ctx, target, body, 0);
        req_id
    }

    /// Route an application payload to the node responsible for `key`
    /// (PIER uses this to rehash tuples to join and aggregation sites).
    /// Returns the number of wire messages sent (0 on local delivery).
    pub fn send_to_key(
        &mut self,
        ctx: &mut Context<DhtMsg<P>>,
        key: ResourceKey,
        payload: P,
    ) -> usize {
        let target = key.routing_id();
        let body = RouteBody::AppSend { key, payload };
        self.route(ctx, target, body, 0)
    }

    /// Send an application payload directly to a known node address (one hop,
    /// no DHT routing) — PIER streams query results back to the origin this way.
    pub fn send_direct(&mut self, ctx: &mut Context<DhtMsg<P>>, to: NodeAddr, payload: P) {
        self.stats.app_msgs_sent += 1;
        ctx.send(to, DhtMsg::Direct { payload });
    }

    /// Send several application payloads to one destination as a single
    /// [`DhtMsg::DirectBatch`] wire frame (cross-query piggybacking).  The
    /// receiver sees one [`Upcall::Direct`] per payload, exactly as if each
    /// had been sent with [`DhtNode::send_direct`]; only the wire cost
    /// changes.  Degenerates to a plain `Direct` for a single payload.
    pub fn send_direct_batch(
        &mut self,
        ctx: &mut Context<DhtMsg<P>>,
        to: NodeAddr,
        payloads: Vec<P>,
    ) {
        match payloads.len() {
            0 => (),
            1 => {
                self.stats.app_msgs_sent += 1;
                let payload = payloads.into_iter().next().expect("len checked");
                ctx.send(to, DhtMsg::Direct { payload });
            }
            n => {
                self.stats.app_msgs_sent += 1;
                self.stats.direct_batches_sent += 1;
                self.stats.piggybacked_directs += (n - 1) as u64;
                ctx.send(to, DhtMsg::DirectBatch { payloads });
            }
        }
    }

    /// Ask for the node responsible for `target`.  The answer arrives as
    /// [`Upcall::LookupResult`] carrying the returned request id.
    pub fn find_successor(&mut self, ctx: &mut Context<DhtMsg<P>>, target: Id) -> u64 {
        let req_id = self.fresh_req_id();
        self.pending_lookups.insert(req_id, LookupPurpose::App);
        let body = RouteBody::FindSuccessor { req_id, origin: self.me.addr };
        self.route(ctx, target, body, 0);
        req_id
    }

    /// Disseminate `payload` to every reachable node (including this one,
    /// which receives it as an immediate [`Upcall::Broadcast`]).
    pub fn broadcast(&mut self, ctx: &mut Context<DhtMsg<P>>, payload: P) {
        let range_end = self.me.id;
        self.handle_broadcast(ctx, payload, range_end, 0);
    }

    /// Count of local store mutations so far — see
    /// [`SoftStateStore::mutation_count`](crate::storage::SoftStateStore::mutation_count).
    pub fn store_mutations(&self) -> u64 {
        self.store.mutation_count()
    }

    /// Locally stored items of `namespace` that are still live at `now`.
    pub fn lscan(&self, namespace: &str, now: SimTime) -> Vec<(ResourceKey, P)> {
        self.store
            .lscan(namespace, now)
            .into_iter()
            .map(|item| (item.key.clone(), item.value.clone()))
            .collect()
    }

    /// Locally stored items of `namespace` that are live at `now` and were
    /// stored at or after `since` (continuous-query windows).
    pub fn lscan_since(
        &self,
        namespace: &str,
        now: SimTime,
        since: SimTime,
    ) -> Vec<(ResourceKey, P)> {
        self.store
            .lscan_since(namespace, now, since)
            .into_iter()
            .map(|item| (item.key.clone(), item.value.clone()))
            .collect()
    }

    /// Summarize the live local contents of one namespace: total item weight
    /// (per the caller's `weight` measure, e.g. tuples per stored batch) and
    /// distinct live resources.  See
    /// [`SoftStateStore::namespace_summary`](crate::storage::SoftStateStore::namespace_summary).
    pub fn namespace_summary<F>(&self, namespace: &str, now: SimTime, weight: F) -> (u64, u64)
    where
        F: Fn(&P) -> u64,
    {
        self.store.namespace_summary(namespace, now, weight)
    }

    /// Store an item directly at this node, bypassing routing.  PIER uses
    /// this for data that is *about* the local node (e.g. its own monitoring
    /// readings) when partitioning by publisher is desired.
    pub fn local_put(&mut self, now: SimTime, key: ResourceKey, value: P, ttl: Option<Duration>) {
        let ttl = ttl.unwrap_or(self.config.default_ttl);
        let is_new = self.store.put(key.clone(), value.clone(), now, ttl);
        if is_new {
            self.upcalls.push(Upcall::NewItem { key, value });
        }
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Handle a DHT message delivered to the enclosing node.
    pub fn handle_message(&mut self, ctx: &mut Context<DhtMsg<P>>, from: NodeAddr, msg: DhtMsg<P>) {
        self.last_heard.insert(from, ctx.now());
        match msg {
            DhtMsg::Route { target, hops, body } => self.handle_route(ctx, target, hops, body),
            DhtMsg::RouteBatch { routes } => {
                self.route_many(ctx, routes);
            }
            DhtMsg::FoundSuccessor { req_id, successor, hops } => {
                self.handle_found_successor(ctx, req_id, successor, hops)
            }
            DhtMsg::GetNeighbors => {
                let reply = DhtMsg::Neighbors {
                    predecessor: self.predecessor,
                    successors: self.successors.clone(),
                };
                ctx.send(from, reply);
            }
            DhtMsg::Neighbors { predecessor, successors } => {
                self.handle_neighbors(ctx, from, predecessor, successors)
            }
            DhtMsg::Notify { candidate } => self.handle_notify(ctx, candidate),
            DhtMsg::Ping { nonce } => ctx.send(from, DhtMsg::Pong { nonce }),
            DhtMsg::Pong { .. } => { /* liveness recorded above */ }
            DhtMsg::Replicate { items } => {
                let now = ctx.now();
                for item in items {
                    self.store.put(item.key, item.value, now, Duration::from_micros(item.ttl_us));
                }
            }
            DhtMsg::Handoff { items } => {
                let now = ctx.now();
                for item in items {
                    let is_new = self.store.put(
                        item.key.clone(),
                        item.value.clone(),
                        now,
                        Duration::from_micros(item.ttl_us),
                    );
                    if is_new {
                        self.upcalls.push(Upcall::NewItem { key: item.key, value: item.value });
                    }
                }
            }
            DhtMsg::GetReply { req_id, key, items } => {
                self.upcalls.push(Upcall::GetResult { req_id, key, items });
            }
            DhtMsg::Direct { payload } => {
                self.upcalls.push(Upcall::Direct { payload, from });
            }
            DhtMsg::DirectBatch { payloads } => {
                // Split into the exact upcall sequence the equivalent
                // `Direct` messages would have produced.
                for payload in payloads {
                    self.upcalls.push(Upcall::Direct { payload, from });
                }
            }
            DhtMsg::Broadcast { payload, range_end, depth } => {
                self.handle_broadcast(ctx, payload, range_end, depth)
            }
        }
    }

    /// Handle a timer owned by the DHT (token in `timers::TOKEN_BASE..TOKEN_LIMIT`).
    pub fn handle_timer(&mut self, ctx: &mut Context<DhtMsg<P>>, token: u64) {
        match token {
            timers::STABILIZE => {
                self.stabilize(ctx);
                ctx.set_timer(self.config.stabilize_interval, timers::STABILIZE);
            }
            timers::FIX_FINGERS => {
                self.fix_next_finger(ctx);
                ctx.set_timer(self.config.fix_finger_interval, timers::FIX_FINGERS);
            }
            timers::PING => {
                self.probe_neighbors(ctx);
                ctx.set_timer(self.config.ping_interval, timers::PING);
            }
            timers::SWEEP => {
                self.store.sweep(ctx.now());
                ctx.set_timer(self.config.storage_sweep_interval, timers::SWEEP);
            }
            timers::JOIN_RETRY if !self.joined => {
                if let Some(b) = self.bootstrap {
                    self.send_join_lookup(ctx, b);
                }
                ctx.set_timer(self.config.stabilize_interval.saturating_mul(4), timers::JOIN_RETRY);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// Where a message routed to `target` would be forwarded from here:
    /// `None` means this node is (as far as it knows) responsible for the key.
    ///
    /// PIER's hierarchical aggregation uses this to walk partial aggregates
    /// hop-by-hop toward the aggregation root, combining at every step.
    pub fn route_next_hop(&self, target: &Id) -> Option<Peer> {
        self.next_hop(target)
    }

    /// Is this node responsible for `target` (i.e. `target ∈ (pred, me]`)?
    fn is_responsible(&self, target: &Id) -> bool {
        match &self.predecessor {
            Some(pred) => target.in_half_open_interval(&pred.id, &self.me.id),
            // Without a predecessor we only claim keys if we are alone.
            None => self.successor().addr == self.me.addr,
        }
    }

    /// The next hop for `target`, or `None` if this node should deliver.
    fn next_hop(&self, target: &Id) -> Option<Peer> {
        if self.is_responsible(target) {
            return None;
        }
        let succ = self.successor();
        if succ.addr == self.me.addr {
            return None;
        }
        if target.in_half_open_interval(&self.me.id, &succ.id) {
            return Some(succ);
        }
        let cp = self.closest_preceding(target);
        if cp.addr == self.me.addr {
            Some(succ)
        } else {
            Some(cp)
        }
    }

    /// The known peer closest to (but strictly preceding) `target`.
    fn closest_preceding(&self, target: &Id) -> Peer {
        let mut best = self.me;
        let mut best_dist = self.me.id.distance_to(target);
        let candidates = self.fingers.iter().flatten().chain(self.successors.iter()).copied();
        for peer in candidates {
            if peer.addr == self.me.addr {
                continue;
            }
            if peer.id.in_open_interval(&self.me.id, target) {
                let dist = peer.id.distance_to(target);
                if dist < best_dist {
                    best = peer;
                    best_dist = dist;
                }
            }
        }
        best
    }

    fn route(
        &mut self,
        ctx: &mut Context<DhtMsg<P>>,
        target: Id,
        body: RouteBody<P>,
        hops: u8,
    ) -> usize {
        match self.next_hop(&target) {
            None => {
                self.deliver(ctx, target, hops, body);
                0
            }
            Some(peer) => {
                if hops >= self.config.max_route_hops {
                    self.stats.hop_limit_drops += 1;
                    return 0;
                }
                self.stats.forwards += 1;
                if matches!(body, RouteBody::Put { .. } | RouteBody::AppSend { .. }) {
                    self.stats.app_msgs_sent += 1;
                }
                ctx.send(peer.addr, DhtMsg::Route { target, hops: hops + 1, body });
                1
            }
        }
    }

    fn handle_route(
        &mut self,
        ctx: &mut Context<DhtMsg<P>>,
        target: Id,
        hops: u8,
        body: RouteBody<P>,
    ) {
        self.route(ctx, target, body, hops);
    }

    /// Route a set of envelopes, coalescing the ones that share a next hop
    /// into one [`DhtMsg::RouteBatch`] per peer.  Envelopes this node is
    /// responsible for are delivered immediately.  Returns the number of wire
    /// messages sent.
    fn route_many(
        &mut self,
        ctx: &mut Context<DhtMsg<P>>,
        envelopes: Vec<RouteEnvelope<P>>,
    ) -> usize {
        // Group by next hop, preserving arrival order within each group so
        // batching never reorders two ops on the same (source, destination)
        // pair.  Groups are kept in first-occurrence order (not HashMap
        // iteration order) so runs stay deterministic; the index map makes
        // the grouping O(n).
        let mut index: HashMap<NodeAddr, usize> = HashMap::new();
        let mut groups: Vec<(NodeAddr, Vec<RouteEnvelope<P>>)> = Vec::new();
        for envelope in envelopes {
            match self.next_hop(&envelope.target) {
                None => {
                    let RouteEnvelope { target, hops, body } = envelope;
                    self.deliver(ctx, target, hops, body);
                }
                Some(peer) => {
                    if envelope.hops >= self.config.max_route_hops {
                        self.stats.hop_limit_drops += 1;
                        continue;
                    }
                    self.stats.forwards += 1;
                    match index.get(&peer.addr) {
                        Some(&i) => groups[i].1.push(envelope),
                        None => {
                            index.insert(peer.addr, groups.len());
                            groups.push((peer.addr, vec![envelope]));
                        }
                    }
                }
            }
        }
        let mut sent = 0;
        for (peer, mut group) in groups {
            for envelope in &mut group {
                envelope.hops += 1;
            }
            sent += 1;
            if group
                .iter()
                .any(|e| matches!(e.body, RouteBody::Put { .. } | RouteBody::AppSend { .. }))
            {
                self.stats.app_msgs_sent += 1;
            }
            if group.len() == 1 {
                // No sense paying the batch framing for a single op.
                let RouteEnvelope { target, hops, body } = group.pop().expect("len checked");
                ctx.send(peer, DhtMsg::Route { target, hops, body });
            } else {
                ctx.send(peer, DhtMsg::RouteBatch { routes: group });
            }
        }
        sent
    }

    /// Execute a routed operation at the responsible node (this one).
    fn deliver(&mut self, ctx: &mut Context<DhtMsg<P>>, _target: Id, hops: u8, body: RouteBody<P>) {
        self.stats.deliveries += 1;
        self.stats.delivery_hops += hops as u64;
        match body {
            RouteBody::Put { item, replicate } => {
                let now = ctx.now();
                let ttl = Duration::from_micros(item.ttl_us);
                let is_new = self.store.put(item.key.clone(), item.value.clone(), now, ttl);
                if is_new {
                    self.upcalls
                        .push(Upcall::NewItem { key: item.key.clone(), value: item.value.clone() });
                }
                if replicate {
                    self.replicate_item(ctx, item);
                }
            }
            RouteBody::Get { key, req_id, origin } => {
                let now = ctx.now();
                let items = self
                    .store
                    .get(&key.namespace, &key.resource, now)
                    .into_iter()
                    .map(|item| (item.key.clone(), item.value.clone()))
                    .collect();
                ctx.send(origin, DhtMsg::GetReply { req_id, key, items });
            }
            RouteBody::AppSend { key, payload } => {
                self.upcalls.push(Upcall::Delivered { key, payload });
            }
            RouteBody::FindSuccessor { req_id, origin } => {
                ctx.send(origin, DhtMsg::FoundSuccessor { req_id, successor: self.me, hops });
            }
        }
    }

    fn replicate_item(&mut self, ctx: &mut Context<DhtMsg<P>>, item: WireItem<P>) {
        let replicas: Vec<Peer> = self
            .successors
            .iter()
            .filter(|p| p.addr != self.me.addr)
            .take(self.config.replication_factor)
            .copied()
            .collect();
        for peer in replicas {
            ctx.send(peer.addr, DhtMsg::Replicate { items: vec![item.clone()] });
        }
    }

    // ------------------------------------------------------------------
    // Ring maintenance
    // ------------------------------------------------------------------

    fn handle_found_successor(
        &mut self,
        ctx: &mut Context<DhtMsg<P>>,
        req_id: u64,
        successor: Peer,
        hops: u8,
    ) {
        let Some(purpose) = self.pending_lookups.remove(&req_id) else { return };
        match purpose {
            LookupPurpose::Join => {
                if !self.joined {
                    self.joined = true;
                    if successor.addr != self.me.addr {
                        self.successors = vec![successor];
                        ctx.send(successor.addr, DhtMsg::Notify { candidate: self.me });
                        ctx.send(successor.addr, DhtMsg::GetNeighbors);
                    }
                    self.upcalls.push(Upcall::Joined);
                }
            }
            LookupPurpose::Finger(slot) => {
                if successor.addr != self.me.addr && slot < self.fingers.len() {
                    self.fingers[slot] = Some(successor);
                    self.last_heard.entry(successor.addr).or_insert_with(|| ctx.now());
                }
            }
            LookupPurpose::App => {
                self.upcalls.push(Upcall::LookupResult { req_id, successor, hops });
            }
        }
    }

    fn stabilize(&mut self, ctx: &mut Context<DhtMsg<P>>) {
        let succ = self.successor();
        if succ.addr == self.me.addr {
            return;
        }
        ctx.send(succ.addr, DhtMsg::GetNeighbors);
        ctx.send(succ.addr, DhtMsg::Notify { candidate: self.me });
    }

    fn handle_neighbors(
        &mut self,
        ctx: &mut Context<DhtMsg<P>>,
        from: NodeAddr,
        predecessor: Option<Peer>,
        mut successors: Vec<Peer>,
    ) {
        let succ = self.successor();
        if from != succ.addr {
            // Stale reply from a node that is no longer our successor.
            return;
        }
        // Chord stabilization: if our successor's predecessor sits between us
        // and our successor, it is a closer successor — adopt it.
        if let Some(x) = predecessor {
            if x.addr != self.me.addr
                && x.addr != succ.addr
                && x.id.in_open_interval(&self.me.id, &succ.id)
            {
                self.successors.insert(0, x);
                self.last_heard.entry(x.addr).or_insert_with(|| ctx.now());
                ctx.send(x.addr, DhtMsg::Notify { candidate: self.me });
            }
        }
        // Rebuild the successor list: our successor followed by its list.
        let head = self.successor();
        let mut list = vec![head];
        successors.retain(|p| p.addr != self.me.addr && p.addr != head.addr);
        list.extend(successors);
        list.dedup_by_key(|p| p.addr);
        list.truncate(self.config.successor_list_len);
        self.successors = list;
    }

    fn handle_notify(&mut self, ctx: &mut Context<DhtMsg<P>>, candidate: Peer) {
        if candidate.addr == self.me.addr {
            return;
        }
        let adopt = match &self.predecessor {
            None => true,
            Some(pred) => candidate.id.in_open_interval(&pred.id, &self.me.id),
        };
        if adopt {
            self.predecessor = Some(candidate);
            self.last_heard.entry(candidate.addr).or_insert_with(|| ctx.now());
            self.handoff_items(ctx, candidate);
        }
        // A lone root learns of a second node through notify: adopt it as
        // successor so the two-node ring closes.
        if self.successor().addr == self.me.addr {
            self.successors = vec![candidate];
        }
    }

    /// After adopting a new predecessor, transfer items we no longer own.
    fn handoff_items(&mut self, ctx: &mut Context<DhtMsg<P>>, new_pred: Peer) {
        let now = ctx.now();
        let to_move: Vec<WireItem<P>> = self
            .store
            .all_items(now)
            .into_iter()
            .filter(|item| {
                let id = item.key.routing_id();
                !id.in_half_open_interval(&new_pred.id, &self.me.id)
            })
            .map(|item| WireItem {
                key: item.key.clone(),
                value: item.value.clone(),
                ttl_us: item.expires_at.saturating_since(now).as_micros(),
            })
            .collect();
        if to_move.is_empty() {
            return;
        }
        for item in &to_move {
            self.store.remove(&item.key);
        }
        ctx.send(new_pred.addr, DhtMsg::Handoff { items: to_move });
    }

    fn fix_next_finger(&mut self, ctx: &mut Context<DhtMsg<P>>) {
        if !self.joined || self.successor().addr == self.me.addr {
            return;
        }
        let slot = self.next_finger;
        self.next_finger = (self.next_finger + 1) % self.config.finger_count;
        let bit = ID_BITS - self.config.finger_count + slot;
        let target = self.me.id.finger_target(bit);
        let req_id = self.fresh_req_id();
        self.pending_lookups.insert(req_id, LookupPurpose::Finger(slot));
        let body = RouteBody::FindSuccessor { req_id, origin: self.me.addr };
        self.route(ctx, target, body, 0);
    }

    fn probe_neighbors(&mut self, ctx: &mut Context<DhtMsg<P>>) {
        let now = ctx.now();
        // Collect the peers whose liveness we care about.
        let mut peers: Vec<Peer> = Vec::new();
        if let Some(p) = self.predecessor {
            peers.push(p);
        }
        peers.extend(self.successors.iter().copied());
        peers.extend(self.fingers.iter().flatten().copied());
        peers.sort_by_key(|p| p.addr.0);
        peers.dedup_by_key(|p| p.addr);
        peers.retain(|p| p.addr != self.me.addr);

        let mut failed: Vec<NodeAddr> = Vec::new();
        for peer in &peers {
            let last = self.last_heard.get(&peer.addr).copied().unwrap_or(SimTime::ZERO);
            let silence = now.saturating_since(last);
            if silence > self.config.failure_timeout {
                failed.push(peer.addr);
            } else {
                let nonce = self.fresh_req_id();
                ctx.send(peer.addr, DhtMsg::Ping { nonce });
            }
        }
        for addr in failed {
            self.handle_peer_failure(addr);
        }
    }

    /// Remove every reference to a peer we believe has failed.
    fn handle_peer_failure(&mut self, addr: NodeAddr) {
        if self.predecessor.map(|p| p.addr) == Some(addr) {
            self.predecessor = None;
        }
        self.successors.retain(|p| p.addr != addr);
        if self.successors.is_empty() {
            // Fall back to any live finger, otherwise we are (as far as we
            // know) alone.
            if let Some(f) = self.fingers.iter().flatten().find(|p| p.addr != addr) {
                self.successors = vec![*f];
            } else {
                self.successors = vec![self.me];
            }
        }
        for slot in self.fingers.iter_mut() {
            if slot.map(|p| p.addr) == Some(addr) {
                *slot = None;
            }
        }
        self.last_heard.remove(&addr);
    }

    // ------------------------------------------------------------------
    // Broadcast
    // ------------------------------------------------------------------

    fn handle_broadcast(
        &mut self,
        ctx: &mut Context<DhtMsg<P>>,
        payload: P,
        range_end: Id,
        depth: u8,
    ) {
        self.upcalls.push(Upcall::Broadcast { payload: payload.clone() });
        if depth > 64 {
            return;
        }
        // Candidate next hops: every distinct peer we know inside our
        // responsibility segment (me, range_end).
        let mut targets: Vec<Peer> = self
            .fingers
            .iter()
            .flatten()
            .chain(self.successors.iter())
            .copied()
            .filter(|p| p.addr != self.me.addr)
            .filter(|p| {
                // When range_end == me.id the segment is the whole remaining ring.
                p.id.in_open_interval(&self.me.id, &range_end) || range_end == self.me.id
            })
            .collect();
        targets.sort_by_key(|p| self.me.id.distance_to(&p.id));
        targets.dedup_by_key(|p| p.addr);
        for i in 0..targets.len() {
            let sub_end = if i + 1 < targets.len() { targets[i + 1].id } else { range_end };
            self.stats.broadcast_forwards += 1;
            ctx.send(
                targets[i].addr,
                DhtMsg::Broadcast {
                    payload: payload.clone(),
                    range_end: sub_end,
                    depth: depth + 1,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_simnet::testkit::TestContext;

    type TestNode = DhtNode<u64>;

    fn make(addr: u32) -> TestNode {
        DhtNode::new(NodeAddr(addr), DhtConfig::fast_test(), Some(NodeAddr(0)))
    }

    /// Run a closure with a synthetic context (actions are discarded).
    fn with_ctx<R>(node_addr: u32, f: impl FnOnce(&mut Context<DhtMsg<u64>>) -> R) -> R {
        let mut tc: TestContext<DhtMsg<u64>> =
            TestContext::at(NodeAddr(node_addr), SimTime::from_secs(1));
        tc.run(f)
    }

    #[test]
    fn new_node_is_its_own_successor() {
        let n = make(3);
        assert_eq!(n.successor().addr, NodeAddr(3));
        assert!(n.predecessor().is_none());
        assert!(!n.is_joined());
        assert_eq!(n.fingers_filled(), 0);
        assert_eq!(n.store_len(), 0);
    }

    #[test]
    fn root_node_joins_immediately() {
        let mut n = DhtNode::<u64>::new(NodeAddr(0), DhtConfig::fast_test(), None);
        with_ctx(0, |ctx| n.start(ctx));
        assert!(n.is_joined());
        let ups = n.take_upcalls();
        assert!(ups.contains(&Upcall::Joined));
    }

    #[test]
    fn bootstrap_equal_to_self_is_root() {
        let mut n = DhtNode::<u64>::new(NodeAddr(5), DhtConfig::fast_test(), Some(NodeAddr(5)));
        with_ctx(5, |ctx| n.start(ctx));
        assert!(n.is_joined());
    }

    #[test]
    fn responsibility_single_node() {
        let mut n = DhtNode::<u64>::new(NodeAddr(0), DhtConfig::fast_test(), None);
        with_ctx(0, |ctx| n.start(ctx));
        // A lone node is responsible for every key.
        assert!(n.is_responsible(&Id::from_u64(12345)));
        assert!(n.is_responsible(&Id::MAX));
    }

    #[test]
    fn responsibility_uses_predecessor_interval() {
        let mut n = make(1);
        let my_id = n.id();
        let pred_id = my_id.wrapping_sub(&Id::from_u64(1000));
        n.predecessor = Some(Peer::new(NodeAddr(9), pred_id));
        // A key just below our id (within (pred, me]) is ours.
        assert!(n.is_responsible(&my_id.wrapping_sub(&Id::from_u64(10))));
        assert!(n.is_responsible(&my_id));
        // A key beyond us is not.
        assert!(!n.is_responsible(&my_id.wrapping_add(&Id::from_u64(10))));
    }

    #[test]
    fn local_put_and_lscan() {
        let mut n = make(1);
        n.local_put(SimTime::ZERO, ResourceKey::new("t", "a", 0), 42, None);
        n.local_put(SimTime::ZERO, ResourceKey::new("t", "b", 0), 43, None);
        let items = n.lscan("t", SimTime::from_secs(1));
        assert_eq!(items.len(), 2);
        let ups = n.take_upcalls();
        assert_eq!(ups.iter().filter(|u| matches!(u, Upcall::NewItem { .. })).count(), 2);
        // Renewal does not produce a second NewItem upcall.
        n.local_put(SimTime::from_secs(1), ResourceKey::new("t", "a", 0), 42, None);
        assert!(n.take_upcalls().is_empty());
    }

    #[test]
    fn deliver_put_stores_and_upcalls() {
        let mut n = DhtNode::<u64>::new(NodeAddr(0), DhtConfig::fast_test(), None);
        with_ctx(0, |ctx| n.start(ctx));
        n.take_upcalls();
        let key = ResourceKey::new("t", "x", 7);
        with_ctx(0, |ctx| {
            n.handle_message(
                ctx,
                NodeAddr(3),
                DhtMsg::Route {
                    target: key.routing_id(),
                    hops: 2,
                    body: RouteBody::Put {
                        item: WireItem { key: key.clone(), value: 11, ttl_us: 60_000_000 },
                        replicate: false,
                    },
                },
            );
        });
        assert_eq!(n.store_len(), 1);
        let ups = n.take_upcalls();
        assert!(matches!(&ups[0], Upcall::NewItem { key: k, value: 11 } if *k == key));
        assert_eq!(n.stats().deliveries, 1);
        assert_eq!(n.stats().delivery_hops, 2);
    }

    #[test]
    fn deliver_appsend_upcalls() {
        let mut n = DhtNode::<u64>::new(NodeAddr(0), DhtConfig::fast_test(), None);
        with_ctx(0, |ctx| n.start(ctx));
        n.take_upcalls();
        let key = ResourceKey::new("agg", "q1", 0);
        with_ctx(0, |ctx| {
            n.handle_message(
                ctx,
                NodeAddr(2),
                DhtMsg::Route {
                    target: key.routing_id(),
                    hops: 0,
                    body: RouteBody::AppSend { key: key.clone(), payload: 77 },
                },
            );
        });
        let ups = n.take_upcalls();
        assert_eq!(ups, vec![Upcall::Delivered { key, payload: 77 }]);
    }

    #[test]
    fn direct_message_upcalls_with_sender() {
        let mut n = make(1);
        with_ctx(1, |ctx| n.handle_message(ctx, NodeAddr(9), DhtMsg::Direct { payload: 5 }));
        let ups = n.take_upcalls();
        assert_eq!(ups, vec![Upcall::Direct { payload: 5, from: NodeAddr(9) }]);
    }

    #[test]
    fn notify_adopts_predecessor_and_closes_two_node_ring() {
        let mut n = DhtNode::<u64>::new(NodeAddr(0), DhtConfig::fast_test(), None);
        with_ctx(0, |ctx| n.start(ctx));
        let other = Peer::new(NodeAddr(1), hash_node_addr(1));
        with_ctx(0, |ctx| n.handle_message(ctx, NodeAddr(1), DhtMsg::Notify { candidate: other }));
        assert_eq!(n.predecessor().map(|p| p.addr), Some(NodeAddr(1)));
        assert_eq!(n.successor().addr, NodeAddr(1));
    }

    #[test]
    fn notify_keeps_better_predecessor() {
        let mut n = DhtNode::<u64>::new(NodeAddr(0), DhtConfig::fast_test(), None);
        with_ctx(0, |ctx| n.start(ctx));
        let my_id = n.id();
        let far = Peer::new(NodeAddr(1), my_id.wrapping_sub(&Id::from_u64(1_000_000)));
        let near = Peer::new(NodeAddr(2), my_id.wrapping_sub(&Id::from_u64(10)));
        with_ctx(0, |ctx| n.handle_message(ctx, NodeAddr(1), DhtMsg::Notify { candidate: far }));
        with_ctx(0, |ctx| n.handle_message(ctx, NodeAddr(2), DhtMsg::Notify { candidate: near }));
        assert_eq!(n.predecessor().map(|p| p.addr), Some(NodeAddr(2)));
        // A farther candidate does not displace a nearer predecessor.
        with_ctx(0, |ctx| n.handle_message(ctx, NodeAddr(1), DhtMsg::Notify { candidate: far }));
        assert_eq!(n.predecessor().map(|p| p.addr), Some(NodeAddr(2)));
    }

    #[test]
    fn peer_failure_cleans_all_references() {
        let mut n = make(1);
        let dead = Peer::new(NodeAddr(7), Id::from_u64(7));
        n.predecessor = Some(dead);
        n.successors = vec![dead, Peer::new(NodeAddr(8), Id::from_u64(8))];
        n.fingers[0] = Some(dead);
        n.handle_peer_failure(NodeAddr(7));
        assert!(n.predecessor().is_none());
        assert_eq!(n.successor().addr, NodeAddr(8));
        assert!(n.fingers[0].is_none());
    }

    #[test]
    fn peer_failure_of_last_successor_falls_back() {
        let mut n = make(1);
        let dead = Peer::new(NodeAddr(7), Id::from_u64(7));
        n.successors = vec![dead];
        n.fingers[3] = Some(Peer::new(NodeAddr(9), Id::from_u64(9)));
        n.handle_peer_failure(NodeAddr(7));
        assert_eq!(n.successor().addr, NodeAddr(9));
        // With no fingers either, the node falls back to itself.
        let mut lonely = make(2);
        lonely.successors = vec![dead];
        lonely.handle_peer_failure(NodeAddr(7));
        assert_eq!(lonely.successor().addr, NodeAddr(2));
    }

    #[test]
    fn get_reply_and_lookup_result_surface_as_upcalls() {
        let mut n = make(1);
        let key = ResourceKey::new("t", "k", 0);
        with_ctx(1, |ctx| {
            n.handle_message(
                ctx,
                NodeAddr(5),
                DhtMsg::GetReply { req_id: 9, key: key.clone(), items: vec![(key.clone(), 3)] },
            )
        });
        let peer = Peer::new(NodeAddr(5), Id::from_u64(5));
        // Unknown req_id lookups are ignored.
        with_ctx(1, |ctx| {
            n.handle_message(
                ctx,
                NodeAddr(5),
                DhtMsg::FoundSuccessor { req_id: 999, successor: peer, hops: 3 },
            )
        });
        let ups = n.take_upcalls();
        assert_eq!(ups.len(), 1);
        assert!(matches!(&ups[0], Upcall::GetResult { req_id: 9, .. }));
    }

    #[test]
    fn broadcast_always_delivers_locally() {
        let mut n = DhtNode::<u64>::new(NodeAddr(0), DhtConfig::fast_test(), None);
        with_ctx(0, |ctx| n.start(ctx));
        n.take_upcalls();
        with_ctx(0, |ctx| n.broadcast(ctx, 123));
        let ups = n.take_upcalls();
        assert_eq!(ups, vec![Upcall::Broadcast { payload: 123 }]);
    }

    #[test]
    fn closest_preceding_prefers_nearest_to_target() {
        let mut n = make(1);
        let my = n.id();
        let a = Peer::new(NodeAddr(10), my.wrapping_add(&Id::from_u64(100)));
        let b = Peer::new(NodeAddr(11), my.wrapping_add(&Id::from_u64(10_000)));
        n.fingers[0] = Some(a);
        n.fingers[1] = Some(b);
        let target = my.wrapping_add(&Id::from_u64(20_000));
        let cp = n.closest_preceding(&target);
        assert_eq!(cp.addr, NodeAddr(11));
        // For a target between a and b, only a precedes it.
        let target2 = my.wrapping_add(&Id::from_u64(5_000));
        assert_eq!(n.closest_preceding(&target2).addr, NodeAddr(10));
    }

    #[test]
    fn req_ids_are_unique_per_node() {
        let mut a = make(1);
        let mut b = make(2);
        let ia = a.fresh_req_id();
        let ib = b.fresh_req_id();
        assert_ne!(ia, ib);
        assert_ne!(a.fresh_req_id(), ia);
    }
}
