//! Soft-state item storage.
//!
//! PIER stores temporary tuples *in* the DHT and relies on **soft state**: every
//! item carries a time-to-live and is silently discarded when it expires unless
//! its publisher renews it.  This is what lets the system tolerate node
//! failures without any explicit invalidation protocol — stale state simply
//! ages out.
//!
//! The local store indexes items by namespace, then by `(resource, instance)`.
//! `lscan` (local scan) iterates everything a node holds for one namespace —
//! the access method every PIER query begins with.

use crate::key::ResourceKey;
use pier_simnet::{Duration, SimTime};
use std::collections::BTreeMap;

/// One stored item: a key, an opaque value, and its expiry time.
#[derive(Clone, Debug, PartialEq)]
pub struct Item<V> {
    /// Full three-part name of the item.
    pub key: ResourceKey,
    /// The application payload (a tuple, in PIER's case).
    pub value: V,
    /// Virtual time at which the item disappears unless renewed.
    pub expires_at: SimTime,
    /// Virtual time at which the item was (last) stored here.  Continuous
    /// queries use this to restrict evaluation to a recent window of data.
    pub stored_at: SimTime,
}

impl<V> Item<V> {
    /// Has this item expired at time `now`?
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.expires_at <= now
    }
}

/// Per-node soft-state store.
#[derive(Clone, Debug)]
pub struct SoftStateStore<V> {
    namespaces: BTreeMap<String, BTreeMap<(String, u64), Item<V>>>,
    item_count: usize,
    /// Running counters for diagnostics.
    total_puts: u64,
    total_expired: u64,
}

impl<V> Default for SoftStateStore<V> {
    fn default() -> Self {
        SoftStateStore {
            namespaces: BTreeMap::new(),
            item_count: 0,
            total_puts: 0,
            total_expired: 0,
        }
    }
}

impl<V: Clone> SoftStateStore<V> {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or renew an item.  An existing item with the same
    /// `(namespace, resource, instance)` is replaced (its TTL refreshed);
    /// returns `true` if the item was new.
    pub fn put(&mut self, key: ResourceKey, value: V, now: SimTime, ttl: Duration) -> bool {
        let expires_at = now + ttl;
        let ns = self.namespaces.entry(key.namespace.clone()).or_default();
        let existed = ns
            .insert(
                (key.resource.clone(), key.instance),
                Item { key, value, expires_at, stored_at: now },
            )
            .is_some();
        if !existed {
            self.item_count += 1;
        }
        self.total_puts += 1;
        !existed
    }

    /// Count of store mutations so far (every insert and renewal).  Two reads
    /// at the same `now`/`since` with the same mutation count see identical
    /// contents — expiry is a pure function of `now` — so this stamps
    /// scan-result caches.
    pub fn mutation_count(&self) -> u64 {
        self.total_puts
    }

    /// All live items for a `(namespace, resource)` pair (any instance).
    pub fn get(&self, namespace: &str, resource: &str, now: SimTime) -> Vec<&Item<V>> {
        self.namespaces
            .get(namespace)
            .map(|ns| {
                ns.range((resource.to_string(), 0)..=(resource.to_string(), u64::MAX))
                    .map(|(_, item)| item)
                    .filter(|item| !item.is_expired(now))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Local scan: all live items in a namespace.
    pub fn lscan(&self, namespace: &str, now: SimTime) -> Vec<&Item<V>> {
        self.namespaces
            .get(namespace)
            .map(|ns| ns.values().filter(|item| !item.is_expired(now)).collect())
            .unwrap_or_default()
    }

    /// Local scan restricted to items stored at or after `since` (the window
    /// of a continuous query).
    pub fn lscan_since(&self, namespace: &str, now: SimTime, since: SimTime) -> Vec<&Item<V>> {
        self.namespaces
            .get(namespace)
            .map(|ns| {
                ns.values()
                    .filter(|item| !item.is_expired(now) && item.stored_at >= since)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Summarize the live contents of one namespace: the total *weight* of
    /// live items (as measured by `weight` — PIER passes the number of tuples
    /// a stored item carries, so batched and unbatched storage summarize
    /// identically) and the number of distinct live resources.  This is the
    /// local input to PIER's gossiped automatic statistics: summed over all
    /// nodes it yields the namespace's network-wide cardinality, because every
    /// item lives at exactly one responsible node.
    pub fn namespace_summary<F>(&self, namespace: &str, now: SimTime, weight: F) -> (u64, u64)
    where
        F: Fn(&V) -> u64,
    {
        let Some(ns) = self.namespaces.get(namespace) else { return (0, 0) };
        let mut total = 0u64;
        let mut distinct = 0u64;
        let mut last_resource: Option<&str> = None;
        for ((resource, _), item) in ns.iter() {
            if item.is_expired(now) {
                continue;
            }
            total += weight(&item.value);
            // Items are ordered by (resource, instance), so a resource change
            // in iteration order is a new distinct resource.
            if last_resource != Some(resource.as_str()) {
                distinct += 1;
                last_resource = Some(resource.as_str());
            }
        }
        (total, distinct)
    }

    /// All live items across every namespace (used when handing data over to a
    /// new ring neighbor).
    pub fn all_items(&self, now: SimTime) -> Vec<&Item<V>> {
        self.namespaces
            .values()
            .flat_map(|ns| ns.values())
            .filter(|item| !item.is_expired(now))
            .collect()
    }

    /// Remove a specific item.  Returns `true` if it was present.
    pub fn remove(&mut self, key: &ResourceKey) -> bool {
        if let Some(ns) = self.namespaces.get_mut(&key.namespace) {
            if ns.remove(&(key.resource.clone(), key.instance)).is_some() {
                self.item_count -= 1;
                if ns.is_empty() {
                    self.namespaces.remove(&key.namespace);
                }
                return true;
            }
        }
        false
    }

    /// Remove every item in a namespace, returning how many were dropped.
    pub fn clear_namespace(&mut self, namespace: &str) -> usize {
        if let Some(ns) = self.namespaces.remove(namespace) {
            self.item_count -= ns.len();
            ns.len()
        } else {
            0
        }
    }

    /// Drop all expired items; returns how many were removed.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let mut removed = 0;
        self.namespaces.retain(|_, ns| {
            let before = ns.len();
            ns.retain(|_, item| !item.is_expired(now));
            removed += before - ns.len();
            !ns.is_empty()
        });
        self.item_count -= removed;
        self.total_expired += removed as u64;
        removed
    }

    /// Number of items currently held (including not-yet-swept expired items).
    pub fn len(&self) -> usize {
        self.item_count
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.item_count == 0
    }

    /// Namespaces currently present.
    pub fn namespaces(&self) -> Vec<&str> {
        self.namespaces.keys().map(|s| s.as_str()).collect()
    }

    /// Lifetime count of `put` operations.
    pub fn total_puts(&self) -> u64 {
        self.total_puts
    }

    /// Lifetime count of items removed by expiry sweeps.
    pub fn total_expired(&self) -> u64 {
        self.total_expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ns: &str, res: &str, inst: u64) -> ResourceKey {
        ResourceKey::new(ns, res, inst)
    }

    #[test]
    fn put_get_lscan() {
        let mut store: SoftStateStore<u64> = SoftStateStore::new();
        let now = SimTime::ZERO;
        let ttl = Duration::from_secs(60);
        assert!(store.put(key("t", "a", 0), 1, now, ttl));
        assert!(store.put(key("t", "a", 1), 2, now, ttl));
        assert!(store.put(key("t", "b", 0), 3, now, ttl));
        assert!(store.put(key("u", "a", 0), 4, now, ttl));
        // Renewal of an existing item is not "new".
        assert!(!store.put(key("t", "a", 0), 10, now, ttl));

        assert_eq!(store.len(), 4);
        let got = store.get("t", "a", now);
        assert_eq!(got.len(), 2);
        assert_eq!(store.lscan("t", now).len(), 3);
        assert_eq!(store.lscan("u", now).len(), 1);
        assert_eq!(store.lscan("missing", now).len(), 0);
        assert_eq!(store.all_items(now).len(), 4);
        assert_eq!(store.namespaces(), vec!["t", "u"]);
        assert_eq!(store.total_puts(), 5);
    }

    #[test]
    fn expiry_hides_and_sweep_removes() {
        let mut store: SoftStateStore<&'static str> = SoftStateStore::new();
        let t0 = SimTime::ZERO;
        store.put(key("t", "x", 0), "short", t0, Duration::from_secs(10));
        store.put(key("t", "y", 0), "long", t0, Duration::from_secs(100));

        let t1 = SimTime::from_secs(11);
        // Expired items are invisible to reads even before sweeping.
        assert_eq!(store.lscan("t", t1).len(), 1);
        assert_eq!(store.get("t", "x", t1).len(), 0);
        assert_eq!(store.len(), 2);

        let removed = store.sweep(t1);
        assert_eq!(removed, 1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_expired(), 1);

        // Sweeping again removes nothing.
        assert_eq!(store.sweep(t1), 0);
    }

    #[test]
    fn renewal_extends_ttl() {
        let mut store: SoftStateStore<u32> = SoftStateStore::new();
        store.put(key("t", "x", 0), 1, SimTime::ZERO, Duration::from_secs(10));
        // Renew at t=5 for another 10 s.
        store.put(key("t", "x", 0), 1, SimTime::from_secs(5), Duration::from_secs(10));
        assert_eq!(store.lscan("t", SimTime::from_secs(12)).len(), 1);
        assert_eq!(store.lscan("t", SimTime::from_secs(16)).len(), 0);
    }

    #[test]
    fn remove_and_clear() {
        let mut store: SoftStateStore<u32> = SoftStateStore::new();
        let now = SimTime::ZERO;
        let ttl = Duration::from_secs(60);
        store.put(key("t", "a", 0), 1, now, ttl);
        store.put(key("t", "b", 0), 2, now, ttl);
        store.put(key("u", "c", 0), 3, now, ttl);

        assert!(store.remove(&key("t", "a", 0)));
        assert!(!store.remove(&key("t", "a", 0)));
        assert_eq!(store.len(), 2);

        assert_eq!(store.clear_namespace("t"), 1);
        assert_eq!(store.clear_namespace("t"), 0);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
        assert_eq!(store.clear_namespace("u"), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn get_does_not_leak_other_resources() {
        let mut store: SoftStateStore<u32> = SoftStateStore::new();
        let now = SimTime::ZERO;
        let ttl = Duration::from_secs(60);
        store.put(key("t", "a", 0), 1, now, ttl);
        store.put(key("t", "ab", 0), 2, now, ttl);
        store.put(key("t", "b", 0), 3, now, ttl);
        let got = store.get("t", "a", now);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value, 1);
    }

    #[test]
    fn lscan_since_filters_by_storage_time() {
        let mut store: SoftStateStore<u32> = SoftStateStore::new();
        let ttl = Duration::from_secs(100);
        store.put(key("t", "old", 0), 1, SimTime::from_secs(1), ttl);
        store.put(key("t", "new", 0), 2, SimTime::from_secs(10), ttl);
        let now = SimTime::from_secs(12);
        assert_eq!(store.lscan_since("t", now, SimTime::ZERO).len(), 2);
        assert_eq!(store.lscan_since("t", now, SimTime::from_secs(5)).len(), 1);
        assert_eq!(store.lscan_since("t", now, SimTime::from_secs(11)).len(), 0);
        // Renewal refreshes the stored_at timestamp.
        store.put(key("t", "old", 0), 1, SimTime::from_secs(11), ttl);
        assert_eq!(store.lscan_since("t", now, SimTime::from_secs(11)).len(), 1);
    }

    #[test]
    fn item_is_expired() {
        let item = Item {
            key: key("t", "a", 0),
            value: 0u8,
            expires_at: SimTime::from_secs(5),
            stored_at: SimTime::ZERO,
        };
        assert!(!item.is_expired(SimTime::from_secs(4)));
        assert!(item.is_expired(SimTime::from_secs(5)));
        assert!(item.is_expired(SimTime::from_secs(6)));
    }
}
