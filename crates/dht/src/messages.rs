//! DHT wire messages and application upcalls.
//!
//! The message set covers the three roles the DHT plays for PIER:
//!
//! 1. **Overlay maintenance** — Chord's join, stabilization, finger repair and
//!    liveness probing (`FindSuccessor`, `Notify`, `GetNeighbors`, `Ping`, …);
//! 2. **Key-based routing** — the [`DhtMsg::Route`] envelope carries a
//!    [`RouteBody`] (a `put`, a `get`, or an application payload) hop by hop
//!    toward the node responsible for the target identifier;
//! 3. **Dissemination** — [`DhtMsg::Broadcast`] implements the recursive
//!    ring-partitioning broadcast PIER uses to ship query plans to every node.
//!
//! Everything the DHT tells the layer above (PIER's query engine) is expressed
//! as an [`Upcall`], returned from the node's message/timer handlers rather
//! than delivered through callbacks, which keeps ownership simple.

use crate::id::Id;
use crate::key::ResourceKey;
use pier_simnet::{NodeAddr, WireSize};
use std::fmt;

/// A network-visible reference to a DHT node: its address and ring identifier.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Peer {
    /// Simulator network address.
    pub addr: NodeAddr,
    /// Position on the identifier ring.
    pub id: Id,
}

impl Peer {
    /// Construct a peer reference.
    pub fn new(addr: NodeAddr, id: Id) -> Self {
        Peer { addr, id }
    }
}

impl fmt::Debug for Peer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.addr, self.id)
    }
}

/// Approximate on-wire size of a peer reference (address + 160-bit id).
const PEER_WIRE: usize = 4 + 20;

/// An item travelling between nodes: key, value, and remaining TTL in µs.
#[derive(Clone, Debug, PartialEq)]
pub struct WireItem<P> {
    /// Item name.
    pub key: ResourceKey,
    /// Item payload.
    pub value: P,
    /// Remaining time-to-live, microseconds.
    pub ttl_us: u64,
}

impl<P: WireSize> WireSize for WireItem<P> {
    fn wire_size(&self) -> usize {
        self.key.wire_size() + self.value.wire_size() + 8
    }
}

/// The operation carried by a routed message.
#[derive(Clone, Debug, PartialEq)]
pub enum RouteBody<P> {
    /// Store an item at the responsible node (PIER `put`).
    Put {
        /// Item to store.
        item: WireItem<P>,
        /// If true, replicate onto the responsible node's successors as well.
        replicate: bool,
    },
    /// Fetch all items with the given `(namespace, resource)` (PIER `get`).
    Get {
        /// Key being looked up (instance is ignored).
        key: ResourceKey,
        /// Correlates the eventual [`DhtMsg::GetReply`].
        req_id: u64,
        /// Where to send the reply.
        origin: NodeAddr,
    },
    /// Deliver an application payload to the responsible node (PIER uses this
    /// to rehash tuples to join/aggregation sites).
    AppSend {
        /// Key whose responsible node should receive the payload.
        key: ResourceKey,
        /// Application payload.
        payload: P,
    },
    /// Find the node responsible for an identifier and report it to `origin`
    /// (used for joins and finger repair).
    FindSuccessor {
        /// Correlates the eventual [`DhtMsg::FoundSuccessor`].
        req_id: u64,
        /// Who asked.
        origin: NodeAddr,
    },
}

impl<P: WireSize> WireSize for RouteBody<P> {
    fn wire_size(&self) -> usize {
        match self {
            RouteBody::Put { item, .. } => 1 + item.wire_size() + 1,
            RouteBody::Get { key, .. } => 1 + key.wire_size() + 8 + 4,
            RouteBody::AppSend { key, payload } => 1 + key.wire_size() + payload.wire_size(),
            RouteBody::FindSuccessor { .. } => 1 + 8 + 4,
        }
    }
}

/// One routed operation inside a [`DhtMsg::RouteBatch`]: the same triple a
/// standalone [`DhtMsg::Route`] carries.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteEnvelope<P> {
    /// Destination identifier on the ring.
    pub target: Id,
    /// Hops taken so far (loop guard and statistic).
    pub hops: u8,
    /// The operation to perform at the responsible node.
    pub body: RouteBody<P>,
}

impl<P: WireSize> WireSize for RouteEnvelope<P> {
    fn wire_size(&self) -> usize {
        20 + 1 + self.body.wire_size()
    }
}

/// Messages exchanged between DHT nodes.
#[derive(Clone, Debug)]
pub enum DhtMsg<P> {
    /// Multi-hop routing envelope: forwarded greedily toward `target`.
    Route {
        /// Destination identifier on the ring.
        target: Id,
        /// Hops taken so far (loop guard and statistic).
        hops: u8,
        /// The operation to perform at the responsible node.
        body: RouteBody<P>,
    },
    /// Several routed operations coalesced into one wire message because, at
    /// this hop, they all travel to the same peer.  Each receiving node splits
    /// the batch, delivers the envelopes it is responsible for, and re-groups
    /// the rest by *its* next hops — so batches stay coalesced along shared
    /// routing-path prefixes and amortize per-message overhead the whole way.
    RouteBatch {
        /// The coalesced operations (individual targets, one shared next hop).
        routes: Vec<RouteEnvelope<P>>,
    },
    /// Reply to [`RouteBody::FindSuccessor`]: `successor` is responsible for
    /// the identifier the request named.
    FoundSuccessor {
        /// Request correlation id.
        req_id: u64,
        /// The responsible node.
        successor: Peer,
        /// Hops the request took (reported for the routing benchmarks).
        hops: u8,
    },
    /// Ask a node for its predecessor and successor list (stabilization).
    GetNeighbors,
    /// Answer to [`DhtMsg::GetNeighbors`].
    Neighbors {
        /// The responder's predecessor, if known.
        predecessor: Option<Peer>,
        /// The responder's successor list (nearest first).
        successors: Vec<Peer>,
    },
    /// Chord `notify`: the sender believes it may be the receiver's predecessor.
    Notify {
        /// The sender.
        candidate: Peer,
    },
    /// Liveness probe.
    Ping {
        /// Correlates the pong.
        nonce: u64,
    },
    /// Liveness probe response.
    Pong {
        /// Nonce from the ping.
        nonce: u64,
    },
    /// Replicas of items pushed to a successor.
    Replicate {
        /// Items to store locally as replicas.
        items: Vec<WireItem<P>>,
    },
    /// Items handed over to the node that now owns their keys (after a join).
    Handoff {
        /// Items to adopt.
        items: Vec<WireItem<P>>,
    },
    /// Reply to a `Get`, sent directly to the requesting node.
    GetReply {
        /// Request correlation id.
        req_id: u64,
        /// The key that was looked up.
        key: ResourceKey,
        /// Matching items (key + value pairs).
        items: Vec<(ResourceKey, P)>,
    },
    /// An application payload sent point-to-point (no DHT routing); PIER uses
    /// this to stream results back to the query origin.
    Direct {
        /// Application payload.
        payload: P,
    },
    /// Several point-to-point payloads sharing one destination, coalesced
    /// into one wire frame (cross-query piggybacking: concurrent queries'
    /// results and partials — and pending statistics gossip — bound for the
    /// same node within one flush window ride together).  The receiver
    /// splits the frame into one [`Upcall::Direct`] per payload, so the
    /// application sees exactly what a sequence of `Direct`s would deliver.
    DirectBatch {
        /// The coalesced payloads, in send order.
        payloads: Vec<P>,
    },
    /// Recursive ring-partition broadcast (query dissemination).
    Broadcast {
        /// Application payload delivered to every reachable node.
        payload: P,
        /// The clockwise end of the ring segment this copy is responsible for.
        range_end: Id,
        /// Tree depth so far (statistic / loop guard).
        depth: u8,
    },
}

impl<P: WireSize> WireSize for DhtMsg<P> {
    fn wire_size(&self) -> usize {
        let header = 2; // message tag + version
        header
            + match self {
                DhtMsg::Route { body, .. } => 20 + 1 + body.wire_size(),
                DhtMsg::RouteBatch { routes } => {
                    4 + routes.iter().map(|r| r.wire_size()).sum::<usize>()
                }
                DhtMsg::FoundSuccessor { .. } => 8 + PEER_WIRE + 1,
                DhtMsg::GetNeighbors => 0,
                DhtMsg::Neighbors { predecessor, successors } => {
                    predecessor.map(|_| PEER_WIRE).unwrap_or(0) + 1 + successors.len() * PEER_WIRE
                }
                DhtMsg::Notify { .. } => PEER_WIRE,
                DhtMsg::Ping { .. } | DhtMsg::Pong { .. } => 8,
                DhtMsg::Replicate { items } | DhtMsg::Handoff { items } => {
                    4 + items.iter().map(|i| i.wire_size()).sum::<usize>()
                }
                DhtMsg::GetReply { key, items, .. } => {
                    8 + key.wire_size()
                        + 4
                        + items.iter().map(|(k, v)| k.wire_size() + v.wire_size()).sum::<usize>()
                }
                DhtMsg::Direct { payload } => payload.wire_size(),
                DhtMsg::DirectBatch { payloads } => {
                    4 + payloads.iter().map(|p| p.wire_size()).sum::<usize>()
                }
                DhtMsg::Broadcast { payload, .. } => payload.wire_size() + 20 + 1,
            }
    }
}

/// Events the DHT reports to the application layered on top of it (PIER).
#[derive(Clone, Debug, PartialEq)]
pub enum Upcall<P> {
    /// This node has successfully joined the ring.
    Joined,
    /// An application payload routed with `send_to_key` arrived here because
    /// this node is responsible for the key.
    Delivered {
        /// The key it was routed by.
        key: ResourceKey,
        /// The payload.
        payload: P,
    },
    /// A new item was stored locally (PIER's `newData` callback).
    NewItem {
        /// The stored item's key.
        key: ResourceKey,
        /// The stored item's value.
        value: P,
    },
    /// The answer to an earlier `get`.
    GetResult {
        /// Correlation id returned by `get`.
        req_id: u64,
        /// The key that was looked up.
        key: ResourceKey,
        /// All matching items.
        items: Vec<(ResourceKey, P)>,
    },
    /// The answer to an earlier `find_successor`.
    LookupResult {
        /// Correlation id returned by `find_successor`.
        req_id: u64,
        /// The node responsible for the queried identifier.
        successor: Peer,
        /// Hops the lookup took.
        hops: u8,
    },
    /// A broadcast payload reached this node.
    Broadcast {
        /// The payload.
        payload: P,
    },
    /// A point-to-point application payload arrived.
    Direct {
        /// The payload.
        payload: P,
        /// Sender's address.
        from: NodeAddr,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ResourceKey {
        ResourceKey::new("ns", "res", 1)
    }

    #[test]
    fn peer_debug_is_compact() {
        let p = Peer::new(NodeAddr(3), Id::from_u64(0xAABB));
        let s = format!("{p:?}");
        assert!(s.starts_with("n3@"));
    }

    #[test]
    fn wire_sizes_are_positive_and_ordered() {
        let small: DhtMsg<u64> = DhtMsg::Ping { nonce: 1 };
        let routed: DhtMsg<u64> = DhtMsg::Route {
            target: Id::from_u64(1),
            hops: 0,
            body: RouteBody::Put {
                item: WireItem { key: key(), value: 99u64, ttl_us: 1 },
                replicate: false,
            },
        };
        assert!(small.wire_size() > 0);
        assert!(routed.wire_size() > small.wire_size());
    }

    #[test]
    fn neighbors_size_scales_with_list() {
        let short: DhtMsg<u64> = DhtMsg::Neighbors {
            predecessor: None,
            successors: vec![Peer::new(NodeAddr(1), Id::from_u64(1))],
        };
        let long: DhtMsg<u64> = DhtMsg::Neighbors {
            predecessor: Some(Peer::new(NodeAddr(0), Id::from_u64(0))),
            successors: vec![Peer::new(NodeAddr(1), Id::from_u64(1)); 8],
        };
        assert!(long.wire_size() > short.wire_size());
    }

    #[test]
    fn get_reply_size_includes_items() {
        let empty: DhtMsg<u64> = DhtMsg::GetReply { req_id: 1, key: key(), items: vec![] };
        let full: DhtMsg<u64> =
            DhtMsg::GetReply { req_id: 1, key: key(), items: vec![(key(), 5u64), (key(), 6u64)] };
        assert!(full.wire_size() > empty.wire_size());
    }

    #[test]
    fn route_body_variants_have_distinct_sizes() {
        let put: RouteBody<u64> =
            RouteBody::Put { item: WireItem { key: key(), value: 1, ttl_us: 0 }, replicate: true };
        let get: RouteBody<u64> = RouteBody::Get { key: key(), req_id: 0, origin: NodeAddr(0) };
        let app: RouteBody<u64> = RouteBody::AppSend { key: key(), payload: 9 };
        let find: RouteBody<u64> = RouteBody::FindSuccessor { req_id: 0, origin: NodeAddr(0) };
        for body in [&put, &get, &app, &find] {
            assert!(body.wire_size() > 0);
        }
    }

    #[test]
    fn upcall_equality() {
        let a: Upcall<u64> = Upcall::Broadcast { payload: 1 };
        let b: Upcall<u64> = Upcall::Broadcast { payload: 1 };
        assert_eq!(a, b);
        assert_ne!(a, Upcall::Joined);
    }
}
