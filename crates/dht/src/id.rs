//! 160-bit identifiers and circular key-space arithmetic.
//!
//! Chord (and therefore PIER's DHT) places both nodes and data items on a
//! circular identifier space of size 2^160.  Node identifiers are obtained by
//! hashing the node's network address, item identifiers by hashing the item's
//! namespace and resource id.  The node *responsible* for a key is its
//! **successor**: the first node whose identifier is equal to or follows the
//! key clockwise around the ring.
//!
//! [`Id`] is a big-endian 160-bit unsigned integer with the modular arithmetic
//! the protocol needs: interval membership on the circle, `+ 2^i` for finger
//! targets, and clockwise distance.

use std::fmt;

/// Number of bits in an identifier (Chord's `m`).
pub const ID_BITS: usize = 160;
/// Number of bytes in an identifier.
pub const ID_BYTES: usize = ID_BITS / 8;

/// A 160-bit identifier on the Chord ring, stored big-endian.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Id(pub [u8; ID_BYTES]);

impl Id {
    /// The all-zero identifier.
    pub const ZERO: Id = Id([0; ID_BYTES]);
    /// The all-ones identifier (largest value on the ring).
    pub const MAX: Id = Id([0xFF; ID_BYTES]);

    /// Build an identifier from raw bytes.
    pub fn from_bytes(bytes: [u8; ID_BYTES]) -> Self {
        Id(bytes)
    }

    /// Build an identifier whose low 64 bits are `v` (useful in tests).
    pub fn from_u64(v: u64) -> Self {
        let mut b = [0u8; ID_BYTES];
        b[ID_BYTES - 8..].copy_from_slice(&v.to_be_bytes());
        Id(b)
    }

    /// The low 64 bits of the identifier (truncating view, for hashing into
    /// buckets and for compact debug output).
    pub fn low64(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.0[ID_BYTES - 8..]);
        u64::from_be_bytes(b)
    }

    /// The high 64 bits of the identifier (used for approximately uniform
    /// partitioning diagnostics).
    pub fn high64(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.0[..8]);
        u64::from_be_bytes(b)
    }

    /// Modular addition: `self + other (mod 2^160)`.
    pub fn wrapping_add(&self, other: &Id) -> Id {
        let mut out = [0u8; ID_BYTES];
        let mut carry = 0u16;
        for i in (0..ID_BYTES).rev() {
            let sum = self.0[i] as u16 + other.0[i] as u16 + carry;
            out[i] = (sum & 0xFF) as u8;
            carry = sum >> 8;
        }
        Id(out)
    }

    /// Modular subtraction: `self - other (mod 2^160)`.
    pub fn wrapping_sub(&self, other: &Id) -> Id {
        let mut out = [0u8; ID_BYTES];
        let mut borrow = 0i16;
        for i in (0..ID_BYTES).rev() {
            let diff = self.0[i] as i16 - other.0[i] as i16 - borrow;
            if diff < 0 {
                out[i] = (diff + 256) as u8;
                borrow = 1;
            } else {
                out[i] = diff as u8;
                borrow = 0;
            }
        }
        Id(out)
    }

    /// The identifier `2^k (mod 2^160)`; `2^160` wraps to zero.
    pub fn power_of_two(k: usize) -> Id {
        let mut b = [0u8; ID_BYTES];
        if k >= ID_BITS {
            return Id(b);
        }
        let byte = ID_BYTES - 1 - k / 8;
        b[byte] = 1u8 << (k % 8);
        Id(b)
    }

    /// Finger target `self + 2^k (mod 2^160)` — the start of Chord finger `k`.
    pub fn finger_target(&self, k: usize) -> Id {
        self.wrapping_add(&Id::power_of_two(k))
    }

    /// Clockwise distance from `self` to `other` on the ring.
    pub fn distance_to(&self, other: &Id) -> Id {
        other.wrapping_sub(self)
    }

    /// `true` if `self` lies in the open interval `(a, b)` going clockwise.
    ///
    /// When `a == b` the interval is the whole ring minus `a` itself, matching
    /// Chord's convention (a node whose successor is itself owns everything).
    pub fn in_open_interval(&self, a: &Id, b: &Id) -> bool {
        if a == b {
            return self != a;
        }
        if a < b {
            a < self && self < b
        } else {
            // Interval wraps around zero.
            self > a || self < b
        }
    }

    /// `true` if `self` lies in the half-open interval `(a, b]` clockwise.
    ///
    /// This is the ownership test: key `k` belongs to node `n` iff
    /// `k ∈ (predecessor(n), n]`.
    pub fn in_half_open_interval(&self, a: &Id, b: &Id) -> bool {
        if a == b {
            // Single-node ring: it owns every key.
            return true;
        }
        if a < b {
            a < self && self <= b
        } else {
            self > a || self <= b
        }
    }

    /// Number of leading bits shared with `other` (longest common prefix).
    pub fn common_prefix_bits(&self, other: &Id) -> usize {
        for i in 0..ID_BYTES {
            let x = self.0[i] ^ other.0[i];
            if x != 0 {
                return i * 8 + x.leading_zeros() as usize;
            }
        }
        ID_BITS
    }

    /// Short hexadecimal prefix, for logs.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Full hexadecimal representation.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({}…)", self.short_hex())
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_u64_round_trip() {
        let id = Id::from_u64(0xDEAD_BEEF_1234_5678);
        assert_eq!(id.low64(), 0xDEAD_BEEF_1234_5678);
        assert_eq!(id.high64(), 0);
    }

    #[test]
    fn wrapping_add_and_sub_are_inverses() {
        let a = Id::from_u64(12345);
        let b = Id::from_u64(99999);
        assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
        assert_eq!(a.wrapping_sub(&b).wrapping_add(&b), a);
    }

    #[test]
    fn add_carries_across_bytes() {
        let a = Id::from_u64(u64::MAX);
        let one = Id::from_u64(1);
        let sum = a.wrapping_add(&one);
        // 2^64 has a 1 in the 9th byte from the end.
        assert_eq!(sum.low64(), 0);
        assert_eq!(sum.0[ID_BYTES - 9], 1);
    }

    #[test]
    fn sub_wraps_around_zero() {
        let zero = Id::ZERO;
        let one = Id::from_u64(1);
        assert_eq!(zero.wrapping_sub(&one), Id::MAX);
    }

    #[test]
    fn max_plus_one_is_zero() {
        assert_eq!(Id::MAX.wrapping_add(&Id::from_u64(1)), Id::ZERO);
    }

    #[test]
    fn power_of_two_values() {
        assert_eq!(Id::power_of_two(0), Id::from_u64(1));
        assert_eq!(Id::power_of_two(10), Id::from_u64(1024));
        assert_eq!(Id::power_of_two(63), Id::from_u64(1u64 << 63));
        // Bit 64 sits just above the low64 view.
        let p64 = Id::power_of_two(64);
        assert_eq!(p64.low64(), 0);
        assert_eq!(p64.0[ID_BYTES - 9], 1);
        // 2^159 is the top bit.
        assert_eq!(Id::power_of_two(159).0[0], 0x80);
        // Out of range wraps to zero.
        assert_eq!(Id::power_of_two(160), Id::ZERO);
    }

    #[test]
    fn finger_targets_increase() {
        let n = Id::from_u64(1000);
        assert_eq!(n.finger_target(0), Id::from_u64(1001));
        assert_eq!(n.finger_target(4), Id::from_u64(1016));
    }

    #[test]
    fn open_interval_basic() {
        let a = Id::from_u64(10);
        let b = Id::from_u64(20);
        assert!(Id::from_u64(15).in_open_interval(&a, &b));
        assert!(!Id::from_u64(10).in_open_interval(&a, &b));
        assert!(!Id::from_u64(20).in_open_interval(&a, &b));
        assert!(!Id::from_u64(25).in_open_interval(&a, &b));
    }

    #[test]
    fn open_interval_wrapping() {
        let a = Id::from_u64(u64::MAX - 5);
        let b = Id::from_u64(10);
        assert!(Id::from_u64(3).in_open_interval(&a, &b));
        assert!(Id::MAX.in_open_interval(&a, &b));
        assert!(!Id::from_u64(500).in_open_interval(&a, &b));
    }

    #[test]
    fn open_interval_degenerate() {
        let a = Id::from_u64(7);
        // (a, a) is everything except a.
        assert!(Id::from_u64(8).in_open_interval(&a, &a));
        assert!(!a.in_open_interval(&a, &a));
    }

    #[test]
    fn half_open_interval_ownership() {
        let pred = Id::from_u64(100);
        let node = Id::from_u64(200);
        assert!(Id::from_u64(150).in_half_open_interval(&pred, &node));
        assert!(Id::from_u64(200).in_half_open_interval(&pred, &node));
        assert!(!Id::from_u64(100).in_half_open_interval(&pred, &node));
        assert!(!Id::from_u64(201).in_half_open_interval(&pred, &node));
        // Single node ring owns everything.
        assert!(Id::from_u64(5).in_half_open_interval(&node, &node));
        assert!(node.in_half_open_interval(&node, &node));
    }

    #[test]
    fn half_open_interval_wrapping() {
        let pred = Id::MAX.wrapping_sub(&Id::from_u64(10));
        let node = Id::from_u64(10);
        assert!(Id::from_u64(0).in_half_open_interval(&pred, &node));
        assert!(Id::from_u64(10).in_half_open_interval(&pred, &node));
        assert!(Id::MAX.in_half_open_interval(&pred, &node));
        assert!(!Id::from_u64(11).in_half_open_interval(&pred, &node));
    }

    #[test]
    fn distance_is_clockwise() {
        let a = Id::from_u64(100);
        let b = Id::from_u64(300);
        assert_eq!(a.distance_to(&b), Id::from_u64(200));
        // Going the other way wraps nearly all the way round.
        let back = b.distance_to(&a);
        assert!(back > Id::from_u64(1u64 << 60));
    }

    #[test]
    fn common_prefix() {
        let a = Id::from_bytes([0xFF; ID_BYTES]);
        let mut b = [0xFF; ID_BYTES];
        b[2] = 0x7F;
        assert_eq!(a.common_prefix_bits(&Id::from_bytes(b)), 16);
        assert_eq!(a.common_prefix_bits(&a), ID_BITS);
        assert_eq!(Id::ZERO.common_prefix_bits(&Id::MAX), 0);
    }

    #[test]
    fn hex_formatting() {
        let id = Id::from_bytes([0xAB; ID_BYTES]);
        assert_eq!(id.short_hex(), "abababab");
        assert_eq!(id.to_hex().len(), 40);
        assert!(format!("{id:?}").contains("abababab"));
        assert_eq!(format!("{id}"), "abababab");
    }

    #[test]
    fn ordering_matches_big_endian() {
        assert!(Id::from_u64(5) < Id::from_u64(6));
        assert!(Id::power_of_two(100) > Id::from_u64(u64::MAX));
    }
}
