//! SHA-1, used to map names to 160-bit ring identifiers.
//!
//! Chord and PIER both hash node addresses and data keys with SHA-1 onto the
//! 160-bit identifier circle.  Cryptographic strength is irrelevant here (the
//! DHT only needs a uniform spread), but implementing the real algorithm keeps
//! identifiers compatible with the published design and gives a stable,
//! well-testable mapping.  The implementation is self-contained — no external
//! crates.

use crate::id::{Id, ID_BYTES};

/// Compute the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Pre-processing: append 0x80, pad with zeros, append 64-bit bit length.
    let ml = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&ml.to_be_bytes());

    let mut w = [0u32; 80];
    for chunk in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                chunk[i * 4],
                chunk[i * 4 + 1],
                chunk[i * 4 + 2],
                chunk[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Hash arbitrary bytes onto the identifier ring.
pub fn hash_bytes(data: &[u8]) -> Id {
    Id::from_bytes(sha1(data))
}

/// Hash a string onto the identifier ring.
pub fn hash_str(s: &str) -> Id {
    hash_bytes(s.as_bytes())
}

/// Hash a sequence of logical fields, unambiguously: each field is prefixed
/// with its length so `("ab", "c")` and `("a", "bc")` map to different ids.
pub fn hash_fields(fields: &[&str]) -> Id {
    let mut buf = Vec::with_capacity(fields.iter().map(|f| f.len() + 4).sum());
    for f in fields {
        buf.extend_from_slice(&(f.len() as u32).to_be_bytes());
        buf.extend_from_slice(f.as_bytes());
    }
    hash_bytes(&buf)
}

/// Hash a node's network address onto the ring (Chord hashes IP:port; we hash
/// the simulator address).
pub fn hash_node_addr(addr: u32) -> Id {
    let mut buf = *b"node-addr:....";
    buf[10..14].copy_from_slice(&addr.to_be_bytes());
    hash_bytes(&buf)
}

const _: () = assert!(ID_BYTES == 20, "SHA-1 digests must fill an Id exactly");

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Known-answer tests from FIPS 180-1 / RFC 3174.
    #[test]
    fn sha1_known_vectors() {
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex(&sha1(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn sha1_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&sha1(&data)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn sha1_block_boundaries() {
        // Lengths around the 55/56/64 byte padding boundaries must not panic
        // and must produce distinct digests.
        let mut seen = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![0x5Au8; len];
            assert!(seen.insert(sha1(&data)), "collision at length {len}");
        }
    }

    #[test]
    fn hash_str_is_stable() {
        let a = hash_str("netstats");
        let b = hash_str("netstats");
        assert_eq!(a, b);
        assert_ne!(a, hash_str("netstats2"));
    }

    #[test]
    fn hash_fields_is_unambiguous() {
        assert_ne!(hash_fields(&["ab", "c"]), hash_fields(&["a", "bc"]));
        assert_ne!(hash_fields(&["ab"]), hash_fields(&["ab", ""]));
        assert_eq!(hash_fields(&["x", "y"]), hash_fields(&["x", "y"]));
    }

    #[test]
    fn node_addr_hashes_spread() {
        let ids: Vec<Id> = (0..100).map(hash_node_addr).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "node ids must be distinct");
        // Rough uniformity: both halves of the ring are populated.
        let top_half = ids.iter().filter(|id| id.0[0] >= 0x80).count();
        assert!(top_half > 20 && top_half < 80, "top half {top_half}");
    }
}
