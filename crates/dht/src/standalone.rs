//! A ready-made simulator node that hosts a bare DHT.
//!
//! PIER embeds [`DhtNode`] inside its own engine node, but the DHT is useful
//! (and testable) on its own: [`StandaloneDht`] implements
//! [`pier_simnet::Node`] directly and records every upcall so tests and the
//! routing benchmarks can drive a pure overlay without the query layer.

use crate::config::DhtConfig;
use crate::messages::{DhtMsg, Upcall};
use crate::node::{timers, DhtNode};
use pier_simnet::{Context, Node, NodeAddr, WireSize};

/// A simulator node containing only a DHT and an upcall log.
pub struct StandaloneDht<P> {
    /// The DHT protocol state machine.
    pub dht: DhtNode<P>,
    /// Every upcall the DHT has produced, in order.
    pub upcalls: Vec<Upcall<P>>,
}

impl<P: Clone + WireSize> StandaloneDht<P> {
    /// Create a standalone DHT node.
    pub fn new(addr: NodeAddr, config: DhtConfig, bootstrap: Option<NodeAddr>) -> Self {
        StandaloneDht { dht: DhtNode::new(addr, config, bootstrap), upcalls: Vec::new() }
    }

    fn collect(&mut self) {
        self.upcalls.extend(self.dht.take_upcalls());
    }

    /// Number of upcalls of a particular kind, as judged by a predicate.
    pub fn count_upcalls(&self, f: impl Fn(&Upcall<P>) -> bool) -> usize {
        self.upcalls.iter().filter(|u| f(u)).count()
    }

    /// Remove and return all recorded upcalls.
    pub fn drain_upcalls(&mut self) -> Vec<Upcall<P>> {
        std::mem::take(&mut self.upcalls)
    }
}

impl<P: Clone + WireSize> Node for StandaloneDht<P> {
    type Msg = DhtMsg<P>;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        self.dht.start(ctx);
        self.collect();
    }

    fn on_message(&mut self, ctx: &mut Context<Self::Msg>, from: NodeAddr, msg: Self::Msg) {
        self.dht.handle_message(ctx, from, msg);
        self.collect();
    }

    fn on_timer(&mut self, ctx: &mut Context<Self::Msg>, token: u64) {
        if (timers::TOKEN_BASE..timers::TOKEN_LIMIT).contains(&token) {
            self.dht.handle_timer(ctx, token);
        }
        self.collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ResourceKey;
    use pier_simnet::{Duration, LatencyModel, SimConfig, Simulation};

    fn build_ring(n: usize, seed: u64) -> Simulation<StandaloneDht<u64>> {
        let mut sim = Simulation::new(
            SimConfig {
                seed,
                latency: LatencyModel::Uniform {
                    min: Duration::from_millis(5),
                    max: Duration::from_millis(40),
                },
                ..Default::default()
            },
            |addr| {
                let bootstrap = if addr.0 == 0 { None } else { Some(NodeAddr(0)) };
                StandaloneDht::new(addr, DhtConfig::fast_test(), bootstrap)
            },
        );
        sim.add_nodes(n);
        sim
    }

    #[test]
    fn small_ring_converges_and_routes_puts() {
        let mut sim = build_ring(8, 42);
        sim.run_for(Duration::from_secs(20));

        // Every node has joined and has a predecessor and successor != self.
        for addr in sim.alive_nodes() {
            let node = sim.node(addr).unwrap();
            assert!(node.dht.is_joined(), "{addr} not joined");
            assert_ne!(node.dht.successor().addr, addr, "{addr} successor is self");
            assert!(node.dht.predecessor().is_some(), "{addr} has no predecessor");
        }

        // Put 50 items from node 0; they should all be stored somewhere.
        for i in 0..50u64 {
            sim.invoke(NodeAddr(0), |node, ctx| {
                let key = ResourceKey::new("t", format!("item-{i}"), 0);
                node.dht.put(ctx, key, i, None);
            });
        }
        sim.run_for(Duration::from_secs(5));
        let total: usize =
            sim.alive_nodes().iter().map(|&a| sim.node(a).unwrap().dht.store_len()).sum();
        assert!(total >= 50, "only {total} items stored");
    }

    #[test]
    fn broadcast_reaches_all_nodes() {
        let mut sim = build_ring(12, 7);
        sim.run_for(Duration::from_secs(20));
        sim.invoke(NodeAddr(3), |node, ctx| node.dht.broadcast(ctx, 999));
        sim.run_for(Duration::from_secs(5));
        let mut reached = 0;
        for addr in sim.alive_nodes() {
            let node = sim.node(addr).unwrap();
            if node.count_upcalls(|u| matches!(u, Upcall::Broadcast { payload: 999 })) > 0 {
                reached += 1;
            }
        }
        assert_eq!(reached, 12, "broadcast reached {reached}/12 nodes");
    }
}
