//! DHT protocol configuration.

use pier_simnet::Duration;

/// Tunable parameters of the Chord-style overlay and its soft-state storage.
///
/// The defaults are scaled for simulations of a few hundred to a few thousand
/// nodes with wide-area latencies; they correspond to the periodic-recovery
/// settings the Bamboo paper recommends for PlanetLab-like churn.
#[derive(Clone, Debug)]
pub struct DhtConfig {
    /// Length of the successor list (fault tolerance of ring connectivity).
    pub successor_list_len: usize,
    /// How many finger-table entries to actively maintain.  160 is the full
    /// Chord table; maintaining ~2·log2(n) is enough in practice and keeps
    /// maintenance traffic low.
    pub finger_count: usize,
    /// Period between stabilization rounds (successor/predecessor refresh).
    pub stabilize_interval: Duration,
    /// Period between finger-table refresh steps (one finger per round).
    pub fix_finger_interval: Duration,
    /// Period between liveness probes of neighbors.
    pub ping_interval: Duration,
    /// A neighbor that has not answered a probe for this long is declared dead.
    pub failure_timeout: Duration,
    /// Period between soft-state expiry sweeps.
    pub storage_sweep_interval: Duration,
    /// Default time-to-live of stored items when the caller does not specify.
    pub default_ttl: Duration,
    /// Number of additional successor replicas for each stored item.
    pub replication_factor: usize,
    /// Maximum hops a routed message may take before being dropped (loop guard).
    pub max_route_hops: u8,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            successor_list_len: 8,
            finger_count: 64,
            stabilize_interval: Duration::from_millis(500),
            fix_finger_interval: Duration::from_millis(250),
            ping_interval: Duration::from_millis(1_000),
            failure_timeout: Duration::from_millis(3_000),
            storage_sweep_interval: Duration::from_secs(5),
            default_ttl: Duration::from_secs(120),
            replication_factor: 1,
            max_route_hops: 64,
        }
    }
}

impl DhtConfig {
    /// A configuration with faster maintenance for small test rings, so that
    /// unit and integration tests converge quickly.
    pub fn fast_test() -> Self {
        DhtConfig {
            successor_list_len: 4,
            finger_count: 32,
            stabilize_interval: Duration::from_millis(100),
            fix_finger_interval: Duration::from_millis(50),
            ping_interval: Duration::from_millis(200),
            failure_timeout: Duration::from_millis(800),
            storage_sweep_interval: Duration::from_millis(500),
            default_ttl: Duration::from_secs(60),
            replication_factor: 1,
            max_route_hops: 64,
        }
    }

    /// Configuration used by the PlanetLab-scale experiments (300+ nodes).
    pub fn planetlab() -> Self {
        DhtConfig {
            successor_list_len: 8,
            finger_count: 64,
            stabilize_interval: Duration::from_millis(1_000),
            fix_finger_interval: Duration::from_millis(500),
            ping_interval: Duration::from_millis(2_000),
            failure_timeout: Duration::from_secs(6),
            storage_sweep_interval: Duration::from_secs(10),
            default_ttl: Duration::from_secs(300),
            replication_factor: 2,
            max_route_hops: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DhtConfig::default();
        assert!(c.successor_list_len >= 2);
        assert!(c.finger_count > 0 && c.finger_count <= 160);
        assert!(c.failure_timeout > c.ping_interval);
        assert!(c.max_route_hops >= 32);
    }

    #[test]
    fn fast_test_is_faster() {
        let fast = DhtConfig::fast_test();
        let def = DhtConfig::default();
        assert!(fast.stabilize_interval < def.stabilize_interval);
        assert!(fast.failure_timeout < def.failure_timeout);
    }

    #[test]
    fn planetlab_replicates() {
        assert!(DhtConfig::planetlab().replication_factor >= 2);
    }
}
