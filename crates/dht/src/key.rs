//! PIER's three-part naming scheme for DHT-resident data.
//!
//! PIER names every item with a `(namespace, resourceId, instanceId)` triple:
//!
//! * the **namespace** identifies the relation (e.g. `"netstats"`) or a
//!   query-scoped temporary table (e.g. `"join:q42:probe"`);
//! * the **resource id** is the value the relation is partitioned on — for a
//!   base table usually the primary key, for a rehash join the join key;
//! * the **instance id** distinguishes multiple items with the same
//!   namespace/resource (e.g. successive readings from the same host).
//!
//! The DHT key an item is routed by is `hash(namespace, resourceId)`; the
//! instance id only disambiguates storage locally.

use crate::hash::hash_fields;
use crate::id::Id;
use pier_simnet::WireSize;
use std::fmt;

/// The `(namespace, resourceId, instanceId)` name of a DHT item.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceKey {
    /// Relation / table / group name.
    pub namespace: String,
    /// Partitioning value within the namespace.
    pub resource: String,
    /// Disambiguator among items sharing `(namespace, resource)`.
    pub instance: u64,
}

impl ResourceKey {
    /// Create a key with an explicit instance id.
    pub fn new(namespace: impl Into<String>, resource: impl Into<String>, instance: u64) -> Self {
        ResourceKey { namespace: namespace.into(), resource: resource.into(), instance }
    }

    /// Create a key with instance id 0 (for singleton resources).
    pub fn singleton(namespace: impl Into<String>, resource: impl Into<String>) -> Self {
        Self::new(namespace, resource, 0)
    }

    /// The ring identifier this key routes to: `hash(namespace, resource)`.
    pub fn routing_id(&self) -> Id {
        hash_fields(&[&self.namespace, &self.resource])
    }

    /// The ring identifier of the namespace itself (used as the root of
    /// namespace-wide operations such as broadcasts scoped to a table).
    pub fn namespace_id(namespace: &str) -> Id {
        hash_fields(&[namespace])
    }
}

impl fmt::Debug for ResourceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}#{}", self.namespace, self.resource, self.instance)
    }
}

impl fmt::Display for ResourceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}#{}", self.namespace, self.resource, self.instance)
    }
}

impl WireSize for ResourceKey {
    fn wire_size(&self) -> usize {
        4 + self.namespace.len() + 4 + self.resource.len() + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_id_ignores_instance() {
        let a = ResourceKey::new("netstats", "host-3", 1);
        let b = ResourceKey::new("netstats", "host-3", 99);
        assert_eq!(a.routing_id(), b.routing_id());
    }

    #[test]
    fn routing_id_depends_on_namespace_and_resource() {
        let a = ResourceKey::singleton("netstats", "host-3");
        let b = ResourceKey::singleton("netstats", "host-4");
        let c = ResourceKey::singleton("intrusions", "host-3");
        assert_ne!(a.routing_id(), b.routing_id());
        assert_ne!(a.routing_id(), c.routing_id());
    }

    #[test]
    fn namespace_id_is_stable() {
        assert_eq!(ResourceKey::namespace_id("t"), ResourceKey::namespace_id("t"));
        assert_ne!(ResourceKey::namespace_id("t"), ResourceKey::namespace_id("u"));
    }

    #[test]
    fn display_and_wire_size() {
        let k = ResourceKey::new("ns", "res", 7);
        assert_eq!(format!("{k}"), "ns/res#7");
        assert_eq!(format!("{k:?}"), "ns/res#7");
        assert_eq!(k.wire_size(), 4 + 2 + 4 + 3 + 8);
    }

    #[test]
    fn singleton_has_instance_zero() {
        assert_eq!(ResourceKey::singleton("a", "b").instance, 0);
    }
}
