//! # pier-dht — the distributed hash table underneath PIER
//!
//! PIER ("Peer-to-Peer Information Exchange and Retrieval") uses a DHT as its
//! communication substrate to obtain *scalability, reliability, decentralized
//! control, and load balancing*.  This crate implements that substrate:
//!
//! * a 160-bit circular identifier space with SHA-1 hashing ([`id`], [`hash`]);
//! * a Chord-style overlay — successor lists, finger tables, periodic
//!   stabilization and failure recovery ([`node`]);
//! * multi-hop, greedy key-based routing;
//! * soft-state item storage named by PIER's `(namespace, resource, instance)`
//!   triples, with TTL expiry and local scans ([`storage`], [`key`]);
//! * a recursive broadcast used for query dissemination;
//! * the application API PIER programs against: `put`, `get`, `send_to_key`,
//!   `send_direct`, `lscan`, `broadcast`, plus `newData`-style upcalls
//!   ([`messages::Upcall`]).
//!
//! The crate is transport-agnostic: all I/O goes through the deterministic
//! discrete-event simulator in [`pier_simnet`], so whole 300+ node overlays run
//! reproducibly inside one process.
//!
//! ## Quick example
//!
//! ```
//! use pier_dht::{DhtConfig, StandaloneDht, ResourceKey, Upcall};
//! use pier_simnet::{Duration, NodeAddr, SimConfig, Simulation};
//!
//! // Build a 16-node ring.
//! let mut sim = Simulation::new(SimConfig::with_seed(1), |addr| {
//!     let bootstrap = if addr.0 == 0 { None } else { Some(NodeAddr(0)) };
//!     StandaloneDht::<u64>::new(addr, DhtConfig::fast_test(), bootstrap)
//! });
//! sim.add_nodes(16);
//! sim.run_for(Duration::from_secs(30));
//!
//! // Store an item from node 5 and broadcast a value from node 2.
//! sim.invoke(NodeAddr(5), |n, ctx| n.dht.put(ctx, ResourceKey::new("t", "k", 0), 7u64, None));
//! sim.invoke(NodeAddr(2), |n, ctx| n.dht.broadcast(ctx, 99u64));
//! sim.run_for(Duration::from_secs(5));
//!
//! let stored: usize = sim.alive_nodes().iter()
//!     .map(|&a| sim.node(a).unwrap().dht.store_len()).sum();
//! assert!(stored >= 1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod hash;
pub mod id;
pub mod key;
pub mod messages;
pub mod node;
pub mod standalone;
pub mod storage;

pub use config::DhtConfig;
pub use hash::{hash_bytes, hash_fields, hash_node_addr, hash_str, sha1};
pub use id::{Id, ID_BITS, ID_BYTES};
pub use key::ResourceKey;
pub use messages::{DhtMsg, Peer, RouteBody, Upcall, WireItem};
pub use node::{timers, DhtNode, DhtStats};
pub use standalone::StandaloneDht;
pub use storage::{Item, SoftStateStore};
