//! Property-based tests for the DHT's identifier arithmetic, hashing, and
//! soft-state storage invariants.
//!
//! Cases are generated with the simulator's deterministic RNG (the container
//! has no third-party property-testing crate); each property is checked over a
//! few hundred random cases, so failures reproduce bit-identically.

use pier_dht::{hash_bytes, sha1, Id, ResourceKey, SoftStateStore};
use pier_simnet::{DetRng, Duration, SimTime};

const CASES: usize = 256;

fn arb_id(rng: &mut DetRng) -> Id {
    let mut bytes = [0u8; 20];
    rng.fill_bytes(&mut bytes);
    Id::from_bytes(bytes)
}

fn arb_bytes(rng: &mut DetRng, max_len: usize) -> Vec<u8> {
    let len = rng.index(max_len + 1);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Addition and subtraction on the ring are inverses.
#[test]
fn add_sub_roundtrip() {
    let mut rng = DetRng::new(0xD417_0001);
    for _ in 0..CASES {
        let a = arb_id(&mut rng);
        let b = arb_id(&mut rng);
        assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
        assert_eq!(a.wrapping_sub(&b).wrapping_add(&b), a);
    }
}

/// Ring addition is commutative.
#[test]
fn add_commutative() {
    let mut rng = DetRng::new(0xD417_0002);
    for _ in 0..CASES {
        let a = arb_id(&mut rng);
        let b = arb_id(&mut rng);
        assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
    }
}

/// Clockwise distances around the ring sum to zero (a full revolution).
#[test]
fn distances_sum_to_full_circle() {
    let mut rng = DetRng::new(0xD417_0003);
    for _ in 0..CASES {
        let a = arb_id(&mut rng);
        let b = arb_id(&mut rng);
        let d1 = a.distance_to(&b);
        let d2 = b.distance_to(&a);
        assert_eq!(d1.wrapping_add(&d2), Id::ZERO);
    }
}

/// For distinct points, exactly one of "c in (a,b)" / "c in (b,a)" /
/// "c == a" / "c == b" holds — the two arcs partition the rest of the ring.
#[test]
fn open_intervals_partition_ring() {
    let mut rng = DetRng::new(0xD417_0004);
    for _ in 0..CASES {
        let a = arb_id(&mut rng);
        let b = arb_id(&mut rng);
        if a == b {
            continue;
        }
        let c = arb_id(&mut rng);
        let in_ab = c.in_open_interval(&a, &b);
        let in_ba = c.in_open_interval(&b, &a);
        let on_endpoint = c == a || c == b;
        let count = [in_ab, in_ba, on_endpoint].iter().filter(|x| **x).count();
        assert_eq!(count, 1, "c must be in exactly one region");
    }
}

/// The half-open interval (a, b] contains b and never contains a (when a != b).
#[test]
fn half_open_interval_endpoints() {
    let mut rng = DetRng::new(0xD417_0005);
    for _ in 0..CASES {
        let a = arb_id(&mut rng);
        let b = arb_id(&mut rng);
        if a == b {
            continue;
        }
        assert!(b.in_half_open_interval(&a, &b));
        assert!(!a.in_half_open_interval(&a, &b));
    }
}

/// Successor ownership intervals of a set of nodes cover every key exactly once.
#[test]
fn ownership_partitions_key_space() {
    let mut rng = DetRng::new(0xD417_0006);
    for _ in 0..CASES {
        let count = 2 + rng.index(10);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < count {
            set.insert(arb_id(&mut rng));
        }
        let ids: Vec<Id> = set.into_iter().collect();
        let key = arb_id(&mut rng);
        // Each node i owns (pred_i, id_i]. Count owners of `key`.
        let n = ids.len();
        let mut owners = 0;
        for i in 0..n {
            let pred = ids[(i + n - 1) % n];
            let me = ids[i];
            if key.in_half_open_interval(&pred, &me) {
                owners += 1;
            }
        }
        assert_eq!(owners, 1, "every key must have exactly one owner");
    }
}

/// SHA-1 is deterministic and spreads distinct inputs to distinct ids.
#[test]
fn sha1_deterministic() {
    let mut rng = DetRng::new(0xD417_0007);
    for _ in 0..CASES {
        let data = arb_bytes(&mut rng, 255);
        assert_eq!(sha1(&data), sha1(&data));
        assert_eq!(hash_bytes(&data), hash_bytes(&data));
    }
}

/// Appending a byte changes the digest (no trivial length-extension equality).
#[test]
fn sha1_sensitive_to_append() {
    let mut rng = DetRng::new(0xD417_0008);
    for _ in 0..CASES {
        let data = arb_bytes(&mut rng, 127);
        let extra = (rng.next_u64() & 0xFF) as u8;
        let mut longer = data.clone();
        longer.push(extra);
        assert_ne!(sha1(&data), sha1(&longer));
    }
}

/// Soft-state storage: items are visible before expiry and gone afterwards,
/// and `len()` matches the number of distinct keys inserted.
#[test]
fn storage_ttl_and_len() {
    let mut rng = DetRng::new(0xD417_0009);
    for _ in 0..64 {
        let entries: Vec<(u8, u8, u64)> = (0..1 + rng.index(39))
            .map(|_| (rng.index(20) as u8, rng.index(20) as u8, 1 + rng.range_u64(0, 49)))
            .collect();
        let ttl_secs = 1 + rng.range_u64(0, 99);
        let mut store: SoftStateStore<u64> = SoftStateStore::new();
        let ttl = Duration::from_secs(ttl_secs);
        let mut distinct = std::collections::BTreeSet::new();
        for (ns, res, inst) in &entries {
            let key = ResourceKey::new(format!("ns{ns}"), format!("r{res}"), *inst);
            distinct.insert((key.namespace.clone(), key.resource.clone(), key.instance));
            store.put(key, 1, SimTime::ZERO, ttl);
        }
        assert_eq!(store.len(), distinct.len());

        // Just before expiry everything is visible.
        let before = SimTime::from_micros(ttl_secs * 1_000_000 - 1);
        let visible: usize = store.all_items(before).len();
        assert_eq!(visible, distinct.len());

        // At/after expiry nothing is visible and sweep removes everything.
        let after = SimTime::from_secs(ttl_secs);
        assert_eq!(store.all_items(after).len(), 0);
        let removed = store.sweep(after);
        assert_eq!(removed, distinct.len());
        assert!(store.is_empty());
    }
}

/// Routing ids depend only on namespace + resource, never on instance.
#[test]
fn routing_id_instance_independent() {
    let mut rng = DetRng::new(0xD417_000A);
    for _ in 0..CASES {
        let ns: String =
            (0..1 + rng.index(8)).map(|_| (b'a' + rng.index(26) as u8) as char).collect();
        let res: String = (0..1 + rng.index(8))
            .map(|_| {
                let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789";
                alphabet[rng.index(alphabet.len())] as char
            })
            .collect();
        let i1 = rng.next_u64();
        let i2 = rng.next_u64();
        let a = ResourceKey::new(ns.clone(), res.clone(), i1);
        let b = ResourceKey::new(ns, res, i2);
        assert_eq!(a.routing_id(), b.routing_id());
    }
}
