//! Property-based tests for the DHT's identifier arithmetic, hashing, and
//! soft-state storage invariants.

use pier_dht::{hash_bytes, sha1, Id, ResourceKey, SoftStateStore};
use pier_simnet::{Duration, SimTime};
use proptest::prelude::*;

fn arb_id() -> impl Strategy<Value = Id> {
    proptest::array::uniform20(any::<u8>()).prop_map(Id::from_bytes)
}

proptest! {
    /// Addition and subtraction on the ring are inverses.
    #[test]
    fn add_sub_roundtrip(a in arb_id(), b in arb_id()) {
        prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
        prop_assert_eq!(a.wrapping_sub(&b).wrapping_add(&b), a);
    }

    /// Ring addition is commutative.
    #[test]
    fn add_commutative(a in arb_id(), b in arb_id()) {
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
    }

    /// Clockwise distances around the ring sum to zero (a full revolution).
    #[test]
    fn distances_sum_to_full_circle(a in arb_id(), b in arb_id()) {
        let d1 = a.distance_to(&b);
        let d2 = b.distance_to(&a);
        prop_assert_eq!(d1.wrapping_add(&d2), Id::ZERO);
    }

    /// For distinct points, exactly one of "c in (a,b)" / "c in (b,a)" /
    /// "c == a" / "c == b" holds — the two arcs partition the rest of the ring.
    #[test]
    fn open_intervals_partition_ring(a in arb_id(), b in arb_id(), c in arb_id()) {
        prop_assume!(a != b);
        let in_ab = c.in_open_interval(&a, &b);
        let in_ba = c.in_open_interval(&b, &a);
        let on_endpoint = c == a || c == b;
        let count = [in_ab, in_ba, on_endpoint].iter().filter(|x| **x).count();
        prop_assert_eq!(count, 1, "c must be in exactly one region");
    }

    /// The half-open interval (a, b] contains b and never contains a (when a != b).
    #[test]
    fn half_open_interval_endpoints(a in arb_id(), b in arb_id()) {
        prop_assume!(a != b);
        prop_assert!(b.in_half_open_interval(&a, &b));
        prop_assert!(!a.in_half_open_interval(&a, &b));
    }

    /// Successor ownership intervals of a set of nodes cover every key exactly once.
    #[test]
    fn ownership_partitions_key_space(mut node_ids in proptest::collection::btree_set(arb_id(), 2..12), key in arb_id()) {
        let ids: Vec<Id> = node_ids.iter().copied().collect();
        node_ids.clear();
        // Each node i owns (pred_i, id_i]. Count owners of `key`.
        let n = ids.len();
        let mut owners = 0;
        for i in 0..n {
            let pred = ids[(i + n - 1) % n];
            let me = ids[i];
            if key.in_half_open_interval(&pred, &me) {
                owners += 1;
            }
        }
        prop_assert_eq!(owners, 1, "every key must have exactly one owner");
    }

    /// SHA-1 is deterministic and spreads distinct inputs to distinct ids.
    #[test]
    fn sha1_deterministic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(sha1(&data), sha1(&data));
        prop_assert_eq!(hash_bytes(&data), hash_bytes(&data));
    }

    /// Appending a byte changes the digest (no trivial length-extension equality).
    #[test]
    fn sha1_sensitive_to_append(data in proptest::collection::vec(any::<u8>(), 0..128), extra in any::<u8>()) {
        let mut longer = data.clone();
        longer.push(extra);
        prop_assert_ne!(sha1(&data), sha1(&longer));
    }

    /// Soft-state storage: items are visible before expiry and gone afterwards,
    /// and `len()` matches the number of distinct keys inserted.
    #[test]
    fn storage_ttl_and_len(
        entries in proptest::collection::vec((0u8..20, 0u8..20, 1u64..50), 1..40),
        ttl_secs in 1u64..100,
    ) {
        let mut store: SoftStateStore<u64> = SoftStateStore::new();
        let ttl = Duration::from_secs(ttl_secs);
        let mut distinct = std::collections::BTreeSet::new();
        for (ns, res, inst) in &entries {
            let key = ResourceKey::new(format!("ns{ns}"), format!("r{res}"), *inst);
            distinct.insert((key.namespace.clone(), key.resource.clone(), key.instance));
            store.put(key, 1, SimTime::ZERO, ttl);
        }
        prop_assert_eq!(store.len(), distinct.len());

        // Just before expiry everything is visible.
        let before = SimTime::from_micros(ttl_secs * 1_000_000 - 1);
        let visible: usize = store.all_items(before).len();
        prop_assert_eq!(visible, distinct.len());

        // At/after expiry nothing is visible and sweep removes everything.
        let after = SimTime::from_secs(ttl_secs);
        prop_assert_eq!(store.all_items(after).len(), 0);
        let removed = store.sweep(after);
        prop_assert_eq!(removed, distinct.len());
        prop_assert!(store.is_empty());
    }

    /// Routing ids depend only on namespace + resource, never on instance.
    #[test]
    fn routing_id_instance_independent(ns in "[a-z]{1,8}", res in "[a-z0-9]{1,8}", i1 in any::<u64>(), i2 in any::<u64>()) {
        let a = ResourceKey::new(ns.clone(), res.clone(), i1);
        let b = ResourceKey::new(ns, res, i2);
        prop_assert_eq!(a.routing_id(), b.routing_id());
    }
}
