//! Integration tests: whole Chord rings under the discrete-event simulator.
//!
//! These exercise join, stabilization, routing consistency, storage placement,
//! replication, churn recovery, and broadcast coverage on rings of dozens of
//! nodes — the overlay behaviour PIER depends on.

use pier_dht::{DhtConfig, Id, ResourceKey, StandaloneDht, Upcall};
use pier_simnet::{
    ChurnSchedule, Duration, LatencyModel, LossModel, NodeAddr, SimConfig, SimTime, Simulation,
};

type Ring = Simulation<StandaloneDht<u64>>;

fn build_ring(n: usize, seed: u64, config: DhtConfig, loss: LossModel) -> Ring {
    let mut sim = Simulation::new(
        SimConfig {
            seed,
            latency: LatencyModel::Uniform {
                min: Duration::from_millis(5),
                max: Duration::from_millis(60),
            },
            loss,
            ..Default::default()
        },
        move |addr| {
            let bootstrap = if addr.0 == 0 { None } else { Some(NodeAddr(0)) };
            StandaloneDht::new(addr, config.clone(), bootstrap)
        },
    );
    sim.add_nodes(n);
    sim
}

/// The ring is *consistent* when following successor pointers from node 0
/// visits every live node exactly once and returns to node 0.
fn ring_is_consistent(sim: &Ring) -> bool {
    let alive = sim.alive_nodes();
    if alive.is_empty() {
        return true;
    }
    let start = alive[0];
    let mut visited = std::collections::BTreeSet::new();
    let mut current = start;
    for _ in 0..=alive.len() {
        if !visited.insert(current) {
            break;
        }
        let succ = sim.node(current).unwrap().dht.successor().addr;
        current = succ;
        if current == start {
            break;
        }
    }
    visited.len() == alive.len() && current == start
}

#[test]
fn ring_of_32_converges() {
    let mut sim = build_ring(32, 1, DhtConfig::fast_test(), LossModel::None);
    sim.run_for(Duration::from_secs(30));
    assert!(ring_is_consistent(&sim), "successor ring did not converge");
    for addr in sim.alive_nodes() {
        let node = sim.node(addr).unwrap();
        assert!(node.dht.is_joined());
        assert!(node.dht.predecessor().is_some(), "{addr} has no predecessor");
        assert!(node.dht.fingers_filled() > 0, "{addr} has no fingers");
        assert!(node.dht.successor_list().len() > 1, "{addr} successor list too short");
    }
}

#[test]
fn lookups_agree_with_global_successor_computation() {
    let mut sim = build_ring(24, 2, DhtConfig::fast_test(), LossModel::None);
    sim.run_for(Duration::from_secs(30));
    assert!(ring_is_consistent(&sim));

    // Global view: sorted node ids.
    let mut nodes: Vec<(Id, NodeAddr)> =
        sim.alive_nodes().iter().map(|&a| (sim.node(a).unwrap().dht.id(), a)).collect();
    nodes.sort();
    let expected_owner = |key: &Id| -> NodeAddr {
        nodes.iter().find(|(id, _)| key <= id).map(|(_, a)| *a).unwrap_or(nodes[0].1)
        // wraps to the smallest id
    };

    // Issue lookups for a spread of keys from several origins.
    let keys: Vec<Id> = (0..40u64).map(|i| pier_dht::hash_str(&format!("probe-{i}"))).collect();
    let mut expected = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let origin = NodeAddr((i % 24) as u32);
        let req = sim.invoke(origin, |node, ctx| node.dht.find_successor(ctx, *key)).unwrap();
        expected.push((origin, req, expected_owner(key)));
    }
    sim.run_for(Duration::from_secs(10));

    let mut correct = 0;
    for (origin, req, owner) in &expected {
        let node = sim.node(*origin).unwrap();
        let found = node.upcalls.iter().find_map(|u| match u {
            Upcall::LookupResult { req_id, successor, .. } if req_id == req => Some(successor.addr),
            _ => None,
        });
        if found == Some(*owner) {
            correct += 1;
        }
    }
    assert_eq!(correct, expected.len(), "only {correct}/{} lookups correct", expected.len());
}

#[test]
fn put_places_items_at_responsible_nodes() {
    let mut sim = build_ring(16, 3, DhtConfig::fast_test(), LossModel::None);
    sim.run_for(Duration::from_secs(25));
    assert!(ring_is_consistent(&sim));

    let n_items = 80u64;
    for i in 0..n_items {
        let origin = NodeAddr((i % 16) as u32);
        sim.invoke(origin, |node, ctx| {
            node.dht.put(ctx, ResourceKey::new("table", format!("row-{i}"), i), i, None);
        });
    }
    sim.run_for(Duration::from_secs(10));

    // Global ownership check: each item must be present at its responsible node.
    let mut nodes: Vec<(Id, NodeAddr)> =
        sim.alive_nodes().iter().map(|&a| (sim.node(a).unwrap().dht.id(), a)).collect();
    nodes.sort();
    let owner_of = |key: &Id| -> NodeAddr {
        nodes.iter().find(|(id, _)| key <= id).map(|(_, a)| *a).unwrap_or(nodes[0].1)
    };

    let mut placed_correctly = 0;
    for i in 0..n_items {
        let key = ResourceKey::new("table", format!("row-{i}"), i);
        let owner = owner_of(&key.routing_id());
        let items = sim.node(owner).unwrap().dht.lscan("table", sim.now());
        if items.iter().any(|(k, v)| k.resource == format!("row-{i}") && *v == i) {
            placed_correctly += 1;
        }
    }
    assert_eq!(placed_correctly, n_items, "{placed_correctly}/{n_items} items at the right node");
}

#[test]
fn get_returns_previously_put_items() {
    let mut sim = build_ring(12, 4, DhtConfig::fast_test(), LossModel::None);
    sim.run_for(Duration::from_secs(25));

    sim.invoke(NodeAddr(2), |node, ctx| {
        node.dht.put(ctx, ResourceKey::new("inventory", "widget", 1), 111, None);
        node.dht.put(ctx, ResourceKey::new("inventory", "widget", 2), 222, None);
    });
    sim.run_for(Duration::from_secs(5));

    let req = sim
        .invoke(NodeAddr(9), |node, ctx| {
            node.dht.get(ctx, ResourceKey::singleton("inventory", "widget"))
        })
        .unwrap();
    sim.run_for(Duration::from_secs(5));

    let node = sim.node(NodeAddr(9)).unwrap();
    let result = node.upcalls.iter().find_map(|u| match u {
        Upcall::GetResult { req_id, items, .. } if *req_id == req => Some(items.clone()),
        _ => None,
    });
    let items = result.expect("get reply must arrive");
    let mut values: Vec<u64> = items.iter().map(|(_, v)| *v).collect();
    values.sort_unstable();
    assert_eq!(values, vec![111, 222]);
}

#[test]
fn send_to_key_delivers_at_one_responsible_node() {
    let mut sim = build_ring(16, 5, DhtConfig::fast_test(), LossModel::None);
    sim.run_for(Duration::from_secs(25));

    for i in 0..20u64 {
        let origin = NodeAddr((i % 16) as u32);
        sim.invoke(origin, |node, ctx| {
            node.dht.send_to_key(ctx, ResourceKey::new("agg", "group-7", 0), i);
        });
    }
    sim.run_for(Duration::from_secs(5));

    // All 20 payloads must arrive, all at the same (single) node.
    let mut receivers = Vec::new();
    let mut total = 0;
    for addr in sim.alive_nodes() {
        let count = sim.node(addr).unwrap().count_upcalls(
            |u| matches!(u, Upcall::Delivered { key, .. } if key.resource == "group-7"),
        );
        if count > 0 {
            receivers.push(addr);
            total += count;
        }
    }
    assert_eq!(total, 20, "all rehashed payloads must be delivered");
    assert_eq!(receivers.len(), 1, "one node is responsible for one key");
}

#[test]
fn replication_survives_owner_failure() {
    let mut config = DhtConfig::fast_test();
    config.replication_factor = 2;
    let mut sim = build_ring(12, 6, config, LossModel::None);
    sim.run_for(Duration::from_secs(25));

    sim.invoke(NodeAddr(0), |node, ctx| {
        node.dht.put(
            ctx,
            ResourceKey::new("vital", "answer", 0),
            42,
            Some(Duration::from_secs(600)),
        );
    });
    sim.run_for(Duration::from_secs(5));

    // Find and kill the owner.
    let owner = sim
        .alive_nodes()
        .into_iter()
        .find(|&a| !sim.node(a).unwrap().dht.lscan("vital", sim.now()).is_empty())
        .expect("item must be stored somewhere");
    sim.kill_node(owner);
    sim.run_for(Duration::from_secs(10));

    // A replica must still exist on some other live node.
    let survivors = sim
        .alive_nodes()
        .into_iter()
        .filter(|&a| !sim.node(a).unwrap().dht.lscan("vital", sim.now()).is_empty())
        .count();
    assert!(survivors >= 1, "replicas must survive the owner's crash");
}

#[test]
fn ring_recovers_from_churn() {
    let mut sim = build_ring(24, 7, DhtConfig::fast_test(), LossModel::None);
    sim.run_for(Duration::from_secs(30));
    assert!(ring_is_consistent(&sim));

    // Kill a quarter of the nodes at t=30s, restart them at t=45s.
    let victims: Vec<NodeAddr> = (0..6).map(|i| NodeAddr(i * 4 + 1)).collect();
    let schedule =
        ChurnSchedule::mass_failure(&victims, SimTime::from_secs(31), Some(SimTime::from_secs(45)));
    sim.apply_churn(&schedule);

    sim.run_until(SimTime::from_secs(40));
    // While the victims are down the survivors must have healed around them.
    assert_eq!(sim.alive_nodes().len(), 18);
    assert!(ring_is_consistent(&sim), "ring must heal after failures");

    sim.run_until(SimTime::from_secs(80));
    assert_eq!(sim.alive_nodes().len(), 24);
    assert!(ring_is_consistent(&sim), "ring must reintegrate restarted nodes");
    for addr in sim.alive_nodes() {
        assert!(sim.node(addr).unwrap().dht.is_joined(), "{addr} failed to rejoin");
    }
}

#[test]
fn broadcast_covers_ring_despite_message_loss() {
    let mut sim = build_ring(20, 8, DhtConfig::fast_test(), LossModel::Bernoulli(0.02));
    sim.run_for(Duration::from_secs(30));

    sim.invoke(NodeAddr(5), |node, ctx| node.dht.broadcast(ctx, 4242));
    sim.run_for(Duration::from_secs(5));

    let reached = sim
        .alive_nodes()
        .into_iter()
        .filter(|&a| {
            sim.node(a).unwrap().count_upcalls(|u| matches!(u, Upcall::Broadcast { payload: 4242 }))
                > 0
        })
        .count();
    // With 2% loss a handful of subtrees may be pruned, but the vast majority
    // of nodes must still receive the broadcast.
    assert!(reached >= 17, "broadcast reached only {reached}/20 nodes");
}

#[test]
fn soft_state_expires_without_renewal() {
    let mut sim = build_ring(8, 9, DhtConfig::fast_test(), LossModel::None);
    sim.run_for(Duration::from_secs(20));

    sim.invoke(NodeAddr(1), |node, ctx| {
        node.dht.put(ctx, ResourceKey::new("ephemeral", "x", 0), 1, Some(Duration::from_secs(5)));
    });
    sim.run_for(Duration::from_secs(3));
    let visible: usize = sim
        .alive_nodes()
        .iter()
        .map(|&a| sim.node(a).unwrap().dht.lscan("ephemeral", sim.now()).len())
        .sum();
    assert!(visible >= 1, "item must be stored before its TTL elapses");

    sim.run_for(Duration::from_secs(30));
    let visible_after: usize = sim
        .alive_nodes()
        .iter()
        .map(|&a| sim.node(a).unwrap().dht.lscan("ephemeral", sim.now()).len())
        .sum();
    assert_eq!(visible_after, 0, "item must expire after its TTL");
}

#[test]
fn average_route_hops_scale_logarithmically() {
    // Hop counts on a 64-node ring should be well below the node count —
    // multi-hop routing, not flooding — and small in absolute terms.
    let mut sim = build_ring(64, 10, DhtConfig::fast_test(), LossModel::None);
    sim.run_for(Duration::from_secs(40));

    for i in 0..100u64 {
        let origin = NodeAddr((i % 64) as u32);
        sim.invoke(origin, |node, ctx| {
            node.dht.put(ctx, ResourceKey::new("spread", format!("k{i}"), 0), i, None);
        });
    }
    sim.run_for(Duration::from_secs(10));

    let (deliveries, hops): (u64, u64) = sim
        .alive_nodes()
        .iter()
        .map(|&a| {
            let s = sim.node(a).unwrap().dht.stats();
            (s.deliveries, s.delivery_hops)
        })
        .fold((0, 0), |(d, h), (dd, hh)| (d + dd, h + hh));
    assert!(deliveries >= 100);
    let avg = hops as f64 / deliveries as f64;
    assert!(avg <= 8.0, "average hops {avg:.2} too high for a 64-node ring");
}
