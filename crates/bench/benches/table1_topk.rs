//! Table 1 (bench-sized) — network-wide top ten intrusion-detection rules on a
//! smaller deployment so `cargo bench` stays quick.  The full 300-node
//! reproduction is the `table1_top10_rules` binary.
//!
//! Run with: `cargo bench -p pier-bench --bench table1_topk`

use pier_apps::snort::{intrusions_table, SnortSimulator};
use pier_core::prelude::*;

fn main() {
    let nodes = 60;
    let mut bed = PierTestbed::new(TestbedConfig { nodes, seed: 2, ..Default::default() });
    bed.create_table_everywhere(&intrusions_table());
    let mut snort = SnortSimulator::new(nodes, 710_000, 2);
    snort.publish_round(&mut bed);
    bed.run_for(Duration::from_secs(5));

    let origin = bed.nodes()[0];
    let q = bed.submit_sql(origin, SnortSimulator::table1_sql()).unwrap();
    bed.run_for(Duration::from_secs(20));

    let rows = bed.results(origin, q, 0);
    println!("Table 1 (bench): top ten intrusion rules, {nodes} nodes");
    println!("{:<6} {:<42} {:>12}", "Rule", "Description", "Hits");
    for row in &rows {
        println!(
            "{:<6} {:<42} {:>12}",
            row.get(0).to_string(),
            row.get(1).to_string(),
            row.get(2).to_string()
        );
    }
    let got: Vec<i64> = rows.iter().filter_map(|r| r.get(0).as_i64()).collect();
    let expected = SnortSimulator::expected_top10();
    let mut gs = got.clone();
    gs.sort_unstable();
    let mut es = expected.clone();
    es.sort_unstable();
    let verdict = if got == expected {
        "MATCH (exact order)"
    } else if gs == es && got[..5] == expected[..5] {
        "MATCH (same ten rules; a near-tie pair swapped)"
    } else {
        "MISMATCH"
    };
    println!("\nranking vs paper: {verdict}");
    println!("responding nodes: {}", bed.contributors(origin, q, 0));
}
