//! Ablation A2 — in-network (hierarchical) aggregation vs direct-to-origin.
//!
//! PIER combines partial aggregates hop-by-hop toward the aggregation root.
//! The baseline ships every node's partial state straight to the query origin.
//! Both answer the same continuous SUM; the difference is network cost and
//! fan-in at the origin.
//!
//! Run with: `cargo bench -p pier-bench --bench aggregation`

use pier_apps::netmon::{netstats_table, NetworkMonitor};
use pier_core::prelude::*;
use pier_core::AggregationMode;

fn run(nodes: usize, mode: AggregationMode) -> (u64, u64, f64) {
    let mut pier = PierConfig::fast_test();
    pier.aggregation = mode;
    let mut bed = PierTestbed::new(TestbedConfig { nodes, seed: 5, pier, ..Default::default() });
    bed.create_table_everywhere(&netstats_table());
    let mut monitor = NetworkMonitor::new(nodes, 5);

    let origin = bed.nodes()[0];
    let q = bed.submit_sql(origin, &NetworkMonitor::figure1_sql(5, 10)).unwrap();

    let before = bed.metrics().snapshot();
    let epochs = 6;
    for _ in 0..epochs {
        monitor.publish_round(&mut bed);
        bed.run_for(Duration::from_secs(5));
    }
    let after = bed.metrics().snapshot();
    let last = bed.epochs(origin, q).last().copied().unwrap_or(0);
    let responding = bed.contributors(origin, q, last);
    (
        (after.messages_sent - before.messages_sent) / epochs as u64,
        (after.bytes_sent - before.bytes_sent) / epochs as u64,
        responding as f64,
    )
}

fn main() {
    println!("A2: hierarchical (in-network) vs direct aggregation, continuous SUM query");
    println!(
        "{:>8} {:>16} {:>16} {:>14} {:>16} {:>16} {:>14}",
        "nodes",
        "hier msgs/ep",
        "hier bytes/ep",
        "hier respond",
        "direct msgs/ep",
        "direct bytes/ep",
        "direct respond"
    );
    for &n in &[50usize, 100] {
        let (hm, hb, hr) = run(n, AggregationMode::Hierarchical);
        let (dm, db, dr) = run(n, AggregationMode::Direct);
        println!("{n:>8} {hm:>16} {hb:>16} {hr:>14.0} {dm:>16} {db:>16} {dr:>14.0}");
    }
    println!("\nexpected shape: both modes reach ~all nodes; hierarchical pays slightly more");
    println!("messages (tree forwarding) but spreads fan-in across the overlay instead of");
    println!("concentrating one message per node per epoch at the origin.");
}
