//! Figure 1 (bench-sized) — continuous sum of outbound data rates over
//! responding nodes, on a smaller deployment so `cargo bench` stays quick.
//! The full 300-node reproduction is the `fig1_continuous_sum` binary.
//!
//! Run with: `cargo bench -p pier-bench --bench fig1_aggregation`

use pier_apps::netmon::{netstats_table, NetworkMonitor};
use pier_core::prelude::*;
use pier_simnet::ChurnSchedule;

fn main() {
    let nodes = 60;
    let mut bed = PierTestbed::new(TestbedConfig { nodes, seed: 1, ..Default::default() });
    bed.create_table_everywhere(&netstats_table());
    let mut monitor = NetworkMonitor::new(nodes, 1);

    let origin = bed.nodes()[0];
    let q = bed.submit_sql(origin, &NetworkMonitor::figure1_sql(5, 10)).unwrap();

    // Fail 15 nodes a third of the way through; recover them later.
    let victims: Vec<NodeAddr> = (20..35).map(NodeAddr).collect();
    let fail_at = bed.now() + Duration::from_secs(25);
    let recover_at = bed.now() + Duration::from_secs(50);
    bed.apply_churn(&ChurnSchedule::mass_failure(&victims, fail_at, Some(recover_at)));

    println!("Figure 1 (bench): continuous SUM(out_rate), {nodes} nodes, failure + recovery");
    println!("{:>6} {:>10} {:>18} {:>18}", "epoch", "time(s)", "sum KB/s", "responding");
    let mut seen = 0;
    for _ in 0..15 {
        monitor.publish_round(&mut bed);
        bed.run_for(Duration::from_secs(5));
        if let Some(&e) = bed.epochs(origin, q).last() {
            if e >= seen {
                let rows = bed.results(origin, q, e);
                let sum = rows.first().and_then(|r| r.get(0).as_f64()).unwrap_or(0.0);
                println!(
                    "{e:>6} {:>10} {sum:>18.1} {:>18}",
                    bed.now().as_secs(),
                    bed.contributors(origin, q, e)
                );
                seen = e + 1;
            }
        }
    }
    println!("\nexpected shape: the responding-node series dips by ~15 during the failure");
    println!("window and recovers afterwards; the sum dips and recovers with it.");
}
