//! Ablation A1 — DHT routing scalability.
//!
//! PIER's claim to "Internet scale" rests on its multi-hop overlay: lookups
//! and routed operations must take O(log n) hops, not O(n).  This bench builds
//! rings of increasing size, routes a fixed batch of puts across each, and
//! reports average hops and delivery latency per ring size.
//!
//! Run with: `cargo bench -p pier-bench --bench routing`

use pier_dht::{DhtConfig, ResourceKey, StandaloneDht};
use pier_simnet::{Duration, LatencyModel, NodeAddr, SimConfig, Simulation};

fn ring(n: usize, seed: u64) -> Simulation<StandaloneDht<u64>> {
    let mut sim = Simulation::new(
        SimConfig {
            seed,
            latency: LatencyModel::Uniform {
                min: Duration::from_millis(10),
                max: Duration::from_millis(100),
            },
            ..Default::default()
        },
        |addr| {
            let bootstrap = if addr.0 == 0 { None } else { Some(NodeAddr(0)) };
            StandaloneDht::new(addr, DhtConfig::fast_test(), bootstrap)
        },
    );
    sim.add_nodes(n);
    sim.run_for(Duration::from_secs(60));
    sim
}

fn main() {
    println!("A1: routing hops and latency vs ring size (multi-hop O(log n) routing)");
    println!("{:>8} {:>12} {:>14} {:>16}", "nodes", "avg hops", "p99 delay ms", "msgs/operation");
    let ops = 200u64;
    for &n in &[32usize, 64, 128, 256] {
        let mut sim = ring(n, 7 + n as u64);
        let before = sim.metrics().snapshot();
        for i in 0..ops {
            let origin = NodeAddr((i % n as u64) as u32);
            sim.invoke(origin, |node, ctx| {
                node.dht.put(ctx, ResourceKey::new("bench", format!("k{i}"), i), i, None);
            });
        }
        sim.run_for(Duration::from_secs(10));
        let after = sim.metrics().snapshot();
        let (mut deliveries, mut hops) = (0u64, 0u64);
        for addr in sim.alive_nodes() {
            let s = sim.node(addr).unwrap().dht.stats();
            deliveries += s.deliveries;
            hops += s.delivery_hops;
        }
        let avg_hops = hops as f64 / deliveries.max(1) as f64;
        let p99 = sim.metrics().delivery_latency().map(|h| h.quantile(0.99) / 1000).unwrap_or(0);
        let msgs = (after.messages_sent - before.messages_sent) as f64 / ops as f64;
        println!("{n:>8} {avg_hops:>12.2} {p99:>14} {msgs:>16.1}");
    }
    println!("\nexpected shape: hops grow ~logarithmically with n (not linearly).");
}
