//! Ablation A4 — robustness to churn.
//!
//! Figure 1's lower series is "responding nodes": under churn, PIER keeps
//! answering with whatever fraction of the network is reachable.  This bench
//! sweeps the churn intensity (mean node session length) and reports how many
//! nodes contribute to each continuous-SUM epoch.
//!
//! Run with: `cargo bench -p pier-bench --bench churn`

use pier_apps::netmon::{netstats_table, NetworkMonitor};
use pier_core::prelude::*;
use pier_simnet::{ChurnSchedule, DetRng};

fn run(nodes: usize, mean_uptime_s: u64) -> (f64, f64) {
    let mut bed = PierTestbed::new(TestbedConfig { nodes, seed: 99, ..Default::default() });
    bed.create_table_everywhere(&netstats_table());
    let mut monitor = NetworkMonitor::new(nodes, 99);
    let origin = bed.nodes()[0];
    let q = bed.submit_sql(origin, &NetworkMonitor::figure1_sql(5, 10)).unwrap();

    if mean_uptime_s > 0 {
        let mut rng = DetRng::new(99);
        let victims: Vec<NodeAddr> = bed.nodes().iter().copied().filter(|a| a.0 != 0).collect();
        let start = bed.now();
        let schedule = ChurnSchedule::poisson_sessions(
            &victims,
            start,
            start + Duration::from_secs(60),
            Duration::from_secs(mean_uptime_s),
            Duration::from_secs(20),
            &mut rng,
        );
        bed.apply_churn(&schedule);
    }

    let mut responding = Vec::new();
    for _ in 0..12 {
        monitor.publish_round(&mut bed);
        bed.run_for(Duration::from_secs(5));
        if let Some(&e) = bed.epochs(origin, q).last() {
            responding.push(bed.contributors(origin, q, e) as f64);
        }
    }
    let avg = responding.iter().sum::<f64>() / responding.len().max(1) as f64;
    let min = responding.iter().cloned().fold(f64::INFINITY, f64::min);
    (avg, if min.is_finite() { min } else { 0.0 })
}

fn main() {
    let nodes = 60;
    println!("A4: responding nodes under churn ({nodes} nodes, continuous SUM, 12 epochs)");
    println!("{:<24} {:>18} {:>18}", "churn level", "avg responding", "min responding");
    for (label, uptime) in
        [("none", 0u64), ("mild (120 s sessions)", 120), ("harsh (45 s sessions)", 45)]
    {
        let (avg, min) = run(nodes, uptime);
        println!("{label:<24} {avg:>18.1} {min:>18.1}");
    }
    println!("\nexpected shape: responding-node counts degrade gracefully with churn and never");
    println!(
        "collapse to zero — the query keeps producing network-wide sums over whoever answers."
    );
}
