//! Ablation A5 — recursive queries over the overlay graph.
//!
//! The topology-mapping application walks the overlay's link relation with a
//! recursive query.  This bench sweeps the depth bound and reports how many
//! hosts are reached and how many expansion messages the evaluation needed
//! (distributed semi-naïve evaluation should send one expansion per newly
//! reached vertex, not per path).
//!
//! Run with: `cargo bench -p pier-bench --bench recursive`

use pier_apps::topology::{links_table, TopologyMapper};
use pier_core::prelude::*;

fn main() {
    let nodes = 48;
    println!("A5: recursive reachability over overlay successor links ({nodes} nodes)");
    println!(
        "{:>10} {:>14} {:>16} {:>14}",
        "max depth", "hosts reached", "edges reported", "expand msgs"
    );
    for &depth in &[2u32, 4, 8, 16] {
        let mut bed = PierTestbed::new(TestbedConfig { nodes, seed: 3, ..Default::default() });
        bed.create_table_everywhere(&links_table());
        TopologyMapper::publish_overlay_links(&mut bed);
        bed.run_for(Duration::from_secs(8));

        let source = TopologyMapper::host_name(bed.nodes()[0]);
        let (kind, names) = TopologyMapper::reachability_query(&source, depth);
        let origin = bed.nodes()[0];
        let q = bed.submit_query(origin, kind, names, None).unwrap();
        bed.run_for(Duration::from_secs(30));

        let rows = bed.all_results(origin, q);
        let mut hosts: Vec<String> =
            rows.iter().filter_map(|r| r.get(1).as_str().map(|s| s.to_string())).collect();
        hosts.sort();
        hosts.dedup();
        let expands: u64 =
            bed.alive_nodes().iter().map(|&a| bed.node(a).unwrap().stats().expands_sent).sum();
        println!("{depth:>10} {:>14} {:>16} {expands:>14}", hosts.len(), rows.len());
    }
    println!("\nexpected shape: reached hosts grow with the depth bound until the ring is");
    println!("covered; expansion messages stay close to the number of reached vertices.");
}
