//! Ablation A3 — distributed join strategies.
//!
//! Symmetric rehash joins ship both relations; Fetch-Matches probes the inner
//! relation with DHT gets; Bloom-filter joins prune the shipped side with a
//! key summary.  All three must return the same rows; they differ in traffic.
//!
//! Run with: `cargo bench -p pier-bench --bench joins`

use pier_apps::filesharing::{files_table, keywords_table, FileCorpus};
use pier_core::prelude::*;
use pier_core::{Catalog, JoinStrategy, Planner};

fn run(strategy: JoinStrategy, sql: &str) -> (usize, u64, u64) {
    let nodes = 40;
    let mut bed = PierTestbed::new(TestbedConfig { nodes, seed: 77, ..Default::default() });
    bed.create_table_everywhere(&files_table());
    bed.create_table_everywhere(&keywords_table());
    let corpus = FileCorpus::generate(400, nodes, 77);
    corpus.publish(&mut bed);
    bed.run_for(Duration::from_secs(10));

    let mut catalog = Catalog::new();
    catalog.register(files_table());
    catalog.register(keywords_table());
    let stmt = pier_core::sql::parse_select(sql).unwrap();
    let planned = Planner::with_join_strategy(&catalog, strategy).plan_select(&stmt).unwrap();

    let origin = bed.nodes()[0];
    let before = bed.metrics().snapshot();
    let q =
        bed.submit_query(origin, planned.kind, planned.output_names, planned.continuous).unwrap();
    bed.run_for(Duration::from_secs(20));
    let after = bed.metrics().snapshot();
    let rows = bed.results(origin, q, 0).len();
    (rows, after.messages_sent - before.messages_sent, after.bytes_sent - before.bytes_sent)
}

fn main() {
    println!("A3: distributed join strategies on the filesharing keyword search");
    let sql = FileCorpus::search_sql("music");
    println!("query: {sql}\n");
    println!("{:<16} {:>8} {:>12} {:>12}", "strategy", "rows", "messages", "bytes");
    for (name, strategy) in [
        ("symmetric-hash", JoinStrategy::SymmetricHash),
        ("fetch-matches", JoinStrategy::FetchMatches),
        ("bloom-filter", JoinStrategy::BloomFilter),
    ] {
        // Fetch-Matches probes the inner relation by its partition key, so the
        // probe direction is keywords -> files for that strategy.
        let sql = if strategy == JoinStrategy::FetchMatches {
            "SELECT f.name, f.owner, f.size_kb FROM keywords k JOIN files f ON k.file_id = f.file_id \
             WHERE k.keyword = 'music'"
                .to_string()
        } else {
            sql.clone()
        };
        let (rows, msgs, bytes) = run(strategy, &sql);
        println!("{name:<16} {rows:>8} {msgs:>12} {bytes:>12}");
    }
    println!("\nexpected shape: all strategies agree on the row count; rehash ships the most");
    println!("tuples, Bloom prunes the non-matching side, Fetch-Matches trades shipped tuples");
    println!("for one DHT get per probe tuple.");
}
