//! # pier-bench — experiment harness
//!
//! Binaries and benches that regenerate the evaluation artifacts of the
//! SIGMOD 2004 demo paper (Figure 1 and Table 1) plus ablation benchmarks for
//! the reproduction's main design choices (routing scalability, in-network vs
//! direct aggregation, join strategies, churn robustness, recursive queries,
//! batched wire paths); see `docs/ARCHITECTURE.md` at the repository root.
//!
//! Shared helpers live here so the binaries and Criterion benches stay small.

use pier_apps::netmon::netstats_table;
use pier_apps::snort::intrusions_table;
use pier_core::prelude::*;

/// Engine configuration used for the PlanetLab-scale (300 node) experiment
/// runs: fast overlay maintenance so a 300-node ring converges quickly, with
/// aggregation timers generous enough for the deeper combining trees.
pub fn experiment_config() -> PierConfig {
    let mut pier = PierConfig::fast_test();
    pier.dht.stabilize_interval = Duration::from_millis(250);
    pier.dht.fix_finger_interval = Duration::from_millis(100);
    pier.dht.ping_interval = Duration::from_millis(1_000);
    pier.dht.failure_timeout = Duration::from_millis(3_000);
    pier.dht.finger_count = 64;
    pier.dht.successor_list_len = 8;
    pier.holddown = Duration::from_millis(200);
    pier.collect_delay = Duration::from_millis(4_000);
    pier
}

/// Build a monitoring deployment: `nodes` PIER nodes with the `netstats` and
/// `intrusions` tables registered everywhere.  The overlay is given a long
/// warm-up so rings of hundreds of nodes are fully converged before
/// measurements start.
pub fn monitoring_testbed(nodes: usize, seed: u64, pier: PierConfig) -> PierTestbed {
    let warmup = Duration::from_secs(if nodes > 100 { 120 } else { 40 });
    let mut bed =
        PierTestbed::new(TestbedConfig { nodes, seed, pier, warmup, ..Default::default() });
    bed.create_table_everywhere(&netstats_table());
    bed.create_table_everywhere(&intrusions_table());
    bed
}

/// Format a floating point number with thousands separators (table output).
pub fn fmt_thousands(v: f64) -> String {
    let int = v.round() as i64;
    let mut s = int.abs().to_string();
    let mut out = String::new();
    while s.len() > 3 {
        let rest = s.split_off(s.len() - 3);
        out = format!(",{rest}{out}");
    }
    format!("{}{}{}", if int < 0 { "-" } else { "" }, s, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(fmt_thousands(465770.0), "465,770");
        assert_eq!(fmt_thousands(999.4), "999");
        assert_eq!(fmt_thousands(-12345.0), "-12,345");
        assert_eq!(fmt_thousands(0.0), "0");
    }
}
