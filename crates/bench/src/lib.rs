//! # pier-bench — experiment harness
//!
//! Binaries and benches that regenerate the evaluation artifacts of the
//! SIGMOD 2004 demo paper (Figure 1 and Table 1) plus ablation benchmarks for
//! the reproduction's main design choices (routing scalability, in-network vs
//! direct aggregation, join strategies, churn robustness, recursive queries,
//! batched wire paths); see `docs/ARCHITECTURE.md` at the repository root.
//!
//! Shared helpers live here so the binaries and Criterion benches stay small.

use pier_apps::netmon::netstats_table;
use pier_apps::snort::intrusions_table;
use pier_apps::topology::links_table;
use pier_core::prelude::*;
use pier_core::{Catalog, TableStats};

/// Engine configuration used for the PlanetLab-scale (300 node) experiment
/// runs: fast overlay maintenance so a 300-node ring converges quickly, with
/// aggregation timers generous enough for the deeper combining trees.
pub fn experiment_config() -> PierConfig {
    let mut pier = PierConfig::fast_test();
    pier.dht.stabilize_interval = Duration::from_millis(250);
    pier.dht.fix_finger_interval = Duration::from_millis(100);
    pier.dht.ping_interval = Duration::from_millis(1_000);
    pier.dht.failure_timeout = Duration::from_millis(3_000);
    pier.dht.finger_count = 64;
    pier.dht.successor_list_len = 8;
    pier.holddown = Duration::from_millis(200);
    pier.collect_delay = Duration::from_millis(4_000);
    pier
}

/// Build a monitoring deployment: `nodes` PIER nodes with the `netstats` and
/// `intrusions` tables registered everywhere.  The overlay is given a long
/// warm-up so rings of hundreds of nodes are fully converged before
/// measurements start.
pub fn monitoring_testbed(nodes: usize, seed: u64, pier: PierConfig) -> PierTestbed {
    let warmup = Duration::from_secs(if nodes > 100 { 120 } else { 40 });
    let mut bed =
        PierTestbed::new(TestbedConfig { nodes, seed, pier, warmup, ..Default::default() });
    bed.create_table_everywhere(&netstats_table());
    bed.create_table_everywhere(&intrusions_table());
    bed
}

/// Parameters of the shared skewed monitoring workload over the paper's
/// three application tables (`netstats`, `links`, `intrusions`): every host
/// reports `readings_per_host` traffic readings and two overlay links
/// (successor + finger), and one host in `intrusion_every` files two
/// intrusion reports.  The join benchmarks all run variants of this shape —
/// only the skew knobs differ.
#[derive(Clone, Copy, Debug)]
pub struct SkewedWorkload {
    /// `netstats` readings per host.
    pub readings_per_host: usize,
    /// One host in this many files intrusion reports.
    pub intrusion_every: usize,
}

/// The canonical host name of index `i` in a deployment of `nodes` hosts.
pub fn host(nodes: usize, i: usize) -> String {
    format!("host-{}", i % nodes)
}

/// Generate the skewed workload: `(netstats, links, intrusions)` rows.
pub fn skewed_workload(nodes: usize, w: SkewedWorkload) -> (Vec<Tuple>, Vec<Tuple>, Vec<Tuple>) {
    let mut netstats = Vec::new();
    let mut links = Vec::new();
    let mut intrusions = Vec::new();
    for i in 0..nodes {
        for r in 0..w.readings_per_host {
            netstats.push(Tuple::new(vec![
                Value::str(host(nodes, i)),
                Value::Float(2.0 + (i % 7) as f64 + 0.1 * r as f64),
                Value::Float(1.0),
            ]));
        }
        links.push(Tuple::new(vec![
            Value::str(host(nodes, i)),
            Value::str(host(nodes, i + 1)),
            Value::str("successor"),
        ]));
        links.push(Tuple::new(vec![
            Value::str(host(nodes, i)),
            Value::str(host(nodes, i + 5)),
            Value::str("finger"),
        ]));
        if i % w.intrusion_every.max(1) == 0 {
            for r in 0..2i64 {
                intrusions.push(Tuple::new(vec![
                    Value::str(host(nodes, i)),
                    Value::Int(1400 + r),
                    Value::str(format!("rule-{r}")),
                    Value::Int(2 + r),
                ]));
            }
        }
    }
    (netstats, links, intrusions)
}

/// A catalog with truthful statistics for [`skewed_workload`]: exact row
/// counts, one distinct partition key per host (and per reporting host for
/// `intrusions`).
pub fn skewed_catalog(nodes: usize, w: SkewedWorkload) -> Catalog {
    let (netstats, links, intrusions) = skewed_workload(nodes, w);
    let mut cat = Catalog::new();
    cat.register(netstats_table());
    cat.register(links_table());
    cat.register(intrusions_table());
    cat.set_stats(
        "netstats",
        TableStats::with_rows(netstats.len() as u64).distinct_keys(nodes as u64),
    );
    cat.set_stats("links", TableStats::with_rows(links.len() as u64).distinct_keys(nodes as u64));
    cat.set_stats(
        "intrusions",
        TableStats::with_rows(intrusions.len() as u64)
            .distinct_keys((nodes / w.intrusion_every.max(1)).max(1) as u64),
    );
    cat
}

/// Parse an environment knob, falling back to `default` when the variable
/// is unset or malformed (shared by every benchmark binary).
pub fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Format a floating point number with thousands separators (table output).
pub fn fmt_thousands(v: f64) -> String {
    let int = v.round() as i64;
    let mut s = int.abs().to_string();
    let mut out = String::new();
    while s.len() > 3 {
        let rest = s.split_off(s.len() - 3);
        out = format!(",{rest}{out}");
    }
    format!("{}{}{}", if int < 0 { "-" } else { "" }, s, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(fmt_thousands(465770.0), "465,770");
        assert_eq!(fmt_thousands(999.4), "999");
        assert_eq!(fmt_thousands(-12345.0), "-12,345");
        assert_eq!(fmt_thousands(0.0), "0");
    }
}
